//! Workspace root for the RnB reproduction.
//!
//! The implementation lives in the `crates/` members; this crate exists to
//! host the cross-crate integration tests (`tests/`) and the runnable
//! examples (`examples/`). It re-exports the member crates so examples can
//! use one import root.

pub use rnb_analysis as analysis;
pub use rnb_client as client;
pub use rnb_core as core;
pub use rnb_cover as cover;
pub use rnb_graph as graph;
pub use rnb_hash as hash;
pub use rnb_sim as sim;
pub use rnb_store as store;
pub use rnb_workload as workload;
