//! Std-only, offline stand-in for the [`criterion`] benchmark harness.
//!
//! Covers the API surface `rnb-bench` uses — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`], `criterion_group!` / `criterion_main!` —
//! with a deliberately simple measurement loop: warm up briefly, run a
//! fixed wall-clock budget of iterations, and print mean ns/iter (plus
//! derived throughput). No statistics, no HTML reports, no comparisons;
//! when the real registry is reachable these numbers should come from real
//! criterion instead (see ROADMAP.md "Open items").
//!
//! Under `cargo test` (which builds bench targets to keep them compiling)
//! the harness detects the `--test` flag and runs each benchmark body
//! exactly once, so test runs stay fast.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level handle, one per bench binary.
pub struct Criterion {
    /// Run each body exactly once (set under `cargo test`).
    smoke_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes bench binaries with `--test`; `cargo bench`
        // passes `--bench`. Anything with `--test` gets the 1-iteration
        // smoke run.
        let smoke_mode = std::env::args().any(|a| a == "--test");
        Criterion { smoke_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }
}

/// A named benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter component.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the sample count (scales this stand-in's measurement budget).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        let mut bencher = Bencher {
            smoke_mode: self.criterion.smoke_mode,
            budget: Duration::from_millis(20 * self.sample_size as u64),
            measured: None,
        };
        f(&mut bencher);
        bencher.report(&full, self.throughput);
        self
    }

    /// Run one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (a no-op here; kept for API parity).
    pub fn finish(self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    smoke_mode: bool,
    budget: Duration,
    measured: Option<(u64, Duration)>,
}

impl Bencher {
    /// Measure `f`, running it repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke_mode {
            black_box(f());
            self.measured = Some((1, Duration::ZERO));
            return;
        }
        // Warm-up: one call outside the measurement.
        black_box(f());
        let mut iters = 0u64;
        let start = Instant::now();
        let mut elapsed;
        loop {
            black_box(f());
            iters += 1;
            elapsed = start.elapsed();
            if elapsed >= self.budget {
                break;
            }
        }
        self.measured = Some((iters, elapsed));
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        let Some((iters, elapsed)) = self.measured else {
            println!("bench {name:<50} (no measurement: body never called iter)");
            return;
        };
        if self.smoke_mode {
            println!("bench {name:<50} smoke-tested (1 iteration)");
            return;
        }
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.1} Melem/s", n as f64 / ns_per_iter * 1e3)
            }
            Throughput::Bytes(n) => {
                format!(" ({:.1} MiB/s", n as f64 / ns_per_iter * 1e3 / 1.048_576)
            }
        });
        println!(
            "bench {name:<50} {ns_per_iter:>12.1} ns/iter over {iters} iters{}",
            rate.map(|r| r + ")").unwrap_or_default()
        );
    }
}

/// Collect benchmark functions into a runner function named `$group`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(4));
        group.sample_size(1);
        group.bench_function("sum", |b| b.iter(|| (0..4u64).map(black_box).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }

    #[test]
    fn groups_and_benchers_run() {
        // Unit tests run with `--test` absent from args only under
        // `cargo test` harness? The harness passes the filter args, so
        // force smoke mode to keep this instant either way.
        let mut c = Criterion { smoke_mode: true };
        sample_bench(&mut c);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::from_parameter(42).id, "42");
        assert_eq!(BenchmarkId::from("raw").id, "raw");
    }
}
