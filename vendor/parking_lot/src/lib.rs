//! Std-only, offline stand-in for the [`parking_lot`] crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` returns a guard directly instead of a `Result`. A poisoned
//! std lock (a holder panicked) is recovered rather than propagated —
//! the same "ignore poisoning" semantics `parking_lot` has by design.
//!
//! Only the surface the RnB workspace uses is provided: [`Mutex`],
//! [`RwLock`], and their guards.
//!
//! [`parking_lot`]: https://crates.io/crates/parking_lot

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning its value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Block until the lock is acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: recover_lock(self.inner.lock()),
        }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover_lock(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning its value.
    pub fn into_inner(self) -> T {
        recover(self.inner.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Block until shared read access is acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: recover_lock(self.inner.read()),
        }
    }

    /// Block until exclusive write access is acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: recover_lock(self.inner.write()),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        recover_lock(self.inner.get_mut())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

fn recover<G>(r: Result<G, sync::PoisonError<G>>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

fn recover_lock<G>(r: sync::LockResult<G>) -> G {
    r.unwrap_or_else(sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the next lock succeeds.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
