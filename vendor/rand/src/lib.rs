//! Std-only, offline stand-in for the [`rand`] crate.
//!
//! The build environment for this repository has no access to a crates.io
//! registry, so the workspace vendors the *exact* API surface it consumes:
//!
//! * [`rngs::StdRng`] — a seedable generator ([`SeedableRng::seed_from_u64`]).
//! * [`Rng::random_range`] over integer and float ranges.
//! * [`Rng::random`] for primitive types.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, so streams are
//! deterministic for a given seed — the property every RnB simulation and
//! figure binary relies on. The streams do **not** match upstream `rand`'s
//! `StdRng` (ChaCha12); any test pinning exact draws would be pinning an
//! implementation detail either way.
//!
//! [`rand`]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Everything else derives from this.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Construct from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (the conventional
    /// seeding scheme for xoshiro-family generators).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::random`].
pub trait FromRng {
    /// Draw one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f32::from_rng(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform draw of a primitive type (`rng.random::<f64>()` is
    /// uniform in `[0, 1)`).
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform draw from `range`. Panics on an empty range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Fast, passes BigCrush, and fully determined by its seed. Not
    /// cryptographic — nothing in the RnB reproduction needs that.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// SplitMix64 step — the recommended seed expander for xoshiro.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is the one fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: u64 = StdRng::seed_from_u64(42).random();
        assert_ne!(first, c.random::<u64>(), "different seeds diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo |= u < 0.1;
            hi |= u > 0.9;
        }
        assert!(lo && hi, "draws should spread across [0, 1)");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u32..5);
    }

    #[test]
    fn full_seed_construction_works() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.random::<u64>();
        let b = rng.random::<u64>();
        assert_ne!(a, b, "zero seed must still produce a live stream");
    }
}
