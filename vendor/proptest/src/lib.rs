//! Std-only, offline stand-in for the [`proptest`] crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a deterministic random-input test harness that covers exactly the
//! strategy surface the RnB test suites use:
//!
//! * integer / float [`Range`](std::ops::Range) strategies (`0u32..40`),
//! * tuples of strategies (up to arity 8),
//! * [`strategy::Just`], [`prop_oneof!`], [`Strategy::prop_map`],
//! * [`collection::vec`] with a size range,
//! * [`arbitrary::any`] for primitives,
//! * character-class string patterns (`"[a-z0-9]{1,30}"`),
//! * the [`proptest!`] macro with `#![proptest_config(..)]`,
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from upstream, by design: inputs are generated from a
//! seed derived from the test's module path (every run explores the same
//! cases — reproducibility over novelty), and there is **no shrinking**;
//! a failing case panics with the generated values left to inspect via
//! the assertion message. For a repo whose north star is bit-for-bit
//! reproducible simulation, deterministic property inputs are a feature.
//!
//! [`proptest`]: https://crates.io/crates/proptest
//! [`Strategy::prop_map`]: strategy::Strategy::prop_map

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// A type-erased strategy (the result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between alternative strategies (see [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over `options`; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.index(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    mod ranges {
        use super::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(
                            self.start < self.end,
                            "empty range strategy {self:?}"
                        );
                        let span = (self.end as i128 - self.start as i128) as u128;
                        let v = (u128::from(rng.next_u64()) % span) as i128;
                        (self.start as i128 + v) as $t
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        let v = (u128::from(rng.next_u64()) % span) as i128;
                        (lo as i128 + v) as $t
                    }
                }
            )*};
        }
        impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        macro_rules! impl_float_range {
            ($($t:ty),*) => {$(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(
                            self.start < self.end,
                            "empty range strategy {self:?}"
                        );
                        self.start + rng.unit() as $t * (self.end - self.start)
                    }
                }
            )*};
        }
        impl_float_range!(f32, f64);
    }

    mod tuples {
        use super::Strategy;
        use crate::test_runner::TestRng;

        macro_rules! impl_tuple {
            ($($name:ident),+) => {
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);
                    #[allow(non_snake_case)]
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            };
        }
        impl_tuple!(A);
        impl_tuple!(A, B);
        impl_tuple!(A, B, C);
        impl_tuple!(A, B, C, D);
        impl_tuple!(A, B, C, D, E);
        impl_tuple!(A, B, C, D, E, F);
        impl_tuple!(A, B, C, D, E, F, G);
        impl_tuple!(A, B, C, D, E, F, G, H);
    }

    mod string_pattern {
        use super::Strategy;
        use crate::test_runner::TestRng;

        /// Parse the supported pattern subset: `[class]{min,max}` or a
        /// bare `[class]`, where `class` is literal characters and `a-z`
        /// ranges. Returns (alphabet, min, max).
        fn parse(pattern: &str) -> (Vec<char>, usize, usize) {
            let bytes: Vec<char> = pattern.chars().collect();
            assert!(
                bytes.first() == Some(&'['),
                "unsupported string strategy {pattern:?}: must start with a \
                 character class like \"[a-z0-9]{{1,30}}\""
            );
            let close = pattern
                .find(']')
                .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
            let class: Vec<char> = pattern[1..close].chars().collect();
            let mut alphabet = Vec::new();
            let mut i = 0;
            while i < class.len() {
                if i + 2 < class.len() && class[i + 1] == '-' {
                    let (lo, hi) = (class[i], class[i + 2]);
                    assert!(lo <= hi, "inverted class range in {pattern:?}");
                    for c in lo..=hi {
                        alphabet.push(c);
                    }
                    i += 3;
                } else {
                    alphabet.push(class[i]);
                    i += 1;
                }
            }
            assert!(!alphabet.is_empty(), "empty character class in {pattern:?}");
            let rest = &pattern[close + 1..];
            if rest.is_empty() {
                return (alphabet, 1, 1);
            }
            let inner = rest
                .strip_prefix('{')
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported quantifier {rest:?} in {pattern:?}"));
            let (min, max) = match inner.split_once(',') {
                Some((a, b)) => (a.trim().parse(), b.trim().parse()),
                None => (inner.trim().parse(), inner.trim().parse()),
            };
            let (min, max) = (
                min.unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}")),
                max.unwrap_or_else(|_| panic!("bad quantifier in {pattern:?}")),
            );
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            (alphabet, min, max)
        }

        impl Strategy for &'static str {
            type Value = String;
            fn generate(&self, rng: &mut TestRng) -> String {
                let (alphabet, min, max) = parse(self);
                let len = min + rng.index(max - min + 1);
                (0..len)
                    .map(|_| alphabet[rng.index(alphabet.len())])
                    .collect()
            }
        }

        #[cfg(test)]
        mod tests {
            use super::parse;

            #[test]
            fn parses_the_workspace_patterns() {
                let (alpha, min, max) = parse("[a-zA-Z0-9_.-]{1,40}");
                assert_eq!((min, max), (1, 40));
                for c in ['a', 'z', 'A', 'Z', '0', '9', '_', '.', '-'] {
                    assert!(alpha.contains(&c), "missing {c:?}");
                }
                assert_eq!(alpha.len(), 26 + 26 + 10 + 3);

                let (alpha, min, max) = parse("[a-z0-9]{1,30}");
                assert_eq!((min, max), (1, 30));
                assert_eq!(alpha.len(), 36);

                let (alpha, min, max) = parse("[xy]");
                assert_eq!((min, max), (1, 1));
                assert_eq!(alpha, vec!['x', 'y']);
            }
        }
    }
}

pub mod arbitrary {
    //! [`any`] — strategies for "any value of a primitive type".

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit() as f32
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Printable ASCII keeps generated text debuggable.
            char::from(b' ' + (rng.next_u64() % 95) as u8)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Any value of `T`: `any::<u8>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies: [`vec`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A length range for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max_exclusive - self.size.min;
            let len = self.size.min + rng.index(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Run configuration and the deterministic generator behind the
    //! [`proptest!`](crate::proptest) macro.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// How many cases each property runs (and, upstream, much more).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 128 keeps whole-workspace runs
            // quick while still exploring a meaningful input space.
            ProptestConfig { cases: 128 }
        }
    }

    /// The generator handed to strategies: a seeded [`StdRng`] whose seed
    /// is derived from the test's module path, so every run of a given
    /// test explores the same inputs.
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// A generator seeded from `test_path` (FNV-1a).
        pub fn for_test(test_path: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform in `[0, 1)`.
        pub fn unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `0..n` (`n` must be nonzero).
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index range must be nonzero");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs `body` for each generated input tuple.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Property-test assertion (this stand-in panics instead of recording).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skip this generated case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::for_test("self_test");
        let strat = (
            1usize..10,
            crate::collection::vec(0u32..5, 2..6),
            any::<bool>(),
        );
        for _ in 0..500 {
            let (n, v, _b) = strat.generate(&mut rng);
            assert!((1..10).contains(&n));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                5 => seen[2] = true,
                6 => seen[3] = true,
                other => panic!("impossible draw {other}"),
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn string_patterns_generate_matching_text() {
        let mut rng = TestRng::for_test("strings");
        let strat = "[a-z0-9]{1,30}";
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((1..=30).contains(&s.len()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn same_test_path_reproduces_the_same_stream() {
        let mut a = TestRng::for_test("stream");
        let mut b = TestRng::for_test("stream");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: patterns with `mut`, multiple args, trailing
        /// comma, and assertions.
        #[test]
        fn macro_roundtrip(
            mut xs in crate::collection::vec(0i64..100, 0..20),
            k in 1usize..4,
        ) {
            xs.sort_unstable();
            prop_assert!(xs.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_ne!(k, 0);
            prop_assert_eq!(k.min(3), k);
        }
    }
}
