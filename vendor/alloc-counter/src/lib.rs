//! Offline stand-in for the `alloc-counter` crate (API-compatible subset).
//!
//! Provides [`AllocCounterSystem`], a `GlobalAlloc` wrapper around
//! [`std::alloc::System`] that keeps **thread-local** counters of every
//! allocation, reallocation, and deallocation, plus [`count_alloc`] to
//! measure a closure. Thread-local counting means a measurement is not
//! polluted by allocator traffic on other test-harness threads.
//!
//! Like the other crates in `vendor/`, this emulates just enough of the
//! real crate's surface for this workspace: declare the allocator in the
//! test binary and wrap the code under test in `count_alloc`.
//!
//! ```ignore
//! #[global_allocator]
//! static A: alloc_counter::AllocCounterSystem = alloc_counter::AllocCounterSystem;
//!
//! let (counts, result) = alloc_counter::count_alloc(|| hot_path());
//! assert_eq!(counts.0, 0, "hot path must not allocate");
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    // `const` initialisation keeps TLS access allocation-free, which matters
    // because these cells are read from inside the global allocator itself.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
    static REALLOCS: Cell<u64> = const { Cell::new(0) };
    static DEALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Counting wrapper around the system allocator.
///
/// Install it with `#[global_allocator]` in the binary that wants to make
/// zero-allocation assertions; all counting is per thread.
pub struct AllocCounterSystem;

// SAFETY: delegates every operation verbatim to `std::alloc::System`; the
// only extra work is bumping a thread-local `Cell`, which neither allocates
// nor unwinds.
unsafe impl GlobalAlloc for AllocCounterSystem {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }
}

/// `(allocations, reallocations, deallocations)` observed on this thread
/// during a [`count_alloc`] measurement.
pub type Counters = (u64, u64, u64);

/// Run `f` and return the allocator activity of the **current thread**
/// during the call, alongside `f`'s result.
///
/// Only meaningful when [`AllocCounterSystem`] is installed as the global
/// allocator of the running binary; otherwise the counters stay zero.
pub fn count_alloc<R>(f: impl FnOnce() -> R) -> (Counters, R) {
    let a0 = ALLOCS.with(Cell::get);
    let r0 = REALLOCS.with(Cell::get);
    let d0 = DEALLOCS.with(Cell::get);
    let out = f();
    let counts = (
        ALLOCS.with(Cell::get) - a0,
        REALLOCS.with(Cell::get) - r0,
        DEALLOCS.with(Cell::get) - d0,
    );
    (counts, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotonic_and_thread_local() {
        // Without the allocator installed the counters never move; with it
        // installed (see rnb-cover's zero_alloc integration test) they do.
        let ((a, r, d), v) = count_alloc(|| 41 + 1);
        assert_eq!(v, 42);
        // No global-allocator install in unit tests: all deltas are zero.
        assert_eq!((a, r, d), (0, 0, 0));
    }
}
