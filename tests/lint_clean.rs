//! Tier-1 guard: the repo-specific static-analysis pass (`cargo run -p
//! xtask -- lint`) must be clean on every commit. Running it as a plain
//! workspace test means `cargo test -q` fails the moment a serving-path
//! `unwrap`, an unseeded RNG, a lossy wire cast, an unregistered
//! invariant, a transitively reachable clone/panic (R7/R9), a missing
//! `#[must_use]` on a planner (R8), or a nested lock (R10) sneaks in —
//! no CI required.

#[test]
fn workspace_passes_xtask_lint() {
    let root = xtask::workspace_root();
    let report = xtask::lint_workspace(&root).expect("lint scan reads the workspace");
    assert!(
        report.files_scanned > 50,
        "lint scanned only {} files — workspace walk looks broken",
        report.files_scanned
    );
    assert!(
        report.violations.is_empty(),
        "xtask lint found {} violation(s):\n{}\n\nrun `cargo run -p xtask -- lint` \
         for the same report; new invariants go in INVARIANTS.md",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
