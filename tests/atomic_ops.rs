//! §IV "Consistency and support for atomic operations": the paper's
//! scheme — *remove all but the distinguished copies of an item before
//! modifying it, then let RnB-memcached create the new copies on demand*
//! — implemented over the real store substrate with CAS, and hammered
//! concurrently.

use rnb_core::{Bundler, Placement, RnbConfig, WritePlanner, WritePolicy};
use rnb_store::shard::CasOutcome;
use rnb_store::Store;
use std::sync::Arc;

fn key_of(item: u64) -> Vec<u8> {
    format!("item:{item}").into_bytes()
}

/// An RnB deployment over real stores with the §IV atomic-update path.
struct AtomicRnb {
    stores: Vec<Arc<Store>>,
    bundler: Bundler,
    writer: WritePlanner<rnb_core::PlacementStrategy>,
}

impl AtomicRnb {
    fn new(servers: usize, replication: usize) -> Self {
        let config = RnbConfig::new(servers, replication);
        AtomicRnb {
            stores: (0..servers)
                .map(|_| Arc::new(Store::new(1 << 20)))
                .collect(),
            bundler: Bundler::from_config(&config),
            writer: WritePlanner::new(
                rnb_core::PlacementStrategy::from_config(&config),
                WritePolicy::InvalidateThenWrite,
            ),
        }
    }

    fn write_plain(&self, item: u64, value: &[u8]) {
        for (i, server) in self
            .bundler
            .placement()
            .replicas(item)
            .into_iter()
            .enumerate()
        {
            self.stores[server as usize].set(&key_of(item), value, 0, i == 0);
        }
    }

    /// §IV atomic read-modify-write: invalidate replicas, then CAS-loop
    /// on the distinguished copy.
    fn atomic_update(&self, item: u64, f: impl Fn(&[u8]) -> Vec<u8>) {
        let plan = self.writer.plan_write(item);
        // Step 1: remove all but the distinguished copy.
        for txn in &plan.invalidations {
            for &i in &txn.items {
                self.stores[txn.server as usize].delete(&key_of(i));
            }
        }
        // Step 2: CAS on the distinguished copy until it sticks.
        let d = plan.writes[0].server as usize;
        let key = key_of(item);
        loop {
            let Some(current) = self.stores[d].get(&key) else {
                panic!("distinguished copy of {item} lost (it is pinned)");
            };
            let next = f(&current.data);
            match self.stores[d].cas(&key, &next, current.flags, current.cas, None) {
                CasOutcome::Stored => return,
                CasOutcome::Exists => continue, // raced another writer; retry
                other => panic!("cas failed: {other:?}"),
            }
        }
    }

    /// Read via the bundled plan, falling back to the distinguished copy
    /// (replicas may have been invalidated).
    fn read(&self, item: u64) -> Option<Vec<u8>> {
        let plan = self.bundler.plan(&[item]);
        for txn in &plan.transactions {
            if let Some(v) = self.stores[txn.server as usize].get(&key_of(item)) {
                return Some(v.data.to_vec());
            }
        }
        let d = self.bundler.placement().distinguished(item) as usize;
        self.stores[d].get(&key_of(item)).map(|v| v.data.to_vec())
    }
}

#[test]
fn invalidate_then_write_leaves_no_stale_replica() {
    let dep = AtomicRnb::new(8, 3);
    dep.write_plain(7, b"old");
    dep.atomic_update(7, |_| b"new".to_vec());
    // Every *resident* copy anywhere must now be the new value.
    for store in &dep.stores {
        if let Some(v) = store.get(&key_of(7)) {
            assert_eq!(&v.data[..], b"new", "stale replica survived the §IV scheme");
        }
    }
    assert_eq!(dep.read(7).as_deref(), Some(&b"new"[..]));
}

#[test]
fn concurrent_atomic_counter_loses_no_increments() {
    let dep = Arc::new(AtomicRnb::new(8, 3));
    dep.write_plain(42, b"0");
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let dep = Arc::clone(&dep);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    dep.atomic_update(42, |bytes| {
                        let n: u64 = std::str::from_utf8(bytes).unwrap().parse().unwrap();
                        (n + 1).to_string().into_bytes()
                    });
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let value = dep.read(42).unwrap();
    assert_eq!(
        std::str::from_utf8(&value).unwrap(),
        "1600",
        "increments lost despite CAS — atomicity broken"
    );
}

#[test]
fn atomic_update_then_reads_recreate_replicas_on_demand() {
    // After the §IV update, the miss/write-back path (here: explicit
    // refill on fallback) restores replica copies over time.
    let dep = AtomicRnb::new(8, 3);
    dep.write_plain(9, b"v0");
    dep.atomic_update(9, |_| b"v1".to_vec());
    // Replicas are gone; a client that misses re-creates the replica it
    // planned to use (§III-C2's write-back, done by hand here).
    let plan = dep.bundler.plan(&[9]);
    let planned = plan.transactions[0].server as usize;
    if dep.stores[planned].get(&key_of(9)).is_none() {
        let fresh = dep.read(9).unwrap();
        dep.stores[planned].set(&key_of(9), &fresh, 0, false);
    }
    assert_eq!(
        dep.stores[planned]
            .get(&key_of(9))
            .map(|v| v.data.to_vec())
            .as_deref(),
        Some(&b"v1"[..])
    );
}

#[test]
fn incr_on_distinguished_copy_is_atomic_per_server() {
    // The store's native incr is itself atomic (shard mutex), so the
    // distinguished copy can host counters directly — the simplest §IV
    // pattern.
    let store = Arc::new(Store::new(1 << 20));
    store.set(b"n", b"0", 0, true);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for _ in 0..500 {
                    store.arith(b"n", 1, false);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let v = store.get(b"n").unwrap();
    assert_eq!(std::str::from_utf8(&v.data).unwrap(), "4000");
}
