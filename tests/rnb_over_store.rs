//! RnB running against the *real* store substrate: N in-process stores
//! stand in for N memcached servers; the rnb-core planner decides which
//! replicas to fetch; multi-gets execute against the stores. This is the
//! closest analog of the paper's "proof-of-concept implementation" (§IV).

use rnb_core::{Bundler, Placement, RnbConfig};
use rnb_store::Store;

/// A miniature RnB deployment over real stores.
struct RnbDeployment {
    stores: Vec<Store>,
    bundler: Bundler,
}

fn key_of(item: u64) -> Vec<u8> {
    format!("item:{item}").into_bytes()
}

impl RnbDeployment {
    fn new(servers: usize, replication: usize, mem_per_server: usize) -> Self {
        let config = RnbConfig::new(servers, replication);
        let bundler = Bundler::from_config(&config);
        let stores = (0..servers).map(|_| Store::new(mem_per_server)).collect();
        RnbDeployment { stores, bundler }
    }

    /// Write an item to all of its replica servers; the distinguished
    /// copy (replica 0) is pinned.
    fn write(&self, item: u64, value: &[u8]) {
        for (i, server) in self
            .bundler
            .placement()
            .replicas(item)
            .into_iter()
            .enumerate()
        {
            let outcome = self.stores[server as usize].set(&key_of(item), value, 0, i == 0);
            assert!(
                matches!(outcome, rnb_store::shard::SetOutcome::Stored { .. }),
                "failed to write replica {i} of item {item}"
            );
        }
    }

    /// Execute a request via the planner; returns (values, transactions).
    fn fetch(&self, request: &[u64]) -> (Vec<Option<Vec<u8>>>, usize) {
        let plan = self.bundler.plan(request);
        let mut found: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        for txn in &plan.transactions {
            let keys: Vec<Vec<u8>> = txn.items.iter().map(|&i| key_of(i)).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let values = self.stores[txn.server as usize].get_multi(&refs);
            for (&item, value) in txn.items.iter().zip(values) {
                if let Some(v) = value {
                    found.insert(item, v.data.to_vec());
                }
            }
        }
        (
            request.iter().map(|i| found.get(i).cloned()).collect(),
            plan.tpr(),
        )
    }
}

#[test]
fn all_items_retrievable_after_replicated_writes() {
    let dep = RnbDeployment::new(8, 3, 1 << 20);
    for item in 0..500u64 {
        dep.write(item, format!("value-{item}").as_bytes());
    }
    let request: Vec<u64> = (0..500).step_by(7).collect();
    let (values, txns) = dep.fetch(&request);
    for (i, v) in request.iter().zip(&values) {
        assert_eq!(
            v.as_deref(),
            Some(format!("value-{i}").as_bytes()),
            "item {i}"
        );
    }
    assert!(txns <= 8);
}

#[test]
fn bundling_uses_fewer_transactions_than_baseline_on_real_stores() {
    let dep3 = RnbDeployment::new(16, 3, 1 << 20);
    let dep1 = RnbDeployment::new(16, 1, 1 << 20);
    for item in 0..2000u64 {
        dep3.write(item, b"x");
        dep1.write(item, b"x");
    }
    let mut t3 = 0usize;
    let mut t1 = 0usize;
    for r in 0..50u64 {
        let request: Vec<u64> = (0..25).map(|i| (r * 37 + i * 53) % 2000).collect();
        let (v3, n3) = dep3.fetch(&request);
        let (v1, n1) = dep1.fetch(&request);
        assert!(v3.iter().all(Option::is_some));
        assert!(v1.iter().all(Option::is_some));
        t3 += n3;
        t1 += n1;
    }
    assert!(
        (t3 as f64) < 0.8 * t1 as f64,
        "3-replica bundling should cut real-store transactions: {t3} vs {t1}"
    );
}

#[test]
fn distinguished_copies_survive_memory_pressure_on_real_stores() {
    // Overbooking on the real substrate: stores too small for all 4
    // replicas, but pinned distinguished copies guarantee availability.
    let items = 3000u64;
    // Each entry costs ~80 bytes. Full residency would need
    // 3000 items x 4 replicas x 80 B = 960 KB; give the 8 servers 640 KB
    // total so LRUs must evict, while each server's pinned load
    // (~30 KB of its 80 KB) fits with per-shard headroom.
    let dep = RnbDeployment::new(8, 4, 80 << 10);
    for item in 0..items {
        dep.write(item, b"payload");
    }
    // Every item must still be fetchable via the plan + (simulated)
    // fallback to its distinguished copy.
    let placement = dep.bundler.placement();
    for item in (0..items).step_by(97) {
        let d = placement.distinguished(item);
        let got = dep.stores[d as usize].get(&key_of(item));
        assert!(
            got.is_some(),
            "distinguished copy of {item} lost under pressure"
        );
    }
    // And LRU pressure must actually have evicted some non-distinguished
    // replicas (otherwise the test proves nothing).
    let total_entries: usize = dep.stores.iter().map(|s| s.len()).sum();
    assert!(
        total_entries < (items as usize) * 4,
        "expected evictions under pressure, but all {total_entries} replicas resident"
    );
    assert!(
        total_entries >= items as usize,
        "at least the distinguished copies remain"
    );
}

#[test]
fn fetch_plan_transactions_map_to_real_multi_gets() {
    // Transaction counting on the store side must agree with plan.tpr():
    // stats.get_txns increments once per multi-get.
    let dep = RnbDeployment::new(8, 2, 1 << 20);
    for item in 0..100u64 {
        dep.write(item, b"v");
    }
    let request: Vec<u64> = (0..40).collect();
    let before: u64 = dep.stores.iter().map(|s| s.stats().get_txns).sum();
    let (_, txns) = dep.fetch(&request);
    let after: u64 = dep.stores.iter().map(|s| s.stats().get_txns).sum();
    assert_eq!(after - before, txns as u64);
}
