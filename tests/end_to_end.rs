//! End-to-end integration: graph → workload → simulator → calibration,
//! asserting the paper's headline claims hold through the whole pipeline.

use rnb_analysis::{urn, CostModel};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::{EgoRequests, RequestStream};

fn test_graph(seed: u64) -> rnb_graph::DiGraph {
    // Slashdot-shaped at 1/20 scale: mean degree ~11.5, heavy tail.
    rnb_graph::SLASHDOT.scaled_down(20).generate(seed)
}

#[test]
fn multi_get_hole_appears_in_simulation() {
    // Fig 3's shape: quadrupling servers (4 → 16) with no replication
    // gains far less than 4× throughput on ego requests.
    let graph = test_graph(1);
    let model = CostModel::PAPER_ERA;
    let throughput = |servers: usize| {
        let cfg = ExperimentConfig::new(SimConfig::basic(servers, 1), 0, 1200);
        let mut stream = EgoRequests::new(&graph, 2);
        let m = run_experiment(&cfg, graph.num_nodes(), &mut stream);
        model.cluster_throughput(&m.txn_size_hist, m.requests, servers)
    };
    let gain = throughput(16) / throughput(4);
    assert!(
        gain < 2.8,
        "4x servers should gain well under 4x throughput in the hole, got {gain:.2}x"
    );
    assert!(gain > 1.0, "more servers should never hurt, got {gain:.2}x");
}

#[test]
fn simulated_no_replication_tpr_tracks_urn_model_on_uniform_requests() {
    // Cross-validation between the independent implementations: the
    // cluster simulator with k=1 on uniform random requests must agree
    // with §II-A's closed form.
    let (servers, m) = (16usize, 30usize);
    let cfg = ExperimentConfig::new(SimConfig::basic(servers, 1), 0, 1500);
    let mut stream = rnb_workload::UniformRequests::new(20_000, m, 3);
    let metrics = run_experiment(&cfg, 20_000, &mut stream);
    let analytic = urn::tpr(servers, m);
    let simulated = metrics.tpr();
    assert!(
        (simulated - analytic).abs() / analytic < 0.05,
        "simulated {simulated:.3} vs analytic {analytic:.3}"
    );
}

#[test]
fn rnb_beats_no_replication_through_full_pipeline() {
    // Fig 6 through calibration: basic RnB with 4 replicas should raise
    // estimated throughput substantially at equal server count.
    let graph = test_graph(4);
    let model = CostModel::PAPER_ERA;
    let run = |replication: usize| {
        let cfg = ExperimentConfig::new(SimConfig::basic(16, replication), 0, 1500);
        let mut stream = EgoRequests::new(&graph, 5);
        let m = run_experiment(&cfg, graph.num_nodes(), &mut stream);
        (
            m.tpr(),
            model.cluster_throughput(&m.txn_size_hist, m.requests, 16),
        )
    };
    let (tpr1, thr1) = run(1);
    let (tpr4, thr4) = run(4);
    assert!(tpr4 < 0.65 * tpr1, "TPR: {tpr4:.2} vs {tpr1:.2}");
    assert!(thr4 > 1.25 * thr1, "throughput: {thr4:.0} vs {thr1:.0}");
}

#[test]
fn enhanced_rnb_with_2_5x_memory_halves_tpr() {
    // Fig 8's headline: ~50% TPR reduction at ~2.5× memory with
    // overbooking + hitchhiking (paper: "increasing the available memory
    // by a factor of 2.5 achieves the same reduction" as 4x trivial).
    let graph = test_graph(6);
    let baseline = {
        let cfg = ExperimentConfig::new(SimConfig::basic(16, 1), 0, 1500);
        let mut stream = EgoRequests::new(&graph, 7);
        run_experiment(&cfg, graph.num_nodes(), &mut stream).tpr()
    };
    let enhanced = {
        let cfg = ExperimentConfig::new(SimConfig::enhanced(16, 4, 2.5), 25_000, 1500);
        let mut stream = EgoRequests::new(&graph, 7);
        run_experiment(&cfg, graph.num_nodes(), &mut stream).tpr()
    };
    let reduction = 1.0 - enhanced / baseline;
    assert!(
        reduction > 0.35,
        "expected ≳40% TPR reduction at 2.5x memory, got {:.1}% ({enhanced:.2} vs {baseline:.2})",
        reduction * 100.0
    );
}

#[test]
fn excessive_overbooking_can_increase_tpr() {
    // §III-D's warning: "excessive overbooking can increase TPR!" — at
    // memory 1.0 (zero replica space) with many declared replicas and no
    // hitchhiking, planned fetches miss and round 2 adds transactions.
    let graph = test_graph(8);
    let tpr_of = |sim: SimConfig| {
        let cfg = ExperimentConfig::new(sim, 1000, 1200);
        let mut stream = EgoRequests::new(&graph, 9);
        run_experiment(&cfg, graph.num_nodes(), &mut stream).tpr()
    };
    let baseline = tpr_of(SimConfig::basic(16, 1));
    let overbooked = tpr_of(SimConfig::enhanced(16, 4, 1.0).with_hitchhiking(false));
    assert!(
        overbooked > baseline,
        "zero-memory overbooking should cost extra transactions: {overbooked:.2} vs {baseline:.2}"
    );
}

#[test]
fn merging_and_limit_compose_with_rnb() {
    use rnb_workload::LimitSpec;
    let graph = test_graph(10);
    let run = |merge: usize, limit: LimitSpec| {
        let cfg = ExperimentConfig::new(SimConfig::basic(16, 3), 100, 1000)
            .with_merge_window(merge)
            .with_limit(limit);
        let mut stream = EgoRequests::new(&graph, 11);
        run_experiment(&cfg, graph.num_nodes(), &mut stream)
    };
    let plain = run(1, LimitSpec::All);
    let merged = run(2, LimitSpec::All);
    let limited = run(1, LimitSpec::Fraction(0.5));
    // Merged: fewer transactions per user request (two requests share a
    // merged one).
    assert!(merged.tpr() / 2.0 < plain.tpr());
    // LIMIT 50%: strictly cheaper than full fetch.
    assert!(limited.tpr() < plain.tpr());
}

#[test]
fn ego_request_sizes_follow_graph_degrees() {
    let graph = test_graph(12);
    let mut stream = EgoRequests::new(&graph, 13);
    // The degree distribution is fat-tailed (few nodes with thousands of
    // friends), so the sample mean converges slowly — use many requests
    // and a tolerance sized to the heavy-tail standard error.
    let reqs = stream.take_requests(30_000);
    let stats = rnb_workload::request_stats(&reqs);
    // Mean request size ≈ edges / eligible users.
    let eligible = graph.num_nodes() - graph.isolated_sources();
    let expect = graph.num_edges() as f64 / eligible as f64;
    assert!(
        (stats.mean_size - expect).abs() / expect < 0.2,
        "mean {} vs expected {expect}",
        stats.mean_size
    );
    assert!(stats.min_size >= 1, "ego requests are never empty");
    assert!(stats.max_size > 10 * expect as usize, "heavy tail missing");
}
