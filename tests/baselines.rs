//! Baseline comparisons (§II-C): RnB vs adding servers vs full-system
//! replication, at matched resource budgets.

use rnb_analysis::urn;
use rnb_core::{Bundler, FullSystemReplication, Placement, RnbConfig};
use rnb_workload::{RequestStream, UniformRequests};

/// Mean TPR of a planner over a uniform request stream.
fn mean_tpr(mut plan: impl FnMut(&[u64], u64) -> usize, m: usize, trials: usize) -> f64 {
    let mut stream = UniformRequests::new(100_000, m, 99);
    let mut total = 0usize;
    for i in 0..trials {
        let req = stream.next_request();
        total += plan(&req, i as u64);
    }
    total as f64 / trials as f64
}

#[test]
fn full_system_replication_gains_capacity_but_not_tpr() {
    // The paper's framing (§II-C): the data set fills a 16-server
    // cluster, so full-system replication buys 4x throughput with 4x
    // *hardware* (4 complete 16-server copies = 64 servers) while the TPR
    // per request stays exactly that of the 16-server system. RnB instead
    // keeps the 16 servers, adds only memory, and lowers the TPR itself.
    let fsr = FullSystemReplication::new(64, 4, 5);
    let rnb = Bundler::from_config(&RnbConfig::new(16, 4).with_seed(5));
    let m = 30usize;
    let fsr_tpr = mean_tpr(|req, sel| fsr.plan(req, sel).tpr(), m, 300);
    let rnb_tpr = mean_tpr(|req, _| rnb.plan(req).tpr(), m, 300);

    // FSR TPR ≈ urn model of one 16-server copy — replication bought no
    // per-request efficiency ("one gets exactly what one pays for").
    let expect = urn::tpr(16, m);
    assert!(
        (fsr_tpr - expect).abs() / expect < 0.05,
        "FSR TPR {fsr_tpr:.2} should match 16-server urn model {expect:.2}"
    );
    // RnB bundles: far fewer transactions per request on a quarter of the
    // hardware.
    assert!(
        rnb_tpr < 0.6 * fsr_tpr,
        "RnB should beat full-system replication per request: {rnb_tpr:.2} vs {fsr_tpr:.2}"
    );
    // Throughput per CPU: FSR = 4x throughput / 4x CPUs = unchanged;
    // RnB = (fsr_tpr / rnb_tpr)x throughput on the same CPUs.
    let per_cpu_gain = fsr_tpr / rnb_tpr;
    assert!(
        per_cpu_gain > 1.5,
        "RnB per-CPU gain {per_cpu_gain:.2} too small"
    );
}

#[test]
fn fsr_spreads_load_across_copies() {
    let fsr = FullSystemReplication::new(12, 3, 6);
    let mut per_group = [0usize; 3];
    let mut stream = UniformRequests::new(10_000, 20, 1);
    for sel in 0..300u64 {
        let req = stream.next_request();
        let plan = fsr.plan(&req, sel);
        per_group[(sel % 3) as usize] += plan.tpr();
        for t in &plan.transactions {
            assert_eq!(
                t.server / 4,
                (sel % 3) as u32,
                "transaction escaped its copy"
            );
        }
    }
    // Round-robin selectors → near-equal load.
    let max = *per_group.iter().max().unwrap() as f64;
    let min = *per_group.iter().min().unwrap() as f64;
    assert!(max / min < 1.2, "copies unbalanced: {per_group:?}");
}

#[test]
fn adding_servers_vs_adding_memory_at_matched_budget() {
    // The paper's pitch: with per-request work dominated by transactions,
    // 16 servers + 4x memory (RnB) beats 64 servers with 1 copy for
    // request-heavy workloads (per-server efficiency).
    let m = 40usize;
    let rnb = Bundler::from_config(&RnbConfig::new(16, 4));
    let rnb_tpr = mean_tpr(|req, _| rnb.plan(req).tpr(), m, 300);
    let wide_tpr = urn::tpr(64, m); // 64 servers, no replication
                                    // Total transactions per request: RnB needs fewer in absolute terms.
    assert!(
        rnb_tpr < wide_tpr,
        "RnB TPR {rnb_tpr:.2} should undercut the 64-server no-replication TPR {wide_tpr:.2}"
    );
    // Per-server load (TPRPS): RnB's 16 servers each see more, but the
    // *scaling factor* argument (Fig 2) shows the 64-server system wastes
    // its CPUs; verify the hole: 64 servers deliver << 4x the throughput
    // of 16 at this request size.
    let gain = urn::throughput_scaling(16, 64, m);
    assert!(
        gain < 2.5,
        "4x servers should yield under 2.5x throughput here, got {gain:.2}"
    );
}

#[test]
fn write_amplification_matches_replication_level() {
    // §III-G: during writes RnB updates every replica. The write set size
    // equals the replication level for both schemes.
    let fsr = FullSystemReplication::new(16, 4, 7);
    let rnb = Bundler::from_config(&RnbConfig::new(16, 4).with_seed(7));
    for item in 0..200u64 {
        assert_eq!(fsr.write_set(item).len(), 4);
        assert_eq!(rnb.placement().replicas(item).len(), 4);
    }
}
