//! Read/write operation mixes, for the §III-G "activity is not read
//! mostly" boundary experiments (and mirroring the Appendix benchmark's
//! one-set-per-1000-gets configuration).

use crate::{Request, RequestStream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One storage-tier operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// A multi-item read request.
    Read(Request),
    /// A single-item write.
    Write(u64),
    /// A multi-item write burst (the bundled write path's unit of work;
    /// only emitted when [`ReadWriteMix::with_write_burst`] set a burst
    /// size above 1).
    WriteBurst(Vec<u64>),
}

/// Interleaves writes into a read-request stream.
///
/// Each emitted operation is a write with probability `write_fraction`,
/// drawn uniformly from `universe`; otherwise the next read request from
/// the inner stream.
pub struct ReadWriteMix<S> {
    reads: S,
    universe: u64,
    write_fraction: f64,
    write_burst: usize,
    rng: StdRng,
}

impl<S: RequestStream> ReadWriteMix<S> {
    /// Build a mix. `write_fraction` must be in `[0, 1)` (1.0 would never
    /// emit a read).
    pub fn new(reads: S, universe: u64, write_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&write_fraction),
            "write_fraction {write_fraction} out of [0, 1)"
        );
        assert!(universe > 0, "need a non-empty universe");
        ReadWriteMix {
            reads,
            universe,
            write_fraction,
            write_burst: 1,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Emit writes as [`Op::WriteBurst`]s of `burst` items instead of
    /// single [`Op::Write`]s — the shape `RnbClient::multi_set` (and the
    /// store's `set_multi`) consumes. `burst` must be at least 1; a
    /// burst of 1 keeps the single-write encoding.
    pub fn with_write_burst(mut self, burst: usize) -> Self {
        assert!(burst >= 1, "write burst must be at least 1");
        self.write_burst = burst;
        self
    }

    /// Produce the next operation.
    pub fn next_op(&mut self) -> Op {
        if self.write_fraction > 0.0 && self.rng.random::<f64>() < self.write_fraction {
            if self.write_burst > 1 {
                Op::WriteBurst(
                    (0..self.write_burst)
                        .map(|_| self.rng.random_range(0..self.universe))
                        .collect(),
                )
            } else {
                Op::Write(self.rng.random_range(0..self.universe))
            }
        } else {
            Op::Read(self.reads.next_request())
        }
    }

    /// Collect `n` operations.
    pub fn take_ops(&mut self, n: usize) -> Vec<Op> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mc::UniformRequests;

    fn mix(frac: f64) -> ReadWriteMix<UniformRequests> {
        ReadWriteMix::new(UniformRequests::new(1000, 5, 1), 1000, frac, 2)
    }

    #[test]
    fn zero_fraction_is_all_reads() {
        let mut m = mix(0.0);
        assert!(m.take_ops(200).iter().all(|op| matches!(op, Op::Read(_))));
    }

    #[test]
    fn fraction_is_respected() {
        let mut m = mix(0.3);
        let ops = m.take_ops(5000);
        let writes = ops.iter().filter(|op| matches!(op, Op::Write(_))).count();
        let frac = writes as f64 / ops.len() as f64;
        assert!((frac - 0.3).abs() < 0.03, "write fraction {frac}");
    }

    #[test]
    fn writes_stay_in_universe() {
        let mut m = mix(0.5);
        for op in m.take_ops(500) {
            if let Op::Write(item) = op {
                assert!(item < 1000);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = mix(0.2).take_ops(50);
        let b = mix(0.2).take_ops(50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn full_write_fraction_rejected() {
        mix(1.0);
    }

    #[test]
    fn write_bursts_replace_single_writes() {
        let mut m = mix(0.4).with_write_burst(16);
        let ops = m.take_ops(500);
        assert!(
            !ops.iter().any(|op| matches!(op, Op::Write(_))),
            "burst mode must not emit single writes"
        );
        let bursts: Vec<&Vec<u64>> = ops
            .iter()
            .filter_map(|op| match op {
                Op::WriteBurst(items) => Some(items),
                _ => None,
            })
            .collect();
        assert!(!bursts.is_empty());
        for items in bursts {
            assert_eq!(items.len(), 16);
            assert!(items.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn burst_of_one_keeps_single_write_encoding() {
        let mut m = mix(0.4).with_write_burst(1);
        assert!(m
            .take_ops(500)
            .iter()
            .all(|op| matches!(op, Op::Read(_) | Op::Write(_))));
    }
}
