//! Workload generation for the RnB experiments.
//!
//! The paper drives everything with two request models:
//!
//! * **Ego requests** (§III-B): pick a user uniformly at random from the
//!   social graph, then request the items of *all* of the user's friends —
//!   [`ego::EgoRequests`].
//! * **Monte-Carlo requests** (§III-F, the "simplified simulator"): each
//!   request is `M` distinct items drawn uniformly and independently from
//!   the universe — [`mc::UniformRequests`].
//! * **Zipf-skewed requests**: the same shape with item popularity
//!   following a Zipf law — [`zipf::ZipfRequests`] — the contention
//!   workload that exercises the store's hot-shard replication path.
//!
//! Plus two transformations:
//!
//! * **Merging** (§III-E) — combine `g` consecutive requests into one
//!   (re-exported from `rnb-core`, wrapped for streams here).
//! * **LIMIT** (§III-F) — requests of the form "fetch at least X of these
//!   items": [`limit::LimitSpec`] converts a fetched-fraction into a
//!   per-request minimum item count.
//!
//! And a composition layer: [`phases::ScriptedRequests`] switches between
//! inner streams on a declared schedule, the timeline primitive behind
//! the `rnb-cluster` scenario harness (hot-key storms, flash crowds).

pub mod ego;
pub mod limit;
pub mod mc;
pub mod mix;
pub mod phases;
pub mod zipf;

pub use ego::EgoRequests;
pub use limit::LimitSpec;
pub use mc::UniformRequests;
pub use mix::{Op, ReadWriteMix};
pub use phases::ScriptedRequests;
pub use zipf::ZipfRequests;

use rnb_graph::DiGraph;

/// A request: the set of item ids the end user needs. Items are distinct.
pub type Request = Vec<u64>;

/// Anything that produces an endless stream of requests.
///
/// Generators own their RNG (seeded at construction) so experiment runs
/// are reproducible and generators can be freely moved across threads.
pub trait RequestStream {
    /// Produce the next request. Never returns an empty request.
    fn next_request(&mut self) -> Request;

    /// Collect `n` requests.
    fn take_requests(&mut self, n: usize) -> Vec<Request> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

/// Summary statistics of a batch of requests (request-size distribution —
/// the driver of the multi-get hole).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestStats {
    /// Number of requests summarised.
    pub count: usize,
    /// Mean items per request.
    pub mean_size: f64,
    /// Largest request.
    pub max_size: usize,
    /// Smallest request.
    pub min_size: usize,
}

/// Summarise request sizes.
pub fn request_stats(requests: &[Request]) -> RequestStats {
    if requests.is_empty() {
        return RequestStats {
            count: 0,
            mean_size: 0.0,
            max_size: 0,
            min_size: 0,
        };
    }
    let sizes: Vec<usize> = requests.iter().map(|r| r.len()).collect();
    RequestStats {
        count: requests.len(),
        mean_size: sizes.iter().sum::<usize>() as f64 / sizes.len() as f64,
        max_size: *sizes.iter().max().unwrap(),
        min_size: *sizes.iter().min().unwrap(),
    }
}

/// Convenience: a small social graph for tests and doc examples
/// (star + chain: node 0 follows 1..=5, node 6 follows 7, 8).
pub fn tiny_test_graph() -> DiGraph {
    DiGraph::from_edges(9, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (6, 7), (6, 8)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basics() {
        let reqs = vec![vec![1, 2, 3], vec![4], vec![5, 6]];
        let s = request_stats(&reqs);
        assert_eq!(s.count, 3);
        assert!((s.mean_size - 2.0).abs() < 1e-12);
        assert_eq!(s.max_size, 3);
        assert_eq!(s.min_size, 1);
    }

    #[test]
    fn stats_empty() {
        let s = request_stats(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_size, 0.0);
    }

    #[test]
    fn tiny_graph_shape() {
        let g = tiny_test_graph();
        assert_eq!(g.num_nodes(), 9);
        assert_eq!(g.out_degree(0), 5);
        assert_eq!(g.out_degree(6), 2);
        assert_eq!(g.isolated_sources(), 7);
    }
}
