//! Phase-scripted request timelines.
//!
//! Cluster scenarios (see the `rnb-cluster` crate) need workloads whose
//! *shape changes mid-run*: a uniform baseline that turns into a hot-key
//! storm for a few rounds, or a flash crowd that multiplies the request
//! rate and then subsides. [`ScriptedRequests`] expresses that as an
//! ordered list of phases, each a `(request budget, inner stream)` pair;
//! the stream serves each phase's budget in order and then stays on the
//! final phase forever (a [`RequestStream`] never ends).
//!
//! ```
//! use rnb_workload::{RequestStream, ScriptedRequests, UniformRequests};
//!
//! let mut script = ScriptedRequests::new()
//!     .phase(2, UniformRequests::new(1000, 4, 7))
//!     .phase(1, UniformRequests::new(10, 4, 7)) // "storm": tiny hot set
//!     .phase(0, UniformRequests::new(1000, 4, 7)); // endless tail
//! let batch = script.take_requests(4);
//! assert_eq!(batch.len(), 4);
//! // Requests 0-1 draw from the full universe, request 2 from the hot
//! // set, request 3 (and everything after) from the tail phase.
//! assert!(batch[2].iter().all(|&item| item < 10));
//! ```

use crate::{Request, RequestStream};

/// A request stream that switches between inner streams on a declared
/// schedule. See the [module docs](self) for the scenario motivation.
#[derive(Default)]
pub struct ScriptedRequests {
    /// `(budget, stream)` per phase; a budget of 0 means "unbounded"
    /// (useful only for the final phase — later phases would starve).
    phases: Vec<(usize, Box<dyn RequestStream>)>,
    current: usize,
    served_in_phase: usize,
}

impl ScriptedRequests {
    /// An empty script; add phases with [`ScriptedRequests::phase`].
    pub fn new() -> Self {
        ScriptedRequests::default()
    }

    /// Append a phase serving `requests` requests from `stream` (0 =
    /// unbounded). The final phase never expires regardless of budget.
    pub fn phase(mut self, requests: usize, stream: impl RequestStream + 'static) -> Self {
        self.phases.push((requests, Box::new(stream)));
        self
    }

    /// Index of the phase the next request will draw from.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// Number of phases in the script.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }
}

impl RequestStream for ScriptedRequests {
    fn next_request(&mut self) -> Request {
        assert!(!self.phases.is_empty(), "ScriptedRequests needs >= 1 phase");
        // Advance past exhausted phases (skipping 0-budget ones unless
        // they are last); the final phase is never left.
        while self.current + 1 < self.phases.len() {
            let budget = self.phases[self.current].0;
            if budget != 0 && self.served_in_phase < budget {
                break;
            }
            self.current += 1;
            self.served_in_phase = 0;
        }
        self.served_in_phase += 1;
        self.phases[self.current].1.next_request()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformRequests;

    /// A stream returning a constant single-item request, for schedule
    /// assertions.
    struct Fixed(u64);
    impl RequestStream for Fixed {
        fn next_request(&mut self) -> Request {
            vec![self.0]
        }
    }

    #[test]
    fn phases_serve_in_declared_order() {
        let mut s = ScriptedRequests::new()
            .phase(2, Fixed(1))
            .phase(3, Fixed(2))
            .phase(0, Fixed(3));
        let got: Vec<u64> = (0..8).map(|_| s.next_request()[0]).collect();
        assert_eq!(got, vec![1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(s.current_phase(), 2);
    }

    #[test]
    fn final_phase_is_endless_even_with_budget() {
        let mut s = ScriptedRequests::new().phase(1, Fixed(7));
        for _ in 0..5 {
            assert_eq!(s.next_request(), vec![7]);
        }
        assert_eq!(s.num_phases(), 1);
    }

    #[test]
    fn zero_budget_middle_phase_is_skipped() {
        let mut s = ScriptedRequests::new()
            .phase(1, Fixed(1))
            .phase(0, Fixed(2))
            .phase(0, Fixed(3));
        let got: Vec<u64> = (0..3).map(|_| s.next_request()[0]).collect();
        assert_eq!(got, vec![1, 3, 3]);
    }

    #[test]
    fn works_with_real_generators() {
        let mut s = ScriptedRequests::new()
            .phase(2, UniformRequests::new(100, 4, 11))
            .phase(0, UniformRequests::new(8, 2, 11));
        let wide = s.take_requests(2);
        let narrow = s.take_requests(10);
        assert!(wide.iter().all(|r| r.len() == 4));
        assert!(narrow.iter().flatten().all(|&item| item < 8));
    }

    #[test]
    #[should_panic(expected = "needs >= 1 phase")]
    fn empty_script_panics() {
        ScriptedRequests::new().next_request();
    }
}
