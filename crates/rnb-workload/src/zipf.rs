//! Zipf-skewed Monte-Carlo requests — the contention workload behind
//! hot-shard promotion (DESIGN.md "Flat combining & hot-shard
//! replication").
//!
//! Uniform draws ([`UniformRequests`](crate::UniformRequests)) spread
//! load evenly across shards; real key-value traffic concentrates on a
//! small popular set. A Zipf law with exponent `s` gives item of rank
//! `k` (1-based) probability proportional to `1 / k^s`: at `s ≈ 1` the
//! top 1% of a 10⁴ universe draws ~20% of accesses, at `s ≈ 1.3` well
//! over half. Item ids double as ranks (id 0 is the hottest), so the hot
//! set is contiguous and easy to reason about in tests and benches.
//!
//! Sampling inverts the precomputed CDF with a binary search per draw —
//! O(log universe), no rejection loop over the heavy head, and exactly
//! one `rng.random::<f64>()` per accepted item, so streams are
//! deterministic per seed.

use crate::{Request, RequestStream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Requests of exactly `request_size` distinct items drawn from a
/// universe of `universe` items under a Zipf(`exponent`) popularity law.
pub struct ZipfRequests {
    /// `cdf[i]` = P(item <= i); the last entry is exactly 1.0.
    cdf: Vec<f64>,
    request_size: usize,
    rng: StdRng,
}

impl ZipfRequests {
    /// Build a generator. `request_size` must not exceed `universe`, and
    /// `exponent` must be finite and positive (the paper-style skew
    /// sweeps use 0.9–1.3).
    pub fn new(universe: u64, request_size: usize, exponent: f64, seed: u64) -> Self {
        assert!(request_size >= 1, "request_size must be >= 1");
        assert!(
            request_size as u64 <= universe,
            "cannot draw {request_size} distinct items from a universe of {universe}"
        );
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "zipf exponent must be finite and > 0, got {exponent}"
        );
        let mut cdf = Vec::with_capacity(universe as usize);
        let mut acc = 0.0f64;
        for rank in 1..=universe {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for p in &mut cdf {
            *p /= total;
        }
        // Guard the binary search against floating-point round-off: the
        // final bucket must cover every u in [0, 1).
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfRequests {
            cdf,
            request_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured request size.
    pub fn request_size(&self) -> usize {
        self.request_size
    }

    /// One Zipf draw: invert the CDF at a uniform `u ∈ [0, 1)`.
    fn draw(&mut self) -> u64 {
        let u = self.rng.random::<f64>();
        // partition_point returns the first index whose cdf >= u... more
        // precisely the count of entries with cdf < u — exactly the item
        // whose CDF bucket contains u.
        self.cdf.partition_point(|&p| p < u) as u64
    }
}

impl RequestStream for ZipfRequests {
    fn next_request(&mut self) -> Request {
        // Rejection sampling for distinctness, like UniformRequests. The
        // head is heavy, so collisions are common when request_size is a
        // sizable fraction of the universe — still fine for the bench
        // shapes (requests ≤ 100 over universes ≥ 10⁴), and the assert in
        // `new` keeps the loop finite.
        let mut items = std::collections::HashSet::with_capacity(self.request_size);
        let mut out = Vec::with_capacity(self.request_size);
        while out.len() < self.request_size {
            let item = self.draw();
            if items.insert(item) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_distinct_in_range() {
        let mut gen = ZipfRequests::new(1000, 50, 1.1, 1);
        for _ in 0..100 {
            let req = gen.next_request();
            assert_eq!(req.len(), 50);
            let mut sorted = req.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 50, "duplicates in request");
            assert!(sorted.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ZipfRequests::new(500, 20, 1.3, 7).take_requests(10);
        let b = ZipfRequests::new(500, 20, 1.3, 7).take_requests(10);
        assert_eq!(a, b);
        let c = ZipfRequests::new(500, 20, 1.3, 8).take_requests(10);
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn head_is_heavy() {
        // With s = 1.3 over 10⁴ items the top 1% must dominate: compare
        // the draw mass of the first 100 ids against a uniform baseline.
        let mut gen = ZipfRequests::new(10_000, 10, 1.3, 3);
        let mut head = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            for item in gen.next_request() {
                total += 1;
                if item < 100 {
                    head += 1;
                }
            }
        }
        let frac = head as f64 / total as f64;
        assert!(
            frac > 0.4,
            "top 1% drew only {frac:.3} of accesses — not skewed"
        );
    }

    #[test]
    fn rank_order_is_respected() {
        // Item 0 must be drawn at least as often as item universe-1 by a
        // wide margin.
        let mut gen = ZipfRequests::new(100, 1, 1.0, 5);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[gen.next_request()[0] as usize] += 1;
        }
        assert!(
            counts[0] > counts[99] * 4,
            "{} vs {}",
            counts[0],
            counts[99]
        );
        assert!(
            counts[0] > counts[50] * 2,
            "{} vs {}",
            counts[0],
            counts[50]
        );
    }

    #[test]
    fn full_universe_request_terminates() {
        let mut gen = ZipfRequests::new(10, 10, 1.2, 2);
        let mut req = gen.next_request();
        req.sort_unstable();
        assert_eq!(req, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "zipf exponent")]
    fn bad_exponent_rejected() {
        ZipfRequests::new(10, 1, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn oversized_request_rejected() {
        ZipfRequests::new(5, 6, 1.0, 0);
    }
}
