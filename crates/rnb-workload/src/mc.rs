//! Uniform Monte-Carlo requests — the paper's "simplified simulator"
//! workload (§III-F): "the set of items in each request is random and
//! independent of the previous request".

use crate::{Request, RequestStream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Requests of exactly `request_size` distinct items drawn uniformly from
/// a universe of `universe` items.
pub struct UniformRequests {
    universe: u64,
    request_size: usize,
    rng: StdRng,
}

impl UniformRequests {
    /// Build a generator. `request_size` must not exceed `universe`.
    pub fn new(universe: u64, request_size: usize, seed: u64) -> Self {
        assert!(request_size >= 1, "request_size must be >= 1");
        assert!(
            request_size as u64 <= universe,
            "cannot draw {request_size} distinct items from a universe of {universe}"
        );
        UniformRequests {
            universe,
            request_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured request size.
    pub fn request_size(&self) -> usize {
        self.request_size
    }
}

impl RequestStream for UniformRequests {
    fn next_request(&mut self) -> Request {
        // Rejection sampling: request_size << universe in every experiment
        // (paper uses universes of tens of thousands and requests ≤ 100).
        let mut items = std::collections::HashSet::with_capacity(self.request_size);
        let mut out = Vec::with_capacity(self.request_size);
        while out.len() < self.request_size {
            let item = self.rng.random_range(0..self.universe);
            if items.insert(item) {
                out.push(item);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_distinct_in_range() {
        let mut gen = UniformRequests::new(1000, 50, 1);
        for _ in 0..100 {
            let req = gen.next_request();
            assert_eq!(req.len(), 50);
            let mut sorted = req.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 50, "duplicates in request");
            assert!(sorted.iter().all(|&i| i < 1000));
        }
    }

    #[test]
    fn full_universe_request() {
        let mut gen = UniformRequests::new(10, 10, 2);
        let mut req = gen.next_request();
        req.sort_unstable();
        assert_eq!(req, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let a = UniformRequests::new(500, 20, 7).take_requests(10);
        let b = UniformRequests::new(500, 20, 7).take_requests(10);
        assert_eq!(a, b);
    }

    #[test]
    fn roughly_uniform_coverage() {
        let mut gen = UniformRequests::new(100, 10, 3);
        let mut counts = vec![0usize; 100];
        for _ in 0..2000 {
            for item in gen.next_request() {
                counts[item as usize] += 1;
            }
        }
        // Each item expected 200 times; demand every count within ±50%.
        for (item, &c) in counts.iter().enumerate() {
            assert!((100..=300).contains(&c), "item {item} drawn {c} times");
        }
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn oversized_request_rejected() {
        UniformRequests::new(5, 6, 0);
    }

    #[test]
    #[should_panic(expected = "request_size")]
    fn zero_request_rejected() {
        UniformRequests::new(5, 0, 0);
    }
}
