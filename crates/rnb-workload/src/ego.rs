//! Ego requests: "we randomly and uniformly picked a user … we needed to
//! fetch the items representing all of the user's friends" (§III-B).

use crate::{Request, RequestStream};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnb_graph::DiGraph;

/// Generates ego requests from a social graph.
///
/// Users with no friends would yield empty requests, which correspond to
/// no storage traffic at all; like the paper's simulator we skip them by
/// resampling (documented substitution — it only rescales the request
/// rate, not any per-request metric).
///
/// ```
/// use rnb_workload::{EgoRequests, RequestStream};
/// let graph = rnb_graph::generate::powerlaw_graph(500, 2.0, 2, 50, 4000, 1);
/// let mut requests = EgoRequests::new(&graph, 42);
/// let request = requests.next_request();
/// assert!(!request.is_empty()); // someone's friend list
/// ```
pub struct EgoRequests<'g> {
    graph: &'g DiGraph,
    rng: StdRng,
    /// Pre-filtered users with at least one friend.
    eligible: Vec<u32>,
    /// Cumulative activity weights over `eligible` (empty = uniform).
    activity_cum: Vec<u64>,
}

impl<'g> EgoRequests<'g> {
    /// Build a generator over `graph`, seeded for reproducibility. Users
    /// are sampled uniformly, as in the paper ("we randomly and uniformly
    /// picked a user").
    ///
    /// Panics if no node has outgoing edges (no request could ever be
    /// produced).
    pub fn new(graph: &'g DiGraph, seed: u64) -> Self {
        let eligible: Vec<u32> = (0..graph.num_nodes() as u32)
            .filter(|&v| graph.out_degree(v) > 0)
            .collect();
        assert!(!eligible.is_empty(), "graph has no node with friends");
        EgoRequests {
            graph,
            rng: StdRng::seed_from_u64(seed),
            eligible,
            activity_cum: Vec::new(),
        }
    }

    /// Switch to activity-weighted sampling: a user issues requests in
    /// proportion to their friend count — the well-documented correlation
    /// between connectivity and activity in real social networks. An
    /// extension knob (the paper samples uniformly); it concentrates
    /// traffic on large requests and strengthens request locality.
    pub fn with_activity_weighting(mut self) -> Self {
        let mut acc = 0u64;
        self.activity_cum = self
            .eligible
            .iter()
            .map(|&v| {
                acc += self.graph.out_degree(v) as u64;
                acc
            })
            .collect();
        self
    }

    /// Number of users that can be the subject of a request.
    pub fn eligible_users(&self) -> usize {
        self.eligible.len()
    }

    /// The request a specific user would issue (their friends' items).
    pub fn request_of(&self, user: u32) -> Request {
        self.graph
            .neighbors(user)
            .iter()
            .map(|&f| f as u64)
            .collect()
    }
}

impl RequestStream for EgoRequests<'_> {
    fn next_request(&mut self) -> Request {
        let idx = if self.activity_cum.is_empty() {
            self.rng.random_range(0..self.eligible.len())
        } else {
            let total = *self.activity_cum.last().unwrap();
            let x = self.rng.random_range(0..total);
            self.activity_cum.partition_point(|&c| c <= x)
        };
        self.request_of(self.eligible[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny_test_graph;

    #[test]
    fn requests_are_friend_sets() {
        let g = tiny_test_graph();
        let mut gen = EgoRequests::new(&g, 1);
        assert_eq!(gen.eligible_users(), 2);
        for _ in 0..50 {
            let req = gen.next_request();
            assert!(
                req == vec![1, 2, 3, 4, 5] || req == vec![7, 8],
                "unexpected request {req:?}"
            );
        }
    }

    #[test]
    fn never_empty() {
        let g = tiny_test_graph();
        let mut gen = EgoRequests::new(&g, 2);
        for _ in 0..200 {
            assert!(!gen.next_request().is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = tiny_test_graph();
        let a = EgoRequests::new(&g, 3).take_requests(20);
        let b = EgoRequests::new(&g, 3).take_requests(20);
        assert_eq!(a, b);
        let c = EgoRequests::new(&g, 4).take_requests(20);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn request_of_specific_user() {
        let g = tiny_test_graph();
        let gen = EgoRequests::new(&g, 0);
        assert_eq!(gen.request_of(6), vec![7, 8]);
        assert!(gen.request_of(1).is_empty());
    }

    #[test]
    fn mean_request_size_tracks_mean_degree_of_eligible() {
        // Uniform sampling over eligible users → mean request size equals
        // total edges / eligible users.
        let g = tiny_test_graph();
        let mut gen = EgoRequests::new(&g, 5);
        let reqs = gen.take_requests(4000);
        let mean = reqs.iter().map(|r| r.len()).sum::<usize>() as f64 / reqs.len() as f64;
        let expect = 7.0 / 2.0;
        assert!(
            (mean - expect).abs() < 0.25,
            "mean {mean}, expected ~{expect}"
        );
    }

    #[test]
    #[should_panic(expected = "no node with friends")]
    fn friendless_graph_rejected() {
        let g = DiGraph::from_edges(3, &[]);
        EgoRequests::new(&g, 0);
    }

    #[test]
    fn activity_weighting_prefers_connected_users() {
        // Node 0 has 5 friends, node 6 has 2: weighted sampling should
        // pick node 0 about 5/7 of the time (uniform would be 1/2).
        let g = tiny_test_graph();
        let mut gen = EgoRequests::new(&g, 8).with_activity_weighting();
        let reqs = gen.take_requests(7000);
        let big = reqs.iter().filter(|r| r.len() == 5).count() as f64 / reqs.len() as f64;
        assert!((big - 5.0 / 7.0).abs() < 0.03, "weighted share {big}");
        // Uniform baseline for contrast.
        let mut uni = EgoRequests::new(&g, 8);
        let ureqs = uni.take_requests(7000);
        let ubig = ureqs.iter().filter(|r| r.len() == 5).count() as f64 / ureqs.len() as f64;
        assert!((ubig - 0.5).abs() < 0.03, "uniform share {ubig}");
    }
}
