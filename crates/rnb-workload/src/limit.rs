//! LIMIT request specifications (§III-F): "fetch me at least X items out
//! of the following list".

/// How much of a request must be fetched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LimitSpec {
    /// Fetch everything (no LIMIT clause).
    All,
    /// Fetch at least this fraction of the requested items (rounded up).
    /// The paper evaluates 0.50, 0.90 and 0.95.
    Fraction(f64),
    /// Fetch at least this absolute number of items (clamped to the
    /// request size).
    Count(usize),
}

impl LimitSpec {
    /// The minimum item count this spec demands for a request of
    /// `request_size` items.
    pub fn min_items(&self, request_size: usize) -> usize {
        match *self {
            LimitSpec::All => request_size,
            LimitSpec::Fraction(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction {f} out of [0,1]");
                (f * request_size as f64).ceil() as usize
            }
            LimitSpec::Count(k) => k.min(request_size),
        }
    }

    /// Label for experiment tables, e.g. `"90%"` or `"all"`.
    pub fn label(&self) -> String {
        match *self {
            LimitSpec::All => "all".to_string(),
            LimitSpec::Fraction(f) => format!("{:.0}%", f * 100.0),
            LimitSpec::Count(k) => format!(">={k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_full() {
        assert_eq!(LimitSpec::All.min_items(37), 37);
        assert_eq!(LimitSpec::All.min_items(0), 0);
    }

    #[test]
    fn fraction_rounds_up() {
        assert_eq!(LimitSpec::Fraction(0.5).min_items(10), 5);
        assert_eq!(LimitSpec::Fraction(0.5).min_items(11), 6);
        assert_eq!(LimitSpec::Fraction(0.9).min_items(100), 90);
        assert_eq!(LimitSpec::Fraction(0.95).min_items(20), 19);
        assert_eq!(LimitSpec::Fraction(1.0).min_items(7), 7);
        assert_eq!(LimitSpec::Fraction(0.0).min_items(7), 0);
    }

    #[test]
    fn count_clamps() {
        assert_eq!(LimitSpec::Count(5).min_items(10), 5);
        assert_eq!(LimitSpec::Count(50).min_items(10), 10);
    }

    #[test]
    fn labels() {
        assert_eq!(LimitSpec::All.label(), "all");
        assert_eq!(LimitSpec::Fraction(0.9).label(), "90%");
        assert_eq!(LimitSpec::Count(3).label(), ">=3");
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn bad_fraction() {
        LimitSpec::Fraction(1.5).min_items(10);
    }
}
