//! Regression tests for graceful shutdown: a drained shutdown must not
//! truncate replies to requests the server already received.
//!
//! The old hard exit path (`StoreServer::shutdown`) models a crash:
//! workers drop connections the moment the flag flips, so a pipelined
//! client could observe a closed socket with half its replies missing.
//! `shutdown_drain` keeps serving until clients hang up (or a bounded
//! deadline), which makes the scripted sequence below fully
//! deterministic: the client half-closes after sending, TCP orders the
//! FIN after the request bytes, so the server reads every request and
//! flushes every reply before retiring the connection on EOF.

use rnb_store::{Store, StoreServer};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A pipelined burst racing a draining shutdown still gets every reply.
#[test]
fn drain_does_not_truncate_pipelined_replies() {
    for _round in 0..10 {
        let mut server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();

        // Connect before the drain starts (a draining server rejects
        // *new* connections by design) and wait — bounded, no sleeping —
        // until the poller owns the socket, so the race below is about
        // buffered requests, not the accept handshake.
        let stream = TcpStream::connect(server.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        let mut polls = 0u64;
        while server.live_connections() == 0 {
            polls += 1;
            assert!(polls < 50_000_000, "connection never registered");
            std::thread::yield_now();
        }

        let client = std::thread::spawn(move || {
            let mut stream = stream;
            // 32 pipelined requests in one segment, then half-close: the
            // FIN arrives after the request bytes, so a draining server
            // is obliged to answer all of them.
            let mut burst = Vec::new();
            for i in 0..16 {
                let val = format!("v{i}");
                burst.extend_from_slice(
                    format!("set k{i} 0 0 {}\r\n{val}\r\n", val.len()).as_bytes(),
                );
                burst.extend_from_slice(format!("get k{i}\r\n").as_bytes());
            }
            stream.write_all(&burst).unwrap();
            stream.shutdown(Shutdown::Write).unwrap();
            let mut got = Vec::new();
            stream.read_to_end(&mut got).unwrap();
            String::from_utf8(got).unwrap()
        });

        // Race: the drain starts while the burst may still be in flight.
        server.shutdown_drain(Duration::from_secs(10));

        let text = client.join().unwrap();
        let mut expect = String::new();
        for i in 0..16 {
            let val = format!("v{i}");
            expect.push_str("STORED\r\n");
            expect.push_str(&format!("VALUE k{i} 0 {}\r\n{val}\r\nEND\r\n", val.len()));
        }
        assert_eq!(text, expect, "truncated or reordered replies");
    }
}

/// A client that never disconnects cannot wedge the drain forever: the
/// deadline expires and the remaining connection is closed abruptly.
#[test]
fn drain_deadline_bounds_lingering_clients() {
    let mut server = StoreServer::start(Arc::new(Store::new(1 << 20))).unwrap();
    let stream = TcpStream::connect(server.addr()).unwrap();
    server.shutdown_drain(Duration::from_millis(50));
    // The server is fully shut down despite the open connection.
    let mut stream = stream;
    let _ = stream.write_all(b"version\r\n");
    let mut buf = Vec::new();
    let n = stream.read_to_end(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "connection must be closed after the deadline");
}

/// Drain on an idle server (no connections) returns promptly and is
/// idempotent with the crash-style shutdown.
#[test]
fn drain_without_connections_is_immediate() {
    let mut server = StoreServer::start(Arc::new(Store::new(1 << 20))).unwrap();
    server.shutdown_drain(Duration::from_secs(10));
    server.shutdown();
    server.shutdown_drain(Duration::from_secs(10));
}
