//! Proof of the serving path's zero-steady-state-allocation guarantee.
//!
//! A counting global allocator (vendored `alloc-counter` stand-in) wraps
//! the system allocator with thread-local counters. The first pass over
//! a get/set traffic script warms one [`rnb_store::ConnScratch`] — line
//! buffer, data buffer, key ranges, multi-get scratch, response buffer —
//! and the shard-side value storage (same-length `set` overwrites reuse
//! the existing allocation via `Arc::get_mut`). Every later pass of the
//! per-connection command loop must perform **zero** allocator calls,
//! as long as values fit the pooled buffers.
//!
//! Kept to a single `#[test]` so no sibling test thread muddies the
//! warm-up ordering.

use alloc_counter::{count_alloc, AllocCounterSystem};
use rnb_store::{serve_connection, ConnScratch, Store};
use std::io::Cursor;

#[global_allocator]
static ALLOC: AllocCounterSystem = AllocCounterSystem;

const VALUE_LEN: usize = 16;

/// A pipelined traffic script: multi-gets of several shapes interleaved
/// with same-length `set` overwrites of existing keys — the steady-state
/// workload of the paper's load generator.
fn traffic_script(keys: &[String]) -> Vec<u8> {
    let mut script = Vec::new();
    // One big multi-get over every key.
    script.extend_from_slice(b"get");
    for k in keys {
        script.push(b' ');
        script.extend_from_slice(k.as_bytes());
    }
    script.extend_from_slice(b"\r\n");
    // Small gets (hit + miss mixed), then overwriting sets.
    for (i, k) in keys.iter().enumerate() {
        script.extend_from_slice(format!("get {k} missing-{i}\r\n").as_bytes());
        script.extend_from_slice(format!("set {k} 0 0 {VALUE_LEN}\r\n").as_bytes());
        script.extend_from_slice(&[b'v'; VALUE_LEN]);
        script.extend_from_slice(b"\r\n");
        script.extend_from_slice(format!("set {k} 0 0 {VALUE_LEN} noreply\r\n").as_bytes());
        script.extend_from_slice(&[b'w'; VALUE_LEN]);
        script.extend_from_slice(b"\r\n");
    }
    script
}

#[test]
fn steady_state_serving_does_not_allocate() {
    let store = Store::with_shards(1 << 22, 8);
    let keys: Vec<String> = (0..20).map(|i| format!("key-{i}")).collect();
    for k in &keys {
        store.set(k.as_bytes(), &[b'0'; VALUE_LEN], 0, false);
    }
    let script = traffic_script(&keys);
    let mut scratch = ConnScratch::new();

    // Warm-up: grows every pooled buffer to the script's steady-state
    // shape (and leaves each value's Arc at refcount 1).
    for _ in 0..2 {
        let mut reader = Cursor::new(&script[..]);
        serve_connection(&store, &mut reader, &mut std::io::sink(), &mut scratch)
            .expect("serve over in-memory transport");
    }
    let warm_stats = store.stats();
    assert!(warm_stats.hits > 0 && warm_stats.misses > 0 && warm_stats.sets > 0);

    // Steady state: replaying the same traffic must not touch the
    // allocator at all — no allocs, no reallocs, no deallocs.
    for round in 0..5 {
        let mut reader = Cursor::new(&script[..]);
        let ((allocs, reallocs, deallocs), result) = count_alloc(|| {
            serve_connection(&store, &mut reader, &mut std::io::sink(), &mut scratch)
        });
        result.expect("serve over in-memory transport");
        assert_eq!(
            (allocs, reallocs, deallocs),
            (0, 0, 0),
            "round {round}: the command loop touched the allocator"
        );
    }

    // The traffic really exercised the store both rounds.
    let s = store.stats();
    assert!(s.get_txns > warm_stats.get_txns);
    assert!(s.sets > warm_stats.sets);
    assert_eq!(s.curr_items, 20);
}
