//! Byte-level mutation fuzzing of the incremental request parser
//! (`protocol::next_request`), the ROADMAP fuzz-depth carry-over item.
//!
//! Three properties, each checked against arbitrary bytes AND against
//! byte-level mutations of well-formed pipelined request streams (the
//! adversarial inputs most likely to sit near the parser's edges):
//!
//! 1. **No panics** — the parser is on the serving path (xtask R1); a
//!    panicking parse is a remote crash.
//! 2. **Progress** — `Request`/`Error` always consume at least one byte
//!    and never more than the buffer holds, so the poller's drain loop
//!    cannot spin or overrun; `Incomplete` consumes nothing by
//!    contract; `Desync` closes the connection.
//! 3. **Truncation stability** — feeding the same stream byte by byte
//!    must classify each request exactly once and identically however
//!    the reads are chopped: once some prefix yields a non-`Incomplete`
//!    result, every longer prefix yields the *same* variant with the
//!    same `consumed` (and payload, for `Request`). This pins the
//!    Desync-vs-recoverable-Error boundary across every truncation
//!    point — a TCP segmentation change can never flip a recoverable
//!    error into a connection kill or vice versa.

use proptest::prelude::*;
use rnb_store::protocol::{next_request, NextRequest};

/// A classification that can be compared across prefix lengths (borrow
/// of the line/data is reduced to owned bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Outcome {
    Request {
        line: Vec<u8>,
        data: Vec<u8>,
        consumed: usize,
    },
    Error {
        msg: String,
        consumed: usize,
    },
    Desync,
}

fn classify(buf: &[u8]) -> Option<Outcome> {
    match next_request(buf) {
        NextRequest::Incomplete => None,
        NextRequest::Request {
            line,
            data,
            consumed,
            ..
        } => Some(Outcome::Request {
            line: line.to_vec(),
            data: data.to_vec(),
            consumed,
        }),
        NextRequest::Error { msg, consumed } => Some(Outcome::Error { msg, consumed }),
        NextRequest::Desync => Some(Outcome::Desync),
    }
}

/// Progress invariant for one parse over one buffer.
fn check_progress(buf: &[u8]) {
    if let Some(outcome) = classify(buf) {
        match outcome {
            Outcome::Request { consumed, .. } | Outcome::Error { consumed, .. } => {
                assert!(consumed >= 1, "zero-byte consume would spin the drain loop");
                assert!(
                    consumed <= buf.len(),
                    "consumed {consumed} > buffered {}",
                    buf.len()
                );
            }
            Outcome::Desync => {} // connection closes; nothing drained
        }
    }
}

/// Truncation stability: classify every prefix of `stream`; the first
/// non-`Incomplete` classification must be reproduced verbatim by every
/// longer prefix (including the full buffer).
fn check_truncation_stability(stream: &[u8]) {
    let mut first: Option<(usize, Outcome)> = None;
    for len in 0..=stream.len() {
        let prefix = &stream[..len];
        check_progress(prefix);
        match (&first, classify(prefix)) {
            (None, Some(outcome)) => first = Some((len, outcome)),
            (Some((at, expect)), got) => {
                let got = got.unwrap_or_else(|| {
                    panic!("prefix {len} regressed to Incomplete (decided at {at})")
                });
                assert_eq!(
                    &got, expect,
                    "classification flipped between prefix {at} and {len}"
                );
            }
            (None, None) => {}
        }
    }
}

/// A well-formed request picked by index, exercising every command
/// shape including data blocks.
fn template(which: usize, key: &str, flags: u32, payload: &[u8]) -> Vec<u8> {
    match which % 6 {
        0 => format!("get {key}\r\n").into_bytes(),
        1 => format!("gets {key} {key}2\r\n").into_bytes(),
        2 => {
            let mut v = format!("set {key} {flags} 0 {}\r\n", payload.len()).into_bytes();
            v.extend_from_slice(payload);
            v.extend_from_slice(b"\r\n");
            v
        }
        3 => {
            let mut v = format!("cas {key} {flags} 0 {} 99\r\n", payload.len()).into_bytes();
            v.extend_from_slice(payload);
            v.extend_from_slice(b"\r\n");
            v
        }
        4 => format!("delete {key}\r\n").into_bytes(),
        _ => b"version\r\n".to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    /// Property 1+2 on fully arbitrary bytes.
    #[test]
    fn arbitrary_bytes_never_panic_and_make_progress(
        buf in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        check_progress(&buf);
    }

    /// Property 3 on arbitrary bytes: even garbage classifies stably
    /// across truncation points.
    #[test]
    fn arbitrary_bytes_classify_stably(
        buf in proptest::collection::vec(any::<u8>(), 0..80),
    ) {
        check_truncation_stability(&buf);
    }

    /// Properties 1-3 on byte-level mutations of a well-formed pipelined
    /// stream: flip, insert, or delete a single byte and the parser must
    /// still make progress and classify each truncation point stably.
    #[test]
    fn mutated_streams_classify_stably(
        shapes in proptest::collection::vec((0usize..6, 0u32..1000), 1..4),
        key in "[a-zA-Z0-9_.-]{1,12}",
        payload in proptest::collection::vec(any::<u8>(), 0..24),
        mutation in 0usize..4,
        position in 0usize..256,
        byte in any::<u8>(),
    ) {
        // Payload bytes may not contain the block terminator mid-value:
        // memcached's framing is length-prefixed, so any byte is legal —
        // keep them all, that is the point of the fuzz.
        let mut stream = Vec::new();
        for &(which, flags) in &shapes {
            stream.extend_from_slice(&template(which, &key, flags, &payload));
        }
        match mutation {
            0 if !stream.is_empty() => {
                let at = position % stream.len();
                stream[at] ^= byte | 1; // guaranteed to change the byte
            }
            1 => {
                let at = position % (stream.len() + 1);
                stream.insert(at, byte);
            }
            2 if !stream.is_empty() => {
                stream.remove(position % stream.len());
            }
            _ => {} // unmutated well-formed stream
        }
        check_truncation_stability(&stream);
    }

    /// Unmutated well-formed streams must classify as `Request` (never
    /// `Error`/`Desync`) at the full-buffer truncation point, and
    /// consume the exact bytes of the first request. Payloads are
    /// non-empty: a `bytes 0` storage command returns at the command
    /// line and its empty data block's CRLF is later skipped as a blank
    /// line (the stream stays in sync but `consumed` is two short of
    /// the encoded length), so the exact-length walk would misreport.
    #[test]
    fn well_formed_streams_parse_cleanly(
        shapes in proptest::collection::vec((0usize..6, 0u32..1000), 1..4),
        key in "[a-zA-Z0-9_.-]{1,12}",
        payload in proptest::collection::vec(any::<u8>(), 1..24),
    ) {
        let mut stream = Vec::new();
        let mut lens = Vec::new();
        for &(which, flags) in &shapes {
            let req = template(which, &key, flags, &payload);
            lens.push(req.len());
            stream.extend_from_slice(&req);
        }
        // Walk the whole pipeline: each request consumes exactly its
        // encoded length.
        let mut offset = 0usize;
        for len in lens {
            match next_request(&stream[offset..]) {
                NextRequest::Request { consumed, .. } => {
                    prop_assert_eq!(consumed, len);
                    offset += consumed;
                }
                other => prop_assert!(false, "well-formed request mis-parsed: {:?}", other),
            }
        }
        prop_assert_eq!(offset, stream.len());
    }
}
