//! TCP server speaking the memcached text protocol.
//!
//! Architecture (see README "Serving path architecture"): a single
//! accept thread feeds a **bounded queue** of connections to a **fixed
//! worker pool**. Each worker owns one [`ConnScratch`] — line buffer,
//! data buffer, key ranges, multi-get scratch, and response buffer — so
//! the per-request command loop ([`serve_connection`]) is
//! allocation-free at steady state (proven by the `zero_alloc_serve`
//! integration test). Each request is answered with one `write_all`.

use crate::protocol::{self, reply, Command, StoreVerb};
use crate::shard::{ArithOutcome, CasOutcome, SetOutcome, Value};
use crate::store::{GetScratch, Store};
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What the accept thread hands a worker: the connection's registry id
/// plus its stream.
type AcceptedConn = (u64, TcpStream);

/// Tuning knobs for [`StoreServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections. Each worker owns its scratch
    /// buffers and serves one connection at a time.
    pub workers: usize,
    /// Bound of the accept queue; the accept thread blocks (and the OS
    /// listen backlog takes over) when this many connections await a
    /// worker.
    pub accept_backlog: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // At least 4 workers even on small machines: tests (and the
        // paper's load generator) hold several concurrent connections.
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ServerConfig {
            workers: cpus.max(4),
            accept_backlog: 64,
        }
    }
}

/// Live-connection registry: the accept thread registers a clone of
/// every stream (keyed by connection id), workers deregister when the
/// connection finishes, and shutdown severs whatever is left. Pruning on
/// deregistration keeps the list bounded by the number of *live*
/// connections — the seed version only ever grew.
#[derive(Default)]
struct ConnRegistry {
    conns: Mutex<Vec<(u64, TcpStream)>>,
}

impl ConnRegistry {
    fn register(&self, id: u64, stream: TcpStream) {
        self.conns.lock().push((id, stream));
    }

    fn deregister(&self, id: u64) {
        self.conns.lock().retain(|(cid, _)| *cid != id);
    }

    fn sever_all(&self) {
        for (_, conn) in self.conns.lock().iter() {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }

    fn len(&self) -> usize {
        self.conns.lock().len()
    }
}

/// A running store server. Dropping the handle shuts the server down,
/// severing live connections (so tests can inject server failures).
pub struct StoreServer {
    addr: SocketAddr,
    store: Arc<Store>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<ConnRegistry>,
}

impl StoreServer {
    /// Start a server for `store` on a loopback port chosen by the OS.
    pub fn start(store: Arc<Store>) -> io::Result<StoreServer> {
        Self::start_with(store, 0, ServerConfig::default())
    }

    /// Start on a specific loopback port (0 = OS-chosen).
    pub fn start_on(store: Arc<Store>, port: u16) -> io::Result<StoreServer> {
        Self::start_with(store, port, ServerConfig::default())
    }

    /// Start with explicit [`ServerConfig`] knobs.
    pub fn start_with(
        store: Arc<Store>,
        port: u16,
        config: ServerConfig,
    ) -> io::Result<StoreServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnRegistry::default());

        let (tx, rx): (SyncSender<AcceptedConn>, Receiver<AcceptedConn>) =
            sync_channel(config.accept_backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let store = Arc::clone(&store);
                let registry = Arc::clone(&registry);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    let mut scratch = ConnScratch::new();
                    loop {
                        // Hold the receiver lock only while waiting for
                        // the next connection, never while serving one.
                        let next = { rx.lock().recv() };
                        let Ok((id, stream)) = next else { break };
                        if !shutdown.load(Ordering::SeqCst) {
                            let _ = serve_stream(&store, stream, &mut scratch);
                        }
                        registry.deregister(id);
                    }
                })
            })
            .collect();

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_registry = Arc::clone(&registry);
        let accept_thread = std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let id = next_id;
                        next_id += 1;
                        if let Ok(clone) = stream.try_clone() {
                            accept_registry.register(id, clone);
                        }
                        if tx.send((id, stream)).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            // `tx` drops here: workers drain the queue, then exit.
        });

        Ok(StoreServer {
            addr,
            store,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            registry,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Connections currently registered (live or queued). Bounded by the
    /// churn the workers have not yet retired; returns to zero once all
    /// clients disconnect.
    pub fn live_connections(&self) -> usize {
        self.registry.len()
    }

    /// Stop accepting connections, sever every live connection, and join
    /// the accept thread and workers. Clients with open connections
    /// observe I/O errors on their next operation — a crashed server,
    /// from their point of view.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Severing live connections errors out any worker mid-serve, so
        // the queue keeps draining even if it was full.
        self.registry.sever_all();
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connections accepted between the first sweep and the listener
        // closing (the dummy included) get severed too.
        self.registry.sever_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// memcached `exptime` semantics for the range the experiments use:
/// 0 = never expires, negative = already expired (the entry is stored,
/// then immediately invisible), otherwise relative seconds.
fn ttl_of(exptime: i64) -> Option<Duration> {
    match exptime {
        0 => None,
        t if t < 0 => Some(Duration::ZERO),
        t => Some(Duration::from_secs(t.unsigned_abs())),
    }
}

/// Per-connection (worker-owned, connection-reused) buffers for
/// [`serve_connection`]. Everything grows to the connection's
/// steady-state sizes and is then reused verbatim — the command loop
/// performs no allocation once warm.
#[derive(Debug, Default)]
pub struct ConnScratch {
    /// Current request line (without CRLF).
    line: Vec<u8>,
    /// Current `set`/`cas` data block.
    data: Vec<u8>,
    /// `(start, end)` offsets of each get key within `line`.
    key_ranges: Vec<(usize, usize)>,
    /// Shard-batching scratch for the multi-get.
    get: GetScratch,
    /// Multi-get results, in request key order.
    values: Vec<Option<Value>>,
    /// Assembled response; one `write_all` per request.
    response: Vec<u8>,
}

impl ConnScratch {
    /// Fresh scratch; buffers size themselves on first use.
    pub const fn new() -> Self {
        ConnScratch {
            line: Vec::new(),
            data: Vec::new(),
            key_ranges: Vec::new(),
            get: GetScratch::new(),
            values: Vec::new(),
            response: Vec::new(),
        }
    }
}

fn serve_stream(store: &Store, stream: TcpStream, scratch: &mut ConnScratch) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    serve_connection(store, &mut reader, &mut writer, scratch)
}

/// The command loop for one connection: read a line, execute, answer
/// with a single `write_all`. Public (and generic over the transport) so
/// the zero-allocation test can drive it over in-memory buffers.
pub fn serve_connection<R: BufRead, W: Write>(
    store: &Store,
    reader: &mut R,
    writer: &mut W,
    scratch: &mut ConnScratch,
) -> io::Result<()> {
    let ConnScratch {
        line,
        data,
        key_ranges,
        get,
        values,
        response,
    } = scratch;
    let stats = store.raw_stats();

    while let Some(line_bytes) = protocol::read_line_into(reader, line)? {
        let mut bytes_read = line_bytes as u64;
        response.clear();
        let mut quit = false;
        if line.is_empty() {
            stats.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
            continue;
        }
        match protocol::parse_command(line) {
            Ok(Command::Get { keys, with_cas }) => {
                key_ranges.clear();
                key_ranges.extend(keys.ranges());
                store.get_multi_with(
                    get,
                    key_ranges.len(),
                    |i| {
                        let (s, e) = key_ranges[i];
                        &line[s..e]
                    },
                    values,
                );
                for (&(s, e), value) in key_ranges.iter().zip(values.iter()) {
                    if let Some(v) = value {
                        let cas = with_cas.then_some(v.cas);
                        protocol::write_value(response, &line[s..e], v.flags, &v.data, cas)?;
                    }
                }
                protocol::write_end(response)?;
                // Drop the value Arcs now: a later same-length `set` can
                // then overwrite in place instead of reallocating.
                values.clear();
            }
            Ok(Command::Set {
                verb,
                key,
                flags,
                exptime,
                bytes,
                noreply,
            }) => {
                bytes_read += protocol::read_data_block_into(reader, bytes, data)? as u64;
                let ttl = ttl_of(exptime);
                let outcome = match verb {
                    StoreVerb::Set => Some(store.set_with_ttl(key, data, flags, false, ttl)),
                    StoreVerb::Add => store.add(key, data, flags, ttl),
                    StoreVerb::Replace => store.replace(key, data, flags, ttl),
                };
                if !noreply {
                    response.extend_from_slice(match outcome {
                        Some(SetOutcome::Stored { .. }) => reply::STORED,
                        Some(SetOutcome::OutOfMemory) => reply::OOM,
                        None => reply::NOT_STORED,
                    });
                }
            }
            Ok(Command::Cas {
                key,
                flags,
                exptime,
                bytes,
                cas,
                noreply,
            }) => {
                bytes_read += protocol::read_data_block_into(reader, bytes, data)? as u64;
                let outcome = store.cas(key, data, flags, cas, ttl_of(exptime));
                if !noreply {
                    response.extend_from_slice(match outcome {
                        CasOutcome::Stored => reply::STORED,
                        CasOutcome::Exists => reply::EXISTS,
                        CasOutcome::NotFound => reply::NOT_FOUND,
                        CasOutcome::OutOfMemory => reply::OOM,
                    });
                }
            }
            Ok(Command::Arith {
                key,
                delta,
                negative,
                noreply,
            }) => {
                let outcome = store.arith(key, delta, negative);
                if !noreply {
                    match outcome {
                        ArithOutcome::Value(v) => write!(response, "{v}\r\n")?,
                        ArithOutcome::NotFound => response.extend_from_slice(reply::NOT_FOUND),
                        ArithOutcome::NonNumeric => response.extend_from_slice(reply::NON_NUMERIC),
                    }
                }
            }
            Ok(Command::Delete { key, noreply }) => {
                let deleted = store.delete(key);
                if !noreply {
                    response.extend_from_slice(if deleted {
                        reply::DELETED
                    } else {
                        reply::NOT_FOUND
                    });
                }
            }
            Ok(Command::Stats) => {
                for (name, value) in store.stats().stat_lines() {
                    write!(response, "STAT {name} {value}\r\n")?;
                }
                protocol::write_end(response)?;
            }
            Ok(Command::Version) => response.extend_from_slice(reply::VERSION),
            Ok(Command::Quit) => quit = true,
            Err(msg) => {
                write!(response, "CLIENT_ERROR {msg}\r\n")?;
            }
        }
        stats.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
        if !response.is_empty() {
            writer.write_all(response)?;
            writer.flush()?;
            stats
                .bytes_written
                .fetch_add(response.len() as u64, Ordering::Relaxed);
        }
        if quit {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::StoreClient;
    use crate::clock::TestClock;

    fn start() -> (StoreServer, StoreClient) {
        let server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();
        let client = StoreClient::connect(server.addr()).unwrap();
        (server, client)
    }

    #[test]
    fn set_get_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"hello", b"world", 3).unwrap();
        let got = client.get_multi(&[b"hello"]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_ref().unwrap().0, b"world".to_vec());
        assert_eq!(got[0].as_ref().unwrap().1, 3);
    }

    #[test]
    fn multi_get_partial_hits() {
        let (_server, mut client) = start();
        client.set(b"a", b"1", 0).unwrap();
        client.set(b"c", b"3", 0).unwrap();
        let got = client.get_multi(&[b"a", b"b", b"c"]).unwrap();
        assert!(got[0].is_some());
        assert!(got[1].is_none());
        assert!(got[2].is_some());
    }

    #[test]
    fn delete_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v", 0).unwrap();
        assert!(client.delete(b"k").unwrap());
        assert!(!client.delete(b"k").unwrap());
        assert!(client.get_multi(&[b"k"]).unwrap()[0].is_none());
    }

    #[test]
    fn stats_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v", 0).unwrap();
        client.get_multi(&[b"k"]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("cmd_set").map(String::as_str), Some("1"));
        assert_eq!(stats.get("get_hits").map(String::as_str), Some("1"));
        assert_eq!(stats.get("curr_items").map(String::as_str), Some("1"));
        // Wire accounting: the set + get already crossed the socket.
        let read: u64 = stats.get("bytes_read").unwrap().parse().unwrap();
        let written: u64 = stats.get("bytes_written").unwrap().parse().unwrap();
        assert!(read > 0, "bytes_read not counted");
        assert!(written > 0, "bytes_written not counted");
        // The single-key get landed in the first histogram bucket.
        assert_eq!(stats.get("get_batch_le_1").map(String::as_str), Some("1"));
    }

    #[test]
    fn version_and_bad_command() {
        let (_server, mut client) = start();
        let v = client.version().unwrap();
        assert!(v.contains("rnb-store"));
        let err = client.raw_command("frobnicate\r\n").unwrap();
        assert!(err.starts_with("CLIENT_ERROR"), "{err}");
    }

    #[test]
    fn cas_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v1", 0).unwrap();
        let got = client.gets_multi(&[b"k"]).unwrap();
        let (_, _, token) = got[0].clone().unwrap();
        // Someone else updates -> our token goes stale.
        client.set(b"k", b"v2", 0).unwrap();
        assert!(
            !client.cas(b"k", b"v3", 0, token).unwrap(),
            "stale token must fail"
        );
        let (_, _, fresh) = client.gets_multi(&[b"k"]).unwrap()[0].clone().unwrap();
        assert!(client.cas(b"k", b"v3", 0, fresh).unwrap());
        assert_eq!(
            client.get_multi(&[b"k"]).unwrap()[0].as_ref().unwrap().0,
            b"v3".to_vec()
        );
        assert!(!client.cas(b"missing", b"x", 0, 1).unwrap());
    }

    #[test]
    fn add_replace_over_tcp() {
        let (_server, mut client) = start();
        assert!(client.add(b"k", b"v1", 0).unwrap());
        assert!(!client.add(b"k", b"v2", 0).unwrap());
        assert!(client.replace(b"k", b"v3", 0).unwrap());
        assert!(!client.replace(b"nope", b"x", 0).unwrap());
        assert_eq!(
            client.get_multi(&[b"k"]).unwrap()[0].as_ref().unwrap().0,
            b"v3".to_vec()
        );
    }

    #[test]
    fn incr_decr_over_tcp() {
        let (_server, mut client) = start();
        assert_eq!(client.arith(b"n", 1, false).unwrap(), None);
        client.set(b"n", b"41", 0).unwrap();
        assert_eq!(client.arith(b"n", 1, false).unwrap(), Some(42));
        assert_eq!(client.arith(b"n", 50, true).unwrap(), Some(0));
        client.set(b"txt", b"abc", 0).unwrap();
        assert!(
            client.arith(b"txt", 1, false).is_err(),
            "non-numeric is a client error"
        );
    }

    #[test]
    fn ttl_of_signed_semantics() {
        assert_eq!(ttl_of(0), None, "0 = never expires");
        assert_eq!(ttl_of(-1), Some(Duration::ZERO), "-1 = already expired");
        assert_eq!(ttl_of(i64::MIN), Some(Duration::ZERO));
        assert_eq!(ttl_of(5), Some(Duration::from_secs(5)));
        assert_eq!(
            ttl_of(i64::MAX),
            Some(Duration::from_secs(i64::MAX.unsigned_abs()))
        );
    }

    #[test]
    fn exptime_over_tcp() {
        // The server's worker threads read the same TestClock the test
        // holds, so TTL expiry over TCP needs no real waiting.
        let clock = TestClock::new();
        let store = Arc::new(Store::with_clock(1 << 22, 16, clock.clone().into()));
        let server = StoreServer::start(store).unwrap();
        let mut client = StoreClient::connect(server.addr()).unwrap();
        // exptime = 1 second; raw command keeps the test at protocol level.
        client.raw_command("set transient 0 1 2\r\nhi\r\n").unwrap();
        assert!(client.get_multi(&[b"transient"]).unwrap()[0].is_some());
        clock.advance(Duration::from_secs(2));
        assert!(
            client.get_multi(&[b"transient"]).unwrap()[0].is_none(),
            "entry outlived TTL"
        );
        drop(server);
    }

    #[test]
    fn negative_exptime_over_tcp() {
        // Regression: `set ... -1 ...` used to answer CLIENT_ERROR bad
        // exptime; memcached stores it and expires it immediately.
        let (_server, mut client) = start();
        let resp = client
            .raw_command("set transient 0 -1 2\r\nhi\r\n")
            .unwrap();
        assert!(resp.starts_with("STORED"), "{resp}");
        assert!(
            client.get_multi(&[b"transient"]).unwrap()[0].is_none(),
            "negative exptime must be immediately invisible"
        );
    }

    #[test]
    fn concurrent_clients() {
        let server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = StoreClient::connect(addr).unwrap();
                    for i in 0..100u32 {
                        let key = format!("t{t}-{i}");
                        client.set(key.as_bytes(), key.as_bytes(), 0).unwrap();
                        let got = client.get_multi(&[key.as_bytes()]).unwrap();
                        assert_eq!(got[0].as_ref().unwrap().0, key.as_bytes().to_vec());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.store().len(), 400);
    }

    #[test]
    fn pipelined_commands_in_one_segment() {
        // Several commands in a single TCP write: the loop must consume
        // them back-to-back from the buffered reader and answer each.
        use std::io::Read;
        let (server, _client) = start();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"set a 0 0 1\r\nx\r\nget a\r\nversion\r\nquit\r\n")
            .unwrap();
        let mut got = Vec::new();
        raw.read_to_end(&mut got).unwrap();
        let text = String::from_utf8(got).unwrap();
        assert_eq!(
            text,
            "STORED\r\nVALUE a 0 1\r\nx\r\nEND\r\nVERSION rnb-store 0.1.0\r\n"
        );
    }

    #[test]
    fn single_worker_serves_sequential_clients() {
        let server = StoreServer::start_with(
            Arc::new(Store::new(1 << 20)),
            0,
            ServerConfig {
                workers: 1,
                accept_backlog: 4,
            },
        )
        .unwrap();
        for round in 0..3u32 {
            let mut client = StoreClient::connect(server.addr()).unwrap();
            let key = format!("r{round}");
            client.set(key.as_bytes(), b"v", 0).unwrap();
            assert!(client.get_multi(&[key.as_bytes()]).unwrap()[0].is_some());
        }
        assert_eq!(server.store().len(), 3);
    }

    #[test]
    fn connection_churn_leaves_registry_bounded() {
        // Regression for the conns leak: 100 connect/disconnect cycles
        // must not accumulate dead entries.
        let server = StoreServer::start(Arc::new(Store::new(1 << 20))).unwrap();
        for i in 0..100u32 {
            let mut client = StoreClient::connect(server.addr()).unwrap();
            let key = format!("churn-{i}");
            client.set(key.as_bytes(), b"v", 0).unwrap();
            drop(client);
        }
        // Workers deregister asynchronously after the client side closes;
        // poll (bounded, no sleeping) until the registry drains.
        let mut polls = 0u64;
        while server.live_connections() > 0 {
            polls += 1;
            assert!(
                polls < 50_000_000,
                "registry never drained: {} connections still registered",
                server.live_connections()
            );
            std::thread::yield_now();
        }
        assert_eq!(server.live_connections(), 0);
        assert_eq!(server.store().len(), 100, "every churn cycle stored once");
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, _client) = start();
        server.shutdown();
        server.shutdown();
        assert!(
            StoreClient::connect(server.addr()).is_err() || {
                // The OS may accept the connection before noticing the closed
                // listener; a subsequent command must then fail.
                true
            }
        );
    }
}
