//! Threaded TCP server speaking the memcached text protocol.

use crate::protocol::{self, reply, Command, StoreVerb};
use crate::shard::{ArithOutcome, CasOutcome, SetOutcome};
use crate::store::Store;
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running store server. Dropping the handle shuts the server down,
/// severing live connections (so tests can inject server failures).
pub struct StoreServer {
    addr: SocketAddr,
    store: Arc<Store>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
}

impl StoreServer {
    /// Start a server for `store` on a loopback port chosen by the OS.
    pub fn start(store: Arc<Store>) -> std::io::Result<StoreServer> {
        Self::start_on(store, 0)
    }

    /// Start on a specific loopback port (0 = OS-chosen).
    pub fn start_on(store: Arc<Store>, port: u16) -> std::io::Result<StoreServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let accept_store = Arc::clone(&store);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if let Ok(clone) = stream.try_clone() {
                            accept_conns.lock().push(clone);
                        }
                        let store = Arc::clone(&accept_store);
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &store);
                        });
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(StoreServer {
            addr,
            store,
            shutdown,
            accept_thread: Some(accept_thread),
            conns,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Stop accepting connections, sever every live connection, and join
    /// the accept thread. Clients with open connections observe I/O
    /// errors on their next operation — a crashed server, from their
    /// point of view.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for conn in self.conns.lock().drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// memcached `exptime` semantics for the range the experiments use:
/// 0 = never expires, negative = already expired (the entry is stored,
/// then immediately invisible), otherwise relative seconds.
fn ttl_of(exptime: i64) -> Option<Duration> {
    match exptime {
        0 => None,
        t if t < 0 => Some(Duration::ZERO),
        t => Some(Duration::from_secs(t.unsigned_abs())),
    }
}

fn handle_connection(stream: TcpStream, store: &Store) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    while let Some(line) = protocol::read_line(&mut reader)? {
        if line.is_empty() {
            continue;
        }
        match protocol::parse_command(&line) {
            Ok(Command::Get { keys, with_cas }) => {
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                let values = store.get_multi(&refs);
                for (key, value) in keys.iter().zip(values) {
                    if let Some(v) = value {
                        let cas = with_cas.then_some(v.cas);
                        protocol::write_value(&mut writer, key, v.flags, &v.data, cas)?;
                    }
                }
                protocol::write_end(&mut writer)?;
            }
            Ok(Command::Set {
                verb,
                key,
                flags,
                exptime,
                bytes,
                noreply,
            }) => {
                let data = protocol::read_data_block(&mut reader, bytes)?;
                let ttl = ttl_of(exptime);
                let outcome = match verb {
                    StoreVerb::Set => Some(store.set_with_ttl(&key, &data, flags, false, ttl)),
                    StoreVerb::Add => store.add(&key, &data, flags, ttl),
                    StoreVerb::Replace => store.replace(&key, &data, flags, ttl),
                };
                if !noreply {
                    match outcome {
                        Some(SetOutcome::Stored { .. }) => writer.write_all(reply::STORED)?,
                        Some(SetOutcome::OutOfMemory) => writer.write_all(reply::OOM)?,
                        None => writer.write_all(reply::NOT_STORED)?,
                    }
                }
            }
            Ok(Command::Cas {
                key,
                flags,
                exptime,
                bytes,
                cas,
                noreply,
            }) => {
                let data = protocol::read_data_block(&mut reader, bytes)?;
                let outcome = store.cas(&key, &data, flags, cas, ttl_of(exptime));
                if !noreply {
                    match outcome {
                        CasOutcome::Stored => writer.write_all(reply::STORED)?,
                        CasOutcome::Exists => writer.write_all(reply::EXISTS)?,
                        CasOutcome::NotFound => writer.write_all(reply::NOT_FOUND)?,
                        CasOutcome::OutOfMemory => writer.write_all(reply::OOM)?,
                    }
                }
            }
            Ok(Command::Arith {
                key,
                delta,
                negative,
                noreply,
            }) => {
                let outcome = store.arith(&key, delta, negative);
                if !noreply {
                    match outcome {
                        ArithOutcome::Value(v) => write!(writer, "{v}\r\n")?,
                        ArithOutcome::NotFound => writer.write_all(reply::NOT_FOUND)?,
                        ArithOutcome::NonNumeric => writer.write_all(reply::NON_NUMERIC)?,
                    }
                }
            }
            Ok(Command::Delete { key, noreply }) => {
                let deleted = store.delete(&key);
                if !noreply {
                    writer.write_all(if deleted {
                        reply::DELETED
                    } else {
                        reply::NOT_FOUND
                    })?;
                }
            }
            Ok(Command::Stats) => {
                for (name, value) in store.stats().stat_lines() {
                    write!(writer, "STAT {name} {value}\r\n")?;
                }
                protocol::write_end(&mut writer)?;
            }
            Ok(Command::Version) => writer.write_all(reply::VERSION)?,
            Ok(Command::Quit) => break,
            Err(msg) => {
                write!(writer, "CLIENT_ERROR {msg}\r\n")?;
            }
        }
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::StoreClient;
    use crate::clock::TestClock;

    fn start() -> (StoreServer, StoreClient) {
        let server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();
        let client = StoreClient::connect(server.addr()).unwrap();
        (server, client)
    }

    #[test]
    fn set_get_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"hello", b"world", 3).unwrap();
        let got = client.get_multi(&[b"hello"]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_ref().unwrap().0, b"world".to_vec());
        assert_eq!(got[0].as_ref().unwrap().1, 3);
    }

    #[test]
    fn multi_get_partial_hits() {
        let (_server, mut client) = start();
        client.set(b"a", b"1", 0).unwrap();
        client.set(b"c", b"3", 0).unwrap();
        let got = client.get_multi(&[b"a", b"b", b"c"]).unwrap();
        assert!(got[0].is_some());
        assert!(got[1].is_none());
        assert!(got[2].is_some());
    }

    #[test]
    fn delete_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v", 0).unwrap();
        assert!(client.delete(b"k").unwrap());
        assert!(!client.delete(b"k").unwrap());
        assert!(client.get_multi(&[b"k"]).unwrap()[0].is_none());
    }

    #[test]
    fn stats_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v", 0).unwrap();
        client.get_multi(&[b"k"]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("cmd_set").map(String::as_str), Some("1"));
        assert_eq!(stats.get("get_hits").map(String::as_str), Some("1"));
        assert_eq!(stats.get("curr_items").map(String::as_str), Some("1"));
    }

    #[test]
    fn version_and_bad_command() {
        let (_server, mut client) = start();
        let v = client.version().unwrap();
        assert!(v.contains("rnb-store"));
        let err = client.raw_command("frobnicate\r\n").unwrap();
        assert!(err.starts_with("CLIENT_ERROR"), "{err}");
    }

    #[test]
    fn cas_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v1", 0).unwrap();
        let got = client.gets_multi(&[b"k"]).unwrap();
        let (_, _, token) = got[0].clone().unwrap();
        // Someone else updates -> our token goes stale.
        client.set(b"k", b"v2", 0).unwrap();
        assert!(
            !client.cas(b"k", b"v3", 0, token).unwrap(),
            "stale token must fail"
        );
        let (_, _, fresh) = client.gets_multi(&[b"k"]).unwrap()[0].clone().unwrap();
        assert!(client.cas(b"k", b"v3", 0, fresh).unwrap());
        assert_eq!(
            client.get_multi(&[b"k"]).unwrap()[0].as_ref().unwrap().0,
            b"v3".to_vec()
        );
        assert!(!client.cas(b"missing", b"x", 0, 1).unwrap());
    }

    #[test]
    fn add_replace_over_tcp() {
        let (_server, mut client) = start();
        assert!(client.add(b"k", b"v1", 0).unwrap());
        assert!(!client.add(b"k", b"v2", 0).unwrap());
        assert!(client.replace(b"k", b"v3", 0).unwrap());
        assert!(!client.replace(b"nope", b"x", 0).unwrap());
        assert_eq!(
            client.get_multi(&[b"k"]).unwrap()[0].as_ref().unwrap().0,
            b"v3".to_vec()
        );
    }

    #[test]
    fn incr_decr_over_tcp() {
        let (_server, mut client) = start();
        assert_eq!(client.arith(b"n", 1, false).unwrap(), None);
        client.set(b"n", b"41", 0).unwrap();
        assert_eq!(client.arith(b"n", 1, false).unwrap(), Some(42));
        assert_eq!(client.arith(b"n", 50, true).unwrap(), Some(0));
        client.set(b"txt", b"abc", 0).unwrap();
        assert!(
            client.arith(b"txt", 1, false).is_err(),
            "non-numeric is a client error"
        );
    }

    #[test]
    fn ttl_of_signed_semantics() {
        assert_eq!(ttl_of(0), None, "0 = never expires");
        assert_eq!(ttl_of(-1), Some(Duration::ZERO), "-1 = already expired");
        assert_eq!(ttl_of(i64::MIN), Some(Duration::ZERO));
        assert_eq!(ttl_of(5), Some(Duration::from_secs(5)));
        assert_eq!(
            ttl_of(i64::MAX),
            Some(Duration::from_secs(i64::MAX.unsigned_abs()))
        );
    }

    #[test]
    fn exptime_over_tcp() {
        // The server's connection threads read the same TestClock the
        // test holds, so TTL expiry over TCP needs no real waiting.
        let clock = TestClock::new();
        let store = Arc::new(Store::with_clock(1 << 22, 16, clock.clone().into()));
        let server = StoreServer::start(store).unwrap();
        let mut client = StoreClient::connect(server.addr()).unwrap();
        // exptime = 1 second; raw command keeps the test at protocol level.
        client.raw_command("set transient 0 1 2\r\nhi\r\n").unwrap();
        assert!(client.get_multi(&[b"transient"]).unwrap()[0].is_some());
        clock.advance(Duration::from_secs(2));
        assert!(
            client.get_multi(&[b"transient"]).unwrap()[0].is_none(),
            "entry outlived TTL"
        );
        drop(server);
    }

    #[test]
    fn negative_exptime_over_tcp() {
        // Regression: `set ... -1 ...` used to answer CLIENT_ERROR bad
        // exptime; memcached stores it and expires it immediately.
        let (_server, mut client) = start();
        let resp = client
            .raw_command("set transient 0 -1 2\r\nhi\r\n")
            .unwrap();
        assert!(resp.starts_with("STORED"), "{resp}");
        assert!(
            client.get_multi(&[b"transient"]).unwrap()[0].is_none(),
            "negative exptime must be immediately invisible"
        );
    }

    #[test]
    fn concurrent_clients() {
        let server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = StoreClient::connect(addr).unwrap();
                    for i in 0..100u32 {
                        let key = format!("t{t}-{i}");
                        client.set(key.as_bytes(), key.as_bytes(), 0).unwrap();
                        let got = client.get_multi(&[key.as_bytes()]).unwrap();
                        assert_eq!(got[0].as_ref().unwrap().0, key.as_bytes().to_vec());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.store().len(), 400);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, _client) = start();
        server.shutdown();
        server.shutdown();
        assert!(
            StoreClient::connect(server.addr()).is_err() || {
                // The OS may accept the connection before noticing the closed
                // listener; a subsequent command must then fail.
                true
            }
        );
    }
}
