//! TCP server speaking the memcached text protocol.
//!
//! Architecture (see README "Serving path architecture"): connections
//! are **multiplexed over a fixed number of threads** — one accept
//! thread, one poll thread, and a fixed worker pool — so tens of
//! thousands of mostly-idle sockets cost buffers, not blocked threads.
//! The accept thread hands each new connection (a nonblocking
//! [`Conn`]) to the poll thread, whose [`Poller`] sweep detects arriving
//! bytes and dispatches ready connections to the workers. A worker
//! serves a *burst*: it flips the socket to blocking-with-timeout,
//! executes every complete buffered request (incremental parsing via
//! [`protocol::next_request`]), answers each batch with one
//! `write_all`, and keeps reading until the connection goes quiet for a
//! short linger — then hands it back to the poller and picks up the
//! next ready connection. Each worker owns one [`ConnScratch`], so the
//! command loop is allocation-free at steady state (proven by the
//! `zero_alloc_serve` integration test, which drives the same
//! [`execute_command`] core through [`serve_connection`]).

use crate::poller::{Conn, Poller};
use crate::protocol::{self, reply, Command, NextRequest, StoreVerb};
use crate::shard::{ArithOutcome, CasOutcome, SetOutcome, Value};
use crate::store::{GetScratch, SetEntry, Store};
use parking_lot::Mutex;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, sync_channel, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker read waits for the next request before the
/// connection is handed back to the poller. Continuously active
/// connections therefore keep blocking-path performance; only the first
/// request after an idle period pays one sweep of latency.
const WORKER_LINGER: Duration = Duration::from_millis(2);

/// Bound on a worker-mode write to a client that stopped reading its
/// responses: the write errors out and the connection closes instead of
/// wedging the worker (and shutdown) indefinitely.
const WRITE_STALL: Duration = Duration::from_secs(5);

/// Reads a worker spends on one connection before checking whether
/// other ready connections are starving for a worker.
const BURST_READS: usize = 64;

/// Tuning knobs for [`StoreServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing requests. Each worker owns its scratch
    /// buffers and serves one connection burst at a time.
    pub workers: usize,
    /// Bound of the accept→poller intake queue; the accept thread
    /// blocks (and the OS listen backlog takes over) when this many new
    /// connections await registration.
    pub accept_backlog: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        // At least 4 workers even on small machines: tests (and the
        // paper's load generator) hold several concurrent connections.
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ServerConfig {
            workers: cpus.max(4),
            accept_backlog: 64,
        }
    }
}

/// Live-connection count. Each connection is owned by exactly one
/// thread (accept → poller ⇄ worker), and whichever owner retires it
/// decrements exactly once — so the count is exact, not a high-water
/// mark, and one socket costs one fd (no registry duplicate, which
/// matters at 10k+ connections under an fd rlimit).
#[derive(Default)]
struct ConnCount(AtomicUsize);

impl ConnCount {
    fn register(&self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }

    fn deregister(&self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }

    fn len(&self) -> usize {
        self.0.load(Ordering::SeqCst)
    }
}

/// A running store server. Dropping the handle shuts the server down,
/// closing live connections (so tests can inject server failures).
pub struct StoreServer {
    addr: SocketAddr,
    store: Arc<Store>,
    shutdown: Arc<AtomicBool>,
    draining: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    poll_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<ConnCount>,
}

impl StoreServer {
    /// Start a server for `store` on a loopback port chosen by the OS.
    pub fn start(store: Arc<Store>) -> io::Result<StoreServer> {
        Self::start_with(store, 0, ServerConfig::default())
    }

    /// Start on a specific loopback port (0 = OS-chosen).
    pub fn start_on(store: Arc<Store>, port: u16) -> io::Result<StoreServer> {
        Self::start_with(store, port, ServerConfig::default())
    }

    /// Start with explicit [`ServerConfig`] knobs.
    pub fn start_with(
        store: Arc<Store>,
        port: u16,
        config: ServerConfig,
    ) -> io::Result<StoreServer> {
        let listener = TcpListener::bind(("127.0.0.1", port))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let registry = Arc::new(ConnCount::default());

        // Accept → poller intake (bounded: backpressure on accept).
        let (conn_tx, conn_rx) = sync_channel::<Conn>(config.accept_backlog.max(1));
        // Poller → workers: ready connections awaiting a worker. The
        // queue depth is `pending`; workers use it to rotate hogged
        // connections back when others are starving.
        let (work_tx, work_rx) = channel::<Conn>();
        let work_rx = Arc::new(Mutex::new(work_rx));
        // Workers → poller: drained connections going back to idle watch.
        let (return_tx, return_rx) = channel::<Conn>();
        let pending = Arc::new(AtomicUsize::new(0));

        let poll_thread = {
            let store = Arc::clone(&store);
            let registry = Arc::clone(&registry);
            let shutdown = Arc::clone(&shutdown);
            let pending = Arc::clone(&pending);
            std::thread::spawn(move || {
                let mut poller = Poller::new();
                let mut ready: Vec<Conn> = Vec::new();
                let mut closed: Vec<u64> = Vec::new();
                let stats = store.raw_stats();
                while !shutdown.load(Ordering::SeqCst) {
                    let mut activity = false;
                    while let Ok(conn) = conn_rx.try_recv() {
                        poller.register(conn);
                        activity = true;
                    }
                    while let Ok(conn) = return_rx.try_recv() {
                        poller.register(conn);
                        activity = true;
                    }
                    let bytes = poller.sweep(&mut ready, &mut closed);
                    if bytes > 0 {
                        stats.bytes_read.fetch_add(bytes, Ordering::Relaxed);
                    }
                    for _ in closed.drain(..) {
                        registry.deregister();
                    }
                    for conn in ready.drain(..) {
                        pending.fetch_add(1, Ordering::SeqCst);
                        activity = true;
                        if work_tx.send(conn).is_err() {
                            // Workers are gone (shutdown): drop the conn.
                            pending.fetch_sub(1, Ordering::SeqCst);
                            registry.deregister();
                        }
                    }
                    if activity {
                        poller.note_activity();
                    } else {
                        std::thread::park_timeout(poller.idle_park());
                    }
                }
                // Shutdown: retire everything the poller still owns or
                // that is still in flight towards it.
                for _ in poller.drain() {
                    registry.deregister();
                }
                // In-flight conns from accept / workers: the channels
                // close their sockets on drop either way; draining here
                // keeps the live-connection count honest for whatever
                // made it in before the flag. (`shutdown()` joins the
                // accept thread before unparking us, so the intake is
                // normally already disconnected.)
                loop {
                    match conn_rx.try_recv() {
                        Ok(_conn) => registry.deregister(),
                        Err(TryRecvError::Disconnected) => break,
                        Err(TryRecvError::Empty) => std::thread::yield_now(),
                    }
                }
                while let Ok(_conn) = return_rx.try_recv() {
                    registry.deregister();
                }
                // `work_tx` drops here: workers drain the queue and exit.
            })
        };
        let poll_handle = poll_thread.thread().clone();

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&work_rx);
                let store = Arc::clone(&store);
                let registry = Arc::clone(&registry);
                let shutdown = Arc::clone(&shutdown);
                let pending = Arc::clone(&pending);
                let return_tx = return_tx.clone();
                let poll_handle = poll_handle.clone();
                std::thread::spawn(move || {
                    let mut scratch = ConnScratch::new();
                    loop {
                        // Hold the receiver lock only while waiting for
                        // the next connection, never while serving one.
                        let next = { rx.lock().recv() };
                        let Ok(mut conn) = next else { break };
                        pending.fetch_sub(1, Ordering::SeqCst);
                        if shutdown.load(Ordering::SeqCst)
                            || !serve_burst(&store, &mut conn, &mut scratch, &pending, &shutdown)
                        {
                            registry.deregister();
                            continue;
                        }
                        if return_tx.send(conn).is_ok() {
                            poll_handle.unpark();
                        } else {
                            registry.deregister();
                        }
                    }
                })
            })
            .collect();
        drop(return_tx); // only worker clones remain

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_draining = Arc::clone(&draining);
        let accept_registry = Arc::clone(&registry);
        let accept_thread = std::thread::spawn(move || {
            let mut next_id: u64 = 0;
            for conn in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) || accept_draining.load(Ordering::SeqCst)
                {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let id = next_id;
                        next_id += 1;
                        let Ok(conn) = Conn::new(id, stream) else {
                            continue;
                        };
                        accept_registry.register();
                        if conn_tx.send(conn).is_err() {
                            accept_registry.deregister();
                            break;
                        }
                        poll_handle.unpark();
                    }
                    Err(_) => break,
                }
            }
            // `conn_tx` drops here; the poll thread owns cleanup.
        });

        Ok(StoreServer {
            addr,
            store,
            shutdown,
            draining,
            accept_thread: Some(accept_thread),
            poll_thread: Some(poll_thread),
            workers,
            registry,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served store.
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }

    /// Connections currently registered (idle in the poller, queued, or
    /// checked out by a worker). Driven by exact ownership hand-offs:
    /// returns to zero once all clients disconnect and the poller
    /// retires them.
    pub fn live_connections(&self) -> usize {
        self.registry.len()
    }

    /// Total serving threads: the accept thread, the poll thread, and
    /// the fixed worker pool. Independent of the connection count — the
    /// C10K property the readiness loop exists for.
    pub fn thread_count(&self) -> usize {
        2 + self.workers.len()
    }

    /// Graceful shutdown: stop accepting new connections, keep serving
    /// the live ones until their clients disconnect (or `deadline`
    /// nominal wait expires), then tear the server down. Unlike
    /// [`StoreServer::shutdown`] — which models a crash and may close a
    /// connection with requests still buffered — a drained shutdown
    /// never truncates: every request whose bytes arrived before the
    /// client's half-close is executed and its reply flushed, because
    /// connections are only retired on EOF/error while draining.
    ///
    /// The deadline bounds how long the drain waits for clients that
    /// never disconnect; it is a nominal wait (counted in 1 ms parked
    /// intervals, no wall-clock read), after which the remaining
    /// connections are closed abruptly as in a plain `shutdown`.
    pub fn shutdown_drain(&mut self, deadline: Duration) {
        if !self.shutdown.load(Ordering::SeqCst) {
            self.draining.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the draining flag
            // and releases the listener.
            let _ = TcpStream::connect(self.addr);
            if let Some(t) = self.accept_thread.take() {
                let _ = t.join();
            }
            // The poller keeps sweeping and workers keep serving while
            // we wait for the registry to empty: each connection drains
            // its buffered requests and retires on EOF when its client
            // hangs up.
            let step = Duration::from_millis(1);
            let mut waited = Duration::ZERO;
            while self.registry.len() > 0 && waited < deadline {
                std::thread::park_timeout(step);
                waited += step;
            }
        }
        self.shutdown();
    }

    /// Stop accepting connections, close every live connection, and join
    /// all serving threads. Clients with open connections observe I/O
    /// errors on their next operation — a crashed server, from their
    /// point of view.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The poll thread drops every idle connection on exit; workers
        // notice mid-burst connections erroring out (or their linger
        // expiring with the flag set) and exit once the work queue
        // closes behind the poll thread.
        if let Some(t) = self.poll_thread.take() {
            t.thread().unpark();
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// memcached `exptime` semantics for the range the experiments use:
/// 0 = never expires, negative = already expired (the entry is stored,
/// then immediately invisible), otherwise relative seconds.
fn ttl_of(exptime: i64) -> Option<Duration> {
    match exptime {
        0 => None,
        t if t < 0 => Some(Duration::ZERO),
        t => Some(Duration::from_secs(t.unsigned_abs())),
    }
}

/// Scratch for the multi-get execution path, grouped so
/// [`execute_command`] can borrow it alongside the response buffer.
#[derive(Debug, Default)]
struct GetPathScratch {
    /// `(start, end)` offsets of each get key within the request line.
    key_ranges: Vec<(usize, usize)>,
    /// Shard-batching scratch for the multi-get.
    get: GetScratch,
    /// Multi-get results, in request key order.
    values: Vec<Option<Value>>,
}

impl GetPathScratch {
    const fn new() -> Self {
        GetPathScratch {
            key_ranges: Vec::new(),
            get: GetScratch::new(),
            values: Vec::new(),
        }
    }
}

/// A plain `set` waiting in the current storage run, held as offset
/// ranges into the connection input buffer (no key/value copies).
#[derive(Debug, Clone, Copy)]
struct PendingSet {
    /// `(start, end)` of the key within the input buffer.
    key: (usize, usize),
    /// `(start, end)` of the data block within the input buffer.
    data: (usize, usize),
    flags: u32,
    exptime: i64,
    noreply: bool,
}

/// A `delete` waiting in the current storage run.
#[derive(Debug, Clone, Copy)]
struct PendingDelete {
    /// `(start, end)` of the key within the input buffer.
    key: (usize, usize),
    noreply: bool,
}

/// Scratch for the burst drain's storage batching: consecutive plain
/// `set` (or `delete`) requests of a pipelined burst are collected here
/// and applied through [`Store::set_multi_with`] /
/// [`Store::delete_multi_with`] as one shard-batched run — one lock and
/// one clock read per touched shard instead of one per command.
#[derive(Debug, Default)]
struct WriteBatchScratch {
    /// Pending plain-`set` run (empty whenever `deletes` is non-empty).
    sets: Vec<PendingSet>,
    /// Pending `delete` run (empty whenever `sets` is non-empty).
    deletes: Vec<PendingDelete>,
    /// Shard-batching scratch for the run.
    batch: GetScratch,
    /// Per-entry outcomes of a flushed set run.
    outcomes: Vec<SetOutcome>,
    /// Per-key outcomes of a flushed delete run.
    deleted: Vec<bool>,
}

impl WriteBatchScratch {
    const fn new() -> Self {
        WriteBatchScratch {
            sets: Vec::new(),
            deletes: Vec::new(),
            batch: GetScratch::new(),
            outcomes: Vec::new(),
            deleted: Vec::new(),
        }
    }
}

/// Per-worker (connection-reused) buffers for the command loop.
/// Everything grows to steady-state sizes and is then reused verbatim —
/// the loop performs no allocation once warm.
#[derive(Debug, Default)]
pub struct ConnScratch {
    /// Current request line (blocking path only; without CRLF).
    line: Vec<u8>,
    /// Current `set`/`cas` data block (blocking path only).
    data: Vec<u8>,
    /// Multi-get execution scratch.
    gets: GetPathScratch,
    /// Storage-run batching scratch (readiness path only).
    writes: WriteBatchScratch,
    /// Assembled response; one `write_all` per request batch.
    response: Vec<u8>,
    /// Worker-mode socket read staging (readiness path only).
    net: Vec<u8>,
}

impl ConnScratch {
    /// Fresh scratch; buffers size themselves on first use.
    pub const fn new() -> Self {
        ConnScratch {
            line: Vec::new(),
            data: Vec::new(),
            gets: GetPathScratch::new(),
            writes: WriteBatchScratch::new(),
            response: Vec::new(),
            net: Vec::new(),
        }
    }
}

/// What [`execute_command`] tells the command loop to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reply {
    /// Keep serving the connection.
    Continue,
    /// `quit`: close after flushing the response so far.
    Quit,
}

/// Execute one parsed command against the store, appending any reply to
/// `response`. `line` must be the exact slice [`protocol::parse_command`]
/// saw (get-key ranges index into it) and `data` the `set`/`cas`
/// payload. Shared by the blocking loop ([`serve_connection`]) and the
/// readiness path's burst drain, so both execute identically.
fn execute_command(
    store: &Store,
    line: &[u8],
    cmd: &Command<'_>,
    data: &[u8],
    gets: &mut GetPathScratch,
    response: &mut Vec<u8>,
) -> io::Result<Reply> {
    match cmd {
        Command::Get { keys, with_cas } => {
            let GetPathScratch {
                key_ranges,
                get,
                values,
            } = gets;
            key_ranges.clear();
            key_ranges.extend(keys.ranges());
            store.get_multi_with(
                get,
                key_ranges.len(),
                |i| {
                    let (s, e) = key_ranges[i];
                    &line[s..e]
                },
                values,
            );
            for (&(s, e), value) in key_ranges.iter().zip(values.iter()) {
                if let Some(v) = value {
                    let cas = with_cas.then_some(v.cas);
                    protocol::write_value(response, &line[s..e], v.flags, &v.data, cas)?;
                }
            }
            protocol::write_end(response)?;
            // Drop the value Arcs now: a later same-length `set` can
            // then overwrite in place instead of reallocating.
            values.clear();
        }
        Command::Set {
            verb,
            key,
            flags,
            exptime,
            noreply,
            ..
        } => {
            let ttl = ttl_of(*exptime);
            let outcome = match verb {
                StoreVerb::Set => Some(store.set_with_ttl(key, data, *flags, false, ttl)),
                StoreVerb::Add => store.add(key, data, *flags, ttl),
                StoreVerb::Replace => store.replace(key, data, *flags, ttl),
            };
            if !noreply {
                response.extend_from_slice(match outcome {
                    Some(SetOutcome::Stored { .. }) => reply::STORED,
                    Some(SetOutcome::OutOfMemory) => reply::OOM,
                    None => reply::NOT_STORED,
                });
            }
        }
        Command::Cas {
            key,
            flags,
            exptime,
            cas,
            noreply,
            ..
        } => {
            let outcome = store.cas(key, data, *flags, *cas, ttl_of(*exptime));
            if !noreply {
                response.extend_from_slice(match outcome {
                    CasOutcome::Stored => reply::STORED,
                    CasOutcome::Exists => reply::EXISTS,
                    CasOutcome::NotFound => reply::NOT_FOUND,
                    CasOutcome::OutOfMemory => reply::OOM,
                });
            }
        }
        Command::Arith {
            key,
            delta,
            negative,
            noreply,
        } => {
            let outcome = store.arith(key, *delta, *negative);
            if !noreply {
                match outcome {
                    ArithOutcome::Value(v) => write!(response, "{v}\r\n")?,
                    ArithOutcome::NotFound => response.extend_from_slice(reply::NOT_FOUND),
                    ArithOutcome::NonNumeric => response.extend_from_slice(reply::NON_NUMERIC),
                }
            }
        }
        Command::Delete { key, noreply } => {
            let deleted = store.delete(key);
            if !noreply {
                response.extend_from_slice(if deleted {
                    reply::DELETED
                } else {
                    reply::NOT_FOUND
                });
            }
        }
        Command::Stats => {
            for (name, value) in store.stats().stat_lines() {
                write!(response, "STAT {name} {value}\r\n")?;
            }
            protocol::write_end(response)?;
        }
        Command::Version => response.extend_from_slice(reply::VERSION),
        Command::Quit => return Ok(Reply::Quit),
    }
    Ok(Reply::Continue)
}

/// Absolute `(start, end)` of `part` within the connection input
/// buffer, given that `part` is a subslice of the parser's view, which
/// itself starts at offset `base` of the input buffer. Plain address
/// arithmetic — no bytes are copied or re-scanned.
fn abs_range(view: &[u8], part: &[u8], base: usize) -> (usize, usize) {
    let start = part.as_ptr() as usize - view.as_ptr() as usize + base;
    debug_assert!(
        start + part.len() <= base + view.len(),
        "request part escapes the parsed view"
    );
    (start, start + part.len())
}

/// Apply the pending plain-`set` run as one shard-batched store call and
/// append the replies in request order. No-op on an empty run.
fn flush_pending_sets(
    store: &Store,
    writes: &mut WriteBatchScratch,
    input: &[u8],
    response: &mut Vec<u8>,
) {
    if writes.sets.is_empty() {
        return;
    }
    let WriteBatchScratch {
        sets,
        batch,
        outcomes,
        ..
    } = writes;
    store.set_multi_with(
        batch,
        sets.len(),
        |i| {
            let p = sets[i];
            SetEntry {
                key: &input[p.key.0..p.key.1],
                value: &input[p.data.0..p.data.1],
                flags: p.flags,
                pinned: false,
                ttl: ttl_of(p.exptime),
            }
        },
        outcomes,
    );
    for (p, outcome) in sets.iter().zip(outcomes.iter()) {
        if !p.noreply {
            response.extend_from_slice(match outcome {
                SetOutcome::Stored { .. } => reply::STORED,
                SetOutcome::OutOfMemory => reply::OOM,
            });
        }
    }
    sets.clear();
}

/// Apply the pending `delete` run as one shard-batched store call and
/// append the replies in request order. No-op on an empty run.
fn flush_pending_deletes(
    store: &Store,
    writes: &mut WriteBatchScratch,
    input: &[u8],
    response: &mut Vec<u8>,
) {
    if writes.deletes.is_empty() {
        return;
    }
    let WriteBatchScratch {
        deletes,
        batch,
        deleted,
        ..
    } = writes;
    store.delete_multi_with(
        batch,
        deletes.len(),
        |i| {
            let p = deletes[i];
            &input[p.key.0..p.key.1]
        },
        deleted,
    );
    for (p, was_there) in deletes.iter().zip(deleted.iter()) {
        if !p.noreply {
            response.extend_from_slice(if *was_there {
                reply::DELETED
            } else {
                reply::NOT_FOUND
            });
        }
    }
    deletes.clear();
}

/// Execute every complete request buffered on `conn`, answering the
/// whole batch with a single `write_all` (pipelined bursts thus cost
/// one write syscall, not one per request). `Ok(true)` means close the
/// connection (`quit` or a framing desync).
///
/// Runs of consecutive plain `set` (or `delete`) requests — the shape a
/// pipelined [`crate::StoreClient::send_storage_batch`] burst produces —
/// are not executed one by one: they are collected as offset ranges and
/// applied through [`Store::set_multi_with`] / [`Store::delete_multi_with`]
/// when the run ends, so a storage burst costs one lock (and one clock
/// read) per touched shard instead of one per command. Replies stay in
/// request order because a run is always flushed before any other
/// command (or error report) appends its reply.
fn drain_input(store: &Store, conn: &mut Conn, scratch: &mut ConnScratch) -> io::Result<bool> {
    let stats = store.raw_stats();
    let mut consumed_total = 0usize;
    let mut close = false;
    scratch.response.clear();
    scratch.writes.sets.clear();
    scratch.writes.deletes.clear();
    loop {
        let input = conn.input();
        let view = &input[consumed_total..];
        match protocol::next_request(view) {
            NextRequest::Incomplete => break,
            NextRequest::Desync => {
                close = true;
                break;
            }
            NextRequest::Error { msg, consumed } => {
                flush_pending_sets(store, &mut scratch.writes, input, &mut scratch.response);
                flush_pending_deletes(store, &mut scratch.writes, input, &mut scratch.response);
                write!(&mut scratch.response, "CLIENT_ERROR {msg}\r\n")?;
                consumed_total += consumed;
            }
            NextRequest::Request {
                line,
                cmd,
                data,
                consumed,
            } => {
                match &cmd {
                    Command::Set {
                        verb: StoreVerb::Set,
                        key,
                        flags,
                        exptime,
                        noreply,
                        ..
                    } => {
                        flush_pending_deletes(
                            store,
                            &mut scratch.writes,
                            input,
                            &mut scratch.response,
                        );
                        scratch.writes.sets.push(PendingSet {
                            key: abs_range(view, key, consumed_total),
                            data: abs_range(view, data, consumed_total),
                            flags: *flags,
                            exptime: *exptime,
                            noreply: *noreply,
                        });
                        consumed_total += consumed;
                        continue;
                    }
                    Command::Delete { key, noreply } => {
                        flush_pending_sets(
                            store,
                            &mut scratch.writes,
                            input,
                            &mut scratch.response,
                        );
                        scratch.writes.deletes.push(PendingDelete {
                            key: abs_range(view, key, consumed_total),
                            noreply: *noreply,
                        });
                        consumed_total += consumed;
                        continue;
                    }
                    _ => {
                        flush_pending_sets(
                            store,
                            &mut scratch.writes,
                            input,
                            &mut scratch.response,
                        );
                        flush_pending_deletes(
                            store,
                            &mut scratch.writes,
                            input,
                            &mut scratch.response,
                        );
                    }
                }
                consumed_total += consumed;
                let outcome = execute_command(
                    store,
                    line,
                    &cmd,
                    data,
                    &mut scratch.gets,
                    &mut scratch.response,
                )?;
                if outcome == Reply::Quit {
                    close = true;
                    break;
                }
            }
        }
    }
    {
        let input = conn.input();
        flush_pending_sets(store, &mut scratch.writes, input, &mut scratch.response);
        flush_pending_deletes(store, &mut scratch.writes, input, &mut scratch.response);
    }
    conn.consume(consumed_total);
    if !scratch.response.is_empty() {
        conn.stream().write_all(&scratch.response)?;
        stats
            .bytes_written
            .fetch_add(scratch.response.len() as u64, Ordering::Relaxed);
    }
    Ok(close)
}

/// Serve one checked-out connection until it goes quiet: flip to
/// blocking-with-timeout, execute buffered requests, keep reading until
/// the linger expires (or the burst cap is hit while other connections
/// wait). Returns true if the connection should go back to the poller,
/// false if it should close.
fn serve_burst(
    store: &Store,
    conn: &mut Conn,
    scratch: &mut ConnScratch,
    pending: &AtomicUsize,
    shutdown: &AtomicBool,
) -> bool {
    if conn.enter_worker_mode(WORKER_LINGER, WRITE_STALL).is_err() {
        return false;
    }
    let stats = store.raw_stats();
    let mut reads = 0usize;
    loop {
        match drain_input(store, conn, scratch) {
            Ok(false) => {}
            Ok(true) | Err(_) => return false,
        }
        if shutdown.load(Ordering::SeqCst) {
            return false;
        }
        if reads >= BURST_READS && pending.load(Ordering::SeqCst) > 0 {
            // Fairness: other ready connections are starving for a
            // worker; rotate this one back to the poller.
            break;
        }
        match conn.read_more(&mut scratch.net) {
            Ok(0) => return false,
            Ok(n) => {
                reads += 1;
                stats.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Linger expired with no traffic: back to idle watch.
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    conn.enter_poller_mode().is_ok()
}

/// The blocking command loop for one transport: read a line, execute,
/// answer with a single `write_all`. Public (and generic over the
/// transport) so the zero-allocation test can drive the exact
/// [`execute_command`] core the server runs — over in-memory buffers,
/// no sockets involved.
pub fn serve_connection<R: BufRead, W: Write>(
    store: &Store,
    reader: &mut R,
    writer: &mut W,
    scratch: &mut ConnScratch,
) -> io::Result<()> {
    let ConnScratch {
        line,
        data,
        gets,
        writes: _,
        response,
        net: _,
    } = scratch;
    let stats = store.raw_stats();

    while let Some(line_bytes) = protocol::read_line_into(reader, line)? {
        let mut bytes_read = line_bytes as u64;
        response.clear();
        let mut quit = false;
        if line.is_empty() {
            stats.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
            continue;
        }
        match protocol::parse_command(line) {
            Ok(cmd) => {
                data.clear();
                if let Command::Set { bytes, .. } | Command::Cas { bytes, .. } = &cmd {
                    bytes_read += protocol::read_data_block_into(reader, *bytes, data)? as u64;
                }
                if execute_command(store, line, &cmd, data, gets, response)? == Reply::Quit {
                    quit = true;
                }
            }
            Err(msg) => {
                write!(response, "CLIENT_ERROR {msg}\r\n")?;
            }
        }
        stats.bytes_read.fetch_add(bytes_read, Ordering::Relaxed);
        if !response.is_empty() {
            writer.write_all(response)?;
            writer.flush()?;
            stats
                .bytes_written
                .fetch_add(response.len() as u64, Ordering::Relaxed);
        }
        if quit {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{StorageOp, StoreClient};
    use crate::clock::TestClock;

    fn start() -> (StoreServer, StoreClient) {
        let server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();
        let client = StoreClient::connect(server.addr()).unwrap();
        (server, client)
    }

    #[test]
    fn pipelined_storage_bursts_over_tcp() {
        let (_server, mut client) = start();
        let keys: Vec<Vec<u8>> = (0..40).map(|i| format!("bk{i}").into_bytes()).collect();
        let vals: Vec<Vec<u8>> = (0..40).map(|i| format!("bv{i}").into_bytes()).collect();
        let sets: Vec<StorageOp<'_>> = keys
            .iter()
            .zip(&vals)
            .map(|(k, v)| StorageOp::Set {
                key: k,
                value: v,
                flags: 5,
            })
            .collect();
        let mut acks = Vec::new();
        client.send_storage_batch(&sets).unwrap();
        client.recv_storage_batch(&sets, &mut acks).unwrap();
        assert_eq!(acks.len(), 40);
        assert!(acks.iter().all(|&a| a), "every set should be STORED");
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let got = client.get_multi(&key_refs).unwrap();
        for (i, g) in got.iter().enumerate() {
            let (data, flags) = g.as_ref().unwrap();
            assert_eq!(data, &vals[i]);
            assert_eq!(*flags, 5);
        }
        // The server counted one cmd_set per batched op, exactly like
        // the sequential path would.
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("cmd_set").map(String::as_str), Some("40"));

        let dels: Vec<StorageOp<'_>> = keys.iter().map(|k| StorageOp::Delete { key: k }).collect();
        client.send_storage_batch(&dels).unwrap();
        client.recv_storage_batch(&dels, &mut acks).unwrap();
        assert!(acks.iter().all(|&a| a), "every delete should hit");
        client.send_storage_batch(&dels).unwrap();
        client.recv_storage_batch(&dels, &mut acks).unwrap();
        assert!(acks.iter().all(|&a| !a), "second delete round all misses");
    }

    #[test]
    fn batched_storage_runs_keep_reply_order() {
        // One pipelined burst mixing set/get/delete/garbage: the drain
        // batches the storage runs but every reply must still arrive in
        // request order, and a get between two sets of the same key must
        // observe the first one (runs flush before any other command).
        let (server, _client) = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"set a 0 0 1\r\nx\r\nget a\r\nset a 0 0 1\r\ny\r\n\
                  delete a\r\ndelete a\r\nfrobnicate\r\nversion\r\n",
            )
            .unwrap();
        let mut reader = io::BufReader::new(stream);
        let mut lines = Vec::new();
        for _ in 0..9 {
            let line = protocol::read_line(&mut reader).unwrap().unwrap();
            lines.push(String::from_utf8_lossy(&line).into_owned());
        }
        assert_eq!(lines[0], "STORED");
        assert_eq!(lines[1], "VALUE a 0 1");
        assert_eq!(lines[2], "x");
        assert_eq!(lines[3], "END");
        assert_eq!(lines[4], "STORED");
        assert_eq!(lines[5], "DELETED");
        assert_eq!(lines[6], "NOT_FOUND");
        assert!(lines[7].starts_with("CLIENT_ERROR"), "{}", lines[7]);
        assert!(lines[8].contains("rnb-store"), "{}", lines[8]);
    }

    #[test]
    fn batched_noreply_sets_stay_silent() {
        let (server, _client) = start();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"set quiet 0 0 1 noreply\r\nq\r\nset loud 0 0 1\r\nl\r\nget quiet\r\n")
            .unwrap();
        let mut reader = io::BufReader::new(stream);
        // Only the second set replies; the noreply one was still stored.
        let line = protocol::read_line(&mut reader).unwrap().unwrap();
        assert_eq!(line, b"STORED");
        let line = protocol::read_line(&mut reader).unwrap().unwrap();
        assert_eq!(line, b"VALUE quiet 0 1");
    }

    #[test]
    fn set_get_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"hello", b"world", 3).unwrap();
        let got = client.get_multi(&[b"hello"]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].as_ref().unwrap().0, b"world".to_vec());
        assert_eq!(got[0].as_ref().unwrap().1, 3);
    }

    #[test]
    fn multi_get_partial_hits() {
        let (_server, mut client) = start();
        client.set(b"a", b"1", 0).unwrap();
        client.set(b"c", b"3", 0).unwrap();
        let got = client.get_multi(&[b"a", b"b", b"c"]).unwrap();
        assert!(got[0].is_some());
        assert!(got[1].is_none());
        assert!(got[2].is_some());
    }

    #[test]
    fn delete_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v", 0).unwrap();
        assert!(client.delete(b"k").unwrap());
        assert!(!client.delete(b"k").unwrap());
        assert!(client.get_multi(&[b"k"]).unwrap()[0].is_none());
    }

    #[test]
    fn stats_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v", 0).unwrap();
        client.get_multi(&[b"k"]).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.get("cmd_set").map(String::as_str), Some("1"));
        assert_eq!(stats.get("get_hits").map(String::as_str), Some("1"));
        assert_eq!(stats.get("curr_items").map(String::as_str), Some("1"));
        // Wire accounting: the set + get already crossed the socket.
        let read: u64 = stats.get("bytes_read").unwrap().parse().unwrap();
        let written: u64 = stats.get("bytes_written").unwrap().parse().unwrap();
        assert!(read > 0, "bytes_read not counted");
        assert!(written > 0, "bytes_written not counted");
        // The single-key get landed in the first histogram bucket.
        assert_eq!(stats.get("get_batch_le_1").map(String::as_str), Some("1"));
    }

    #[test]
    fn version_and_bad_command() {
        let (_server, mut client) = start();
        let v = client.version().unwrap();
        assert!(v.contains("rnb-store"));
        let err = client.raw_command("frobnicate\r\n").unwrap();
        assert!(err.starts_with("CLIENT_ERROR"), "{err}");
    }

    #[test]
    fn cas_over_tcp() {
        let (_server, mut client) = start();
        client.set(b"k", b"v1", 0).unwrap();
        let got = client.gets_multi(&[b"k"]).unwrap();
        let (_, _, token) = got[0].clone().unwrap();
        // Someone else updates -> our token goes stale.
        client.set(b"k", b"v2", 0).unwrap();
        assert!(
            !client.cas(b"k", b"v3", 0, token).unwrap(),
            "stale token must fail"
        );
        let (_, _, fresh) = client.gets_multi(&[b"k"]).unwrap()[0].clone().unwrap();
        assert!(client.cas(b"k", b"v3", 0, fresh).unwrap());
        assert_eq!(
            client.get_multi(&[b"k"]).unwrap()[0].as_ref().unwrap().0,
            b"v3".to_vec()
        );
        assert!(!client.cas(b"missing", b"x", 0, 1).unwrap());
    }

    #[test]
    fn add_replace_over_tcp() {
        let (_server, mut client) = start();
        assert!(client.add(b"k", b"v1", 0).unwrap());
        assert!(!client.add(b"k", b"v2", 0).unwrap());
        assert!(client.replace(b"k", b"v3", 0).unwrap());
        assert!(!client.replace(b"nope", b"x", 0).unwrap());
        assert_eq!(
            client.get_multi(&[b"k"]).unwrap()[0].as_ref().unwrap().0,
            b"v3".to_vec()
        );
    }

    #[test]
    fn incr_decr_over_tcp() {
        let (_server, mut client) = start();
        assert_eq!(client.arith(b"n", 1, false).unwrap(), None);
        client.set(b"n", b"41", 0).unwrap();
        assert_eq!(client.arith(b"n", 1, false).unwrap(), Some(42));
        assert_eq!(client.arith(b"n", 50, true).unwrap(), Some(0));
        client.set(b"txt", b"abc", 0).unwrap();
        assert!(
            client.arith(b"txt", 1, false).is_err(),
            "non-numeric is a client error"
        );
    }

    #[test]
    fn ttl_of_signed_semantics() {
        assert_eq!(ttl_of(0), None, "0 = never expires");
        assert_eq!(ttl_of(-1), Some(Duration::ZERO), "-1 = already expired");
        assert_eq!(ttl_of(i64::MIN), Some(Duration::ZERO));
        assert_eq!(ttl_of(5), Some(Duration::from_secs(5)));
        assert_eq!(
            ttl_of(i64::MAX),
            Some(Duration::from_secs(i64::MAX.unsigned_abs()))
        );
    }

    #[test]
    fn exptime_over_tcp() {
        // The server's worker threads read the same TestClock the test
        // holds, so TTL expiry over TCP needs no real waiting.
        let clock = TestClock::new();
        let store = Arc::new(Store::with_clock(1 << 22, 16, clock.clone().into()));
        let server = StoreServer::start(store).unwrap();
        let mut client = StoreClient::connect(server.addr()).unwrap();
        // exptime = 1 second; raw command keeps the test at protocol level.
        client.raw_command("set transient 0 1 2\r\nhi\r\n").unwrap();
        assert!(client.get_multi(&[b"transient"]).unwrap()[0].is_some());
        clock.advance(Duration::from_secs(2));
        assert!(
            client.get_multi(&[b"transient"]).unwrap()[0].is_none(),
            "entry outlived TTL"
        );
        drop(server);
    }

    #[test]
    fn negative_exptime_over_tcp() {
        // Regression: `set ... -1 ...` used to answer CLIENT_ERROR bad
        // exptime; memcached stores it and expires it immediately.
        let (_server, mut client) = start();
        let resp = client
            .raw_command("set transient 0 -1 2\r\nhi\r\n")
            .unwrap();
        assert!(resp.starts_with("STORED"), "{resp}");
        assert!(
            client.get_multi(&[b"transient"]).unwrap()[0].is_none(),
            "negative exptime must be immediately invisible"
        );
    }

    #[test]
    fn concurrent_clients() {
        let server = StoreServer::start(Arc::new(Store::new(1 << 22))).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = StoreClient::connect(addr).unwrap();
                    for i in 0..100u32 {
                        let key = format!("t{t}-{i}");
                        client.set(key.as_bytes(), key.as_bytes(), 0).unwrap();
                        let got = client.get_multi(&[key.as_bytes()]).unwrap();
                        assert_eq!(got[0].as_ref().unwrap().0, key.as_bytes().to_vec());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(server.store().len(), 400);
    }

    #[test]
    fn pipelined_commands_in_one_segment() {
        // Several commands in a single TCP write: the loop must consume
        // them back-to-back from the buffered reader and answer each.
        use std::io::Read;
        let (server, _client) = start();
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"set a 0 0 1\r\nx\r\nget a\r\nversion\r\nquit\r\n")
            .unwrap();
        let mut got = Vec::new();
        raw.read_to_end(&mut got).unwrap();
        let text = String::from_utf8(got).unwrap();
        assert_eq!(
            text,
            "STORED\r\nVALUE a 0 1\r\nx\r\nEND\r\nVERSION rnb-store 0.1.0\r\n"
        );
    }

    #[test]
    fn single_worker_serves_sequential_clients() {
        let server = StoreServer::start_with(
            Arc::new(Store::new(1 << 20)),
            0,
            ServerConfig {
                workers: 1,
                accept_backlog: 4,
            },
        )
        .unwrap();
        for round in 0..3u32 {
            let mut client = StoreClient::connect(server.addr()).unwrap();
            let key = format!("r{round}");
            client.set(key.as_bytes(), b"v", 0).unwrap();
            assert!(client.get_multi(&[key.as_bytes()]).unwrap()[0].is_some());
        }
        assert_eq!(server.store().len(), 3);
    }

    #[test]
    fn connection_churn_leaves_registry_bounded() {
        // Regression for the conns leak: 100 connect/disconnect cycles
        // must not accumulate dead entries.
        let server = StoreServer::start(Arc::new(Store::new(1 << 20))).unwrap();
        for i in 0..100u32 {
            let mut client = StoreClient::connect(server.addr()).unwrap();
            let key = format!("churn-{i}");
            client.set(key.as_bytes(), b"v", 0).unwrap();
            drop(client);
        }
        // Workers deregister asynchronously after the client side closes;
        // poll (bounded, no sleeping) until the registry drains.
        let mut polls = 0u64;
        while server.live_connections() > 0 {
            polls += 1;
            assert!(
                polls < 50_000_000,
                "registry never drained: {} connections still registered",
                server.live_connections()
            );
            std::thread::yield_now();
        }
        assert_eq!(server.live_connections(), 0);
        assert_eq!(server.store().len(), 100, "every churn cycle stored once");
    }

    /// Bounded poll until `cond` holds (no sleeping, per lint R5).
    fn poll_until(what: &str, cond: impl Fn() -> bool) {
        let mut polls = 0u64;
        while !cond() {
            polls += 1;
            assert!(polls < 50_000_000, "never observed: {what}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn idle_connections_outnumber_threads() {
        // The C10K property, scaled to the per-process fd budget a unit
        // test may assume: ~1k mostly-idle connections served by a
        // handful of threads, with a few active clients unharmed by the
        // idle crowd. (The 10k version runs in the store bench's
        // `connections` axis, where client sockets live in child
        // processes.)
        let server = StoreServer::start_with(
            Arc::new(Store::new(1 << 22)),
            0,
            ServerConfig {
                workers: 2,
                accept_backlog: 64,
            },
        )
        .unwrap();
        assert_eq!(server.thread_count(), 4, "accept + poll + 2 workers");

        let idle: Vec<TcpStream> = (0..1000)
            .map(|_| TcpStream::connect(server.addr()).unwrap())
            .collect();
        poll_until("1000 idle conns registered", || {
            server.live_connections() >= 1000
        });

        // A handful of active clients work through the idle crowd.
        let addr = server.addr();
        let actives: Vec<_> = (0..3)
            .map(|t| {
                std::thread::spawn(move || {
                    let mut client = StoreClient::connect(addr).unwrap();
                    for i in 0..50u32 {
                        let key = format!("busy{t}-{i}");
                        client.set(key.as_bytes(), key.as_bytes(), 0).unwrap();
                        let got = client.get_multi(&[key.as_bytes()]).unwrap();
                        assert_eq!(got[0].as_ref().unwrap().0, key.as_bytes().to_vec());
                    }
                })
            })
            .collect();
        for t in actives {
            t.join().unwrap();
        }
        assert_eq!(server.store().len(), 150);
        assert_eq!(server.thread_count(), 4, "no per-connection threads");

        // Dropping the idle sockets drains the registry via EOF probes.
        drop(idle);
        poll_until("idle conns retired", || server.live_connections() == 0);
    }

    #[test]
    fn idle_connection_first_request_is_served() {
        // A connection that sat idle past every linger still gets its
        // (eventual) first request answered via the poller dispatch.
        let (server, mut warm) = start();
        let cold = TcpStream::connect(server.addr()).unwrap();
        // Make the idle conn truly idle: exercise the warm client so
        // sweeps run and escalate the park interval meanwhile.
        for i in 0..20u32 {
            warm.set(format!("w{i}").as_bytes(), b"v", 0).unwrap();
        }
        let mut cold_client = {
            let stream = cold;
            stream.set_nodelay(true).unwrap();
            stream
        };
        cold_client.write_all(b"version\r\n").unwrap();
        let mut buf = [0u8; 64];
        let n = std::io::Read::read(&mut cold_client, &mut buf).unwrap();
        assert!(
            std::str::from_utf8(&buf[..n])
                .unwrap()
                .starts_with("VERSION"),
            "idle conn's first request must be served"
        );
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (mut server, _client) = start();
        server.shutdown();
        server.shutdown();
        assert!(
            StoreClient::connect(server.addr()).is_err() || {
                // The OS may accept the connection before noticing the closed
                // listener; a subsequent command must then fail.
                true
            }
        );
    }
}
