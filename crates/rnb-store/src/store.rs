//! The sharded concurrent store.
//!
//! The read path is batch-first: [`Store::get_multi`] groups keys by
//! shard in a pooled [`GetScratch`], locks each touched shard exactly
//! once, and hands the whole per-shard batch to
//! [`Shard::get_many`](crate::Shard) — one lock round-trip and one clock
//! read per shard instead of one per key. The seed per-key loop survives
//! as [`Store::get_multi_reference`], the oracle the proptests and the
//! `BENCH_store.json` benchmark compare against.

use crate::clock::Clock;
use crate::replicated::{HotShard, WriteOp, WriteOutcome};
use crate::shard::{self, ArithOutcome, CasOutcome, SetOutcome, Shard, Value};
use crate::stats::{StatsSnapshot, StoreStats};
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default shard count (power of two; one mutex each keeps contention low
/// at the connection counts the micro-benchmarks use).
pub const DEFAULT_SHARDS: usize = 16;

/// Pooled scratch for [`Store::get_multi_with`]: per-shard batch lists
/// reset by epoch stamping (the same O(1)-reset idiom as `rnb-cover`'s
/// label interner), so a serving loop reuses one allocation set across
/// requests of any shape.
#[derive(Debug, Default)]
pub struct GetScratch {
    /// Current request number; buckets with an older stamp are logically
    /// empty.
    epoch: u64,
    /// Shard indices touched by the current request, in first-touch
    /// order.
    touched: Vec<usize>,
    /// One bucket per shard: `(caller position, key hash)` pairs.
    buckets: Vec<ShardBucket>,
}

#[derive(Debug, Default)]
struct ShardBucket {
    epoch: u64,
    entries: Vec<(usize, u64)>,
}

impl GetScratch {
    /// An empty scratch; buckets are sized on first use.
    pub const fn new() -> Self {
        GetScratch {
            epoch: 0,
            touched: Vec::new(),
            buckets: Vec::new(),
        }
    }

    /// Start a new request against a store with `shards` shards.
    fn begin(&mut self, shards: usize) {
        if self.buckets.len() != shards {
            self.buckets.clear();
            self.buckets.resize_with(shards, ShardBucket::default);
        }
        self.epoch = self.epoch.wrapping_add(1);
        self.touched.clear();
    }

    /// Record that `pos`-th key (hash `h`) lands on shard `sh`.
    fn push(&mut self, sh: usize, pos: usize, h: u64) {
        let bucket = &mut self.buckets[sh];
        if bucket.epoch != self.epoch {
            bucket.epoch = self.epoch;
            bucket.entries.clear();
            self.touched.push(sh);
        }
        bucket.entries.push((pos, h));
    }
}

/// One entry of a batched write ([`Store::set_multi`]): the same
/// parameters as [`Store::set_with_ttl`], borrowed so a serving loop can
/// point straight into its network buffer.
#[derive(Debug, Clone, Copy)]
pub struct SetEntry<'a> {
    /// Entry key.
    pub key: &'a [u8],
    /// Value bytes.
    pub value: &'a [u8],
    /// Opaque client flags, returned verbatim on reads.
    pub flags: u32,
    /// Pinned entries (distinguished copies) are never evicted.
    pub pinned: bool,
    /// Optional expiry; `None` lives until evicted.
    pub ttl: Option<Duration>,
}

/// Promotion/demotion policy for flat-combining hot-shard replication
/// (see `replicated.rs` and DESIGN.md "Flat combining & hot-shard
/// replication").
///
/// Promotion is driven by cheap per-shard access counters: every
/// `window` store-wide accesses, each shard's share of the window is
/// inspected — a cold shard that absorbed at least `promote_accesses`
/// of them is promoted (its reads move to per-thread replicas, its
/// writes to the flat combiner), and a hot shard that fell below
/// `demote_accesses` is demoted back to the plain mutex path.
#[derive(Debug, Clone)]
pub struct HotConfig {
    /// Store-wide accesses per inspection window; `0` disables
    /// replication entirely (every shard stays on the mutex path).
    pub window: u64,
    /// Per-shard accesses within one window that trigger promotion.
    pub promote_accesses: u64,
    /// Hot shards seeing fewer accesses than this in a window cool down.
    pub demote_accesses: u64,
    /// Read replicas per hot shard (one per reader thread is ideal;
    /// threads round-robin across them).
    pub replicas: usize,
}

impl Default for HotConfig {
    /// Promote a shard that absorbs ≥ 1/4 of a 64Ki-access window
    /// (a uniform workload on 16 shards gives each ~1/16, so only a
    /// genuinely skewed hot spot qualifies); demote below 1/16.
    fn default() -> Self {
        let replicas = std::thread::available_parallelism()
            .map_or(4, usize::from)
            .min(8);
        HotConfig {
            window: 1 << 16,
            promote_accesses: 1 << 14,
            demote_accesses: 1 << 12,
            replicas,
        }
    }
}

impl HotConfig {
    /// No shard is ever promoted: the store behaves exactly like the
    /// pre-replication single-mutex-per-shard design. This is the
    /// baseline arm of the contended benchmark.
    pub fn disabled() -> Self {
        HotConfig {
            window: 0,
            promote_accesses: u64::MAX,
            demote_accesses: 0,
            replicas: 1,
        }
    }
}

/// Per-shard access counters, updated with relaxed atomics so they are
/// readable (and writable) without touching the shard's data mutex —
/// the promotion heuristic samples them on the hot path.
#[derive(Debug, Default)]
struct ShardCounters {
    /// Key lookups routed to this shard.
    gets: AtomicU64,
    /// Lookups that hit.
    hits: AtomicU64,
    /// Write operations routed to this shard.
    writes: AtomicU64,
    /// Accesses within the current promotion window (reset on roll).
    window: AtomicU64,
}

/// A plain-data reading of one shard's access counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardCounterSnapshot {
    /// Key lookups routed to this shard.
    pub gets: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Write operations routed to this shard.
    pub writes: u64,
}

/// One shard slot: the data mutex, the lock-free access counters, and
/// the replication harness when the shard is hot. Lock order within a
/// slot is always `hot` (read/write) before `data` — promotion copies
/// replicas under both, which is what makes routing race-free.
///
/// `hinted_hot` is a relaxed mirror of `hot.is_some()` so the (common)
/// cold path never touches the `hot` RwLock at all. The hint is flipped
/// to `true` *while promotion still holds the data mutex*, so a direct
/// operation that re-checks the hint after acquiring the data mutex and
/// sees `false` is guaranteed to run before the replicas are copied —
/// its effect is captured by the copy, never lost.
struct ShardSlot {
    data: Mutex<Shard>,
    hot: RwLock<Option<Arc<HotShard>>>,
    hinted_hot: AtomicBool,
    counters: ShardCounters,
}

/// A concurrent, memory-bounded key-value store.
///
/// ```
/// use rnb_store::Store;
/// let store = Store::new(1 << 20); // 1 MiB budget
/// store.set(b"user:42", b"hello", 0, false);
/// let hit = store.get(b"user:42").unwrap();
/// assert_eq!(&hit.data[..], b"hello");
/// // Multi-get counts as ONE transaction (the paper's cost unit):
/// store.get_multi(&[b"user:42", b"user:43"]);
/// assert_eq!(store.stats().get_txns, 2);
/// ```
pub struct Store {
    slots: Vec<ShardSlot>,
    mask: u64,
    stats: Arc<StoreStats>,
    hot_cfg: HotConfig,
    /// Store-wide access counter driving the promotion windows.
    access_window: AtomicU64,
    /// Shard-mutex acquisitions made by the batched multi-get path; the
    /// regression tests assert it never exceeds the shards touched.
    #[cfg(test)]
    multi_lock_acquisitions: AtomicU64,
}

impl Store {
    /// A store with `mem_limit` bytes total across [`DEFAULT_SHARDS`]
    /// shards.
    pub fn new(mem_limit: usize) -> Self {
        Self::with_shards(mem_limit, DEFAULT_SHARDS)
    }

    /// A store with an explicit shard count (must be a power of two).
    pub fn with_shards(mem_limit: usize, shards: usize) -> Self {
        Self::with_clock(mem_limit, shards, Clock::real())
    }

    /// A store whose TTL expiry reads `clock` — the virtual-time
    /// constructor. Hand every shard a clone of a
    /// [`TestClock`](crate::TestClock)-backed clock and `advance()` the
    /// handle you kept to drive expiry deterministically, even across the
    /// server's connection threads.
    pub fn with_clock(mem_limit: usize, shards: usize, clock: Clock) -> Self {
        Self::with_config(mem_limit, shards, clock, HotConfig::default())
    }

    /// The fully-explicit constructor: shard count, clock, and the
    /// hot-shard promotion policy ([`HotConfig::disabled`] pins every
    /// shard to the plain mutex path).
    pub fn with_config(mem_limit: usize, shards: usize, clock: Clock, hot_cfg: HotConfig) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let per_shard = mem_limit / shards;
        Store {
            slots: (0..shards)
                .map(|_| ShardSlot {
                    data: Mutex::new(Shard::with_clock(per_shard, clock.clone())),
                    hot: RwLock::new(None),
                    hinted_hot: AtomicBool::new(false),
                    counters: ShardCounters::default(),
                })
                .collect(),
            mask: (shards - 1) as u64,
            stats: Arc::new(StoreStats::default()),
            hot_cfg,
            access_window: AtomicU64::new(0),
            #[cfg(test)]
            multi_lock_acquisitions: AtomicU64::new(0),
        }
    }

    /// The store-wide counters (the server increments wire-level byte
    /// counts through this).
    pub(crate) fn raw_stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.slots.len()
    }

    /// One shard's access counters, read with relaxed atomics — no data
    /// lock is taken, so this is safe to sample from monitoring threads
    /// at any rate.
    pub fn shard_counters(&self, idx: usize) -> ShardCounterSnapshot {
        let c = &self.slots[idx & self.mask as usize].counters;
        ShardCounterSnapshot {
            gets: c.gets.load(Ordering::Relaxed),
            hits: c.hits.load(Ordering::Relaxed),
            writes: c.writes.load(Ordering::Relaxed),
        }
    }

    /// Is shard `idx` currently promoted to replicated hot mode?
    pub fn shard_is_hot(&self, idx: usize) -> bool {
        self.slots[idx & self.mask as usize].hot.read().is_some()
    }

    /// Which shard index `key` routes to.
    fn shard_index_of(&self, key: &[u8]) -> usize {
        (shard::key_hash(key) & self.mask) as usize
    }

    /// Which shard index `key` routes to (test-only introspection for
    /// coverage assertions).
    #[cfg(test)]
    fn shard_index(&self, key: &[u8]) -> usize {
        self.shard_index_of(key)
    }

    /// Record `n` accesses against shard `sh` and roll the promotion
    /// window when the store-wide counter crosses a window boundary.
    /// Called before the shard's guards are taken, so promotion (which
    /// needs the write side of the `hot` lock) can never self-deadlock.
    fn note_accesses(&self, sh: usize, n: u64) {
        let window = self.hot_cfg.window;
        if window == 0 {
            // Promotion disabled: the window counters are never read
            // (`roll_window` never runs), so skip the RMWs entirely and
            // keep the disabled store's serving path tax-free.
            return;
        }
        self.slots[sh]
            .counters
            .window
            .fetch_add(n, Ordering::Relaxed);
        let prev = self.access_window.fetch_add(n, Ordering::Relaxed);
        if prev / window != (prev + n) / window {
            self.roll_window();
        }
    }

    /// Inspect every shard's share of the finished window: promote the
    /// skew winners, cool down hot shards whose traffic faded. Runs on
    /// the (single) thread that crossed the window boundary; concurrent
    /// rolls are harmless (promotion/demotion re-check under the write
    /// lock).
    fn roll_window(&self) {
        for slot in &self.slots {
            let seen = slot.counters.window.swap(0, Ordering::Relaxed);
            let is_hot = slot.hot.read().is_some();
            if !is_hot && seen >= self.hot_cfg.promote_accesses {
                self.promote(slot);
            } else if is_hot && seen < self.hot_cfg.demote_accesses {
                self.demote(slot);
            }
        }
    }

    /// Promote one shard: build its replication harness (replicas are
    /// copied under the data lock, so they start exactly in sync with
    /// the primary) and install it. Holding the `hot` write lock for the
    /// whole build excludes every reader/writer of the slot — from their
    /// next operation on, they route through the harness.
    fn promote(&self, slot: &ShardSlot) {
        let mut hot = slot.hot.write();
        if hot.is_some() {
            return;
        }
        let built = {
            let data = slot.data.lock();
            let built = Arc::new(HotShard::new(
                &data,
                self.hot_cfg.replicas,
                Arc::clone(&self.stats),
            ));
            // Publish the hint while still holding the data mutex: any
            // direct operation that acquires the mutex after this point
            // re-checks the hint and re-routes, so the replica copy
            // above can never miss a concurrent direct mutation.
            slot.hinted_hot.store(true, Ordering::Relaxed);
            built
        };
        *hot = Some(built);
        self.stats.hot_promotions.fetch_add(1, Ordering::Relaxed);
    }

    /// Demote one shard back to the plain mutex path. The primary (in
    /// `slot.data`) has every combined write applied, so dropping the
    /// harness loses nothing; the replicas and log are freed with the
    /// last in-flight `Arc`.
    fn demote(&self, slot: &ShardSlot) {
        let mut hot = slot.hot.write();
        if hot.take().is_some() {
            slot.hinted_hot.store(false, Ordering::Relaxed);
            self.stats.hot_demotions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Route one write: through the flat combiner while the shard is
    /// hot, directly under the data mutex otherwise. The `hot` read
    /// guard is held across the whole operation — that is what makes
    /// promotion/demotion atomic with respect to in-flight writes (a
    /// promotion cannot copy replicas halfway through a direct write,
    /// and a combiner write cannot race a demotion's final state).
    fn apply_write<F>(
        &self,
        key: &[u8],
        hot_op: F,
        direct: impl FnOnce(&mut Shard) -> WriteOutcome,
    ) -> WriteOutcome
    where
        F: FnOnce() -> WriteOp,
    {
        let sh = self.shard_index_of(key);
        self.note_accesses(sh, 1);
        let slot = &self.slots[sh];
        slot.counters.writes.fetch_add(1, Ordering::Relaxed);
        if !slot.hinted_hot.load(Ordering::Relaxed) {
            // Cold fast path: no RwLock traffic. The hint is re-checked
            // under the data mutex (see ShardSlot) — a concurrent
            // promotion either waits for this write (and copies it) or
            // flips the hint first, in which case we fall through.
            let mut shard = slot.data.lock();
            if !slot.hinted_hot.load(Ordering::Relaxed) {
                return direct(&mut shard);
            }
        }
        let hot = slot.hot.read();
        if let Some(h) = hot.as_ref() {
            h.write(hot_op(), &slot.data)
        } else {
            let mut shard = slot.data.lock();
            direct(&mut shard)
        }
    }

    /// Fetch one key.
    pub fn get(&self, key: &[u8]) -> Option<Value> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.stats.get_txns.fetch_add(1, Ordering::Relaxed);
        let h = shard::key_hash(key);
        let sh = (h & self.mask) as usize;
        self.note_accesses(sh, 1);
        let slot = &self.slots[sh];
        let got = 'got: {
            if !slot.hinted_hot.load(Ordering::Relaxed) {
                // Cold fast path; hint re-checked under the data mutex
                // because `get` mutates (LRU order, expired removal) and
                // a promotion copying replicas mid-mutation would fork
                // primary and replica LRU state.
                let mut guard = slot.data.lock();
                if !slot.hinted_hot.load(Ordering::Relaxed) {
                    break 'got guard.get(key);
                }
            }
            let hot = slot.hot.read();
            if let Some(hs) = hot.as_ref() {
                self.stats.replica_reads.fetch_add(1, Ordering::Relaxed);
                let mut out = [None];
                hs.read_many(std::iter::once((h, key, 0usize)), &mut out);
                out[0].take()
            } else {
                slot.data.lock().get(key)
            }
        };
        slot.counters.gets.fetch_add(1, Ordering::Relaxed);
        match got {
            Some(v) => {
                slot.counters.hits.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fetch many keys in one transaction (one `get_transactions` tick,
    /// one lookup per key), batching shard work: each touched shard is
    /// locked exactly once. Results land in the caller's key order.
    ///
    /// This convenience form allocates the result vector and borrows a
    /// thread-local [`GetScratch`]; serving loops should hold their own
    /// scratch and output buffer and call [`Store::get_multi_into`].
    pub fn get_multi(&self, keys: &[&[u8]]) -> Vec<Option<Value>> {
        thread_local! {
            static SCRATCH: RefCell<GetScratch> = const { RefCell::new(GetScratch::new()) };
        }
        let mut out = Vec::new();
        SCRATCH.with(|scratch| {
            self.get_multi_with(&mut scratch.borrow_mut(), keys.len(), |i| keys[i], &mut out);
        });
        out
    }

    /// [`Store::get_multi`] writing into caller-owned buffers: `out` is
    /// cleared and refilled in key order. Reusing `scratch` and `out`
    /// across calls makes the steady-state read path allocation-free.
    pub fn get_multi_into(
        &self,
        scratch: &mut GetScratch,
        keys: &[&[u8]],
        out: &mut Vec<Option<Value>>,
    ) {
        self.get_multi_with(scratch, keys.len(), |i| keys[i], out);
    }

    /// The core batched multi-get: keys are supplied by position through
    /// `key_at` (called O(1) times per key), so callers can hand out
    /// sub-slices of a network buffer without materialising a `&[&[u8]]`.
    /// Fills `out[i]` with the result for `key_at(i)`, `0 <= i < count`,
    /// locking each touched shard exactly once. Returns the hit count.
    pub fn get_multi_with<'k, F>(
        &self,
        scratch: &mut GetScratch,
        count: usize,
        key_at: F,
        out: &mut Vec<Option<Value>>,
    ) -> usize
    where
        F: Fn(usize) -> &'k [u8],
    {
        self.stats.get_txns.fetch_add(1, Ordering::Relaxed);
        self.stats.gets.fetch_add(count as u64, Ordering::Relaxed);
        self.stats.count_get_batch(count);
        out.clear();
        out.resize(count, None);
        scratch.begin(self.slots.len());
        for i in 0..count {
            let h = shard::key_hash(key_at(i));
            scratch.push((h & self.mask) as usize, i, h);
        }
        let mut hits = 0usize;
        for &sh in &scratch.touched {
            let slot = &self.slots[sh];
            let batch = scratch.buckets[sh].entries.len() as u64;
            self.note_accesses(sh, batch);
            let entries = scratch.buckets[sh]
                .entries
                .iter()
                .map(|&(pos, h)| (h, key_at(pos), pos));
            let shard_hits = 'serve: {
                if !slot.hinted_hot.load(Ordering::Relaxed) {
                    // Cold fast path (hint re-checked under the mutex,
                    // see ShardSlot): one lock per touched shard, as in
                    // the pre-replication design.
                    #[cfg(test)]
                    self.multi_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.data.lock();
                    if !slot.hinted_hot.load(Ordering::Relaxed) {
                        break 'serve guard.get_many(entries, out);
                    }
                }
                let hot = slot.hot.read();
                if let Some(hs) = hot.as_ref() {
                    // Hot shard: serve the whole sub-batch from this
                    // thread's replica — no shared mutex on the read path.
                    self.stats.replica_reads.fetch_add(batch, Ordering::Relaxed);
                    hs.read_many(entries, out)
                } else {
                    #[cfg(test)]
                    self.multi_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.data.lock();
                    guard.get_many(entries, out)
                }
            };
            slot.counters.gets.fetch_add(batch, Ordering::Relaxed);
            slot.counters
                .hits
                .fetch_add(shard_hits as u64, Ordering::Relaxed);
            hits += shard_hits;
        }
        self.stats.hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.stats
            .misses
            .fetch_add((count - hits) as u64, Ordering::Relaxed);
        hits
    }

    /// The seed per-key multi-get: one shard-lock acquisition (and one
    /// clock read) **per key**. Kept verbatim as the correctness oracle
    /// for the batched path and as the baseline the store benchmark's
    /// speedup ratios are measured against. Stats accounting matches
    /// [`Store::get_multi`] exactly.
    pub fn get_multi_reference(&self, keys: &[&[u8]]) -> Vec<Option<Value>> {
        self.stats.get_txns.fetch_add(1, Ordering::Relaxed);
        self.stats
            .gets
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        self.stats.count_get_batch(keys.len());
        let mut hits = 0u64;
        let out: Vec<Option<Value>> = keys
            .iter()
            .map(|key| {
                let v = self.slots[self.shard_index_of(key)].data.lock().get(key);
                if v.is_some() {
                    hits += 1;
                }
                v
            })
            .collect();
        self.stats.hits.fetch_add(hits, Ordering::Relaxed);
        self.stats
            .misses
            .fetch_add(keys.len() as u64 - hits, Ordering::Relaxed);
        out
    }

    /// Store a value. `pinned` entries are never evicted.
    pub fn set(&self, key: &[u8], value: &[u8], flags: u32, pinned: bool) -> SetOutcome {
        self.set_with_ttl(key, value, flags, pinned, None)
    }

    /// [`Store::set`] with an optional expiry.
    pub fn set_with_ttl(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        pinned: bool,
        ttl: Option<Duration>,
    ) -> SetOutcome {
        let outcome = self
            .apply_write(
                key,
                || WriteOp::Set {
                    key: Arc::from(key),
                    value: Arc::from(value),
                    flags,
                    pinned,
                    ttl,
                },
                |shard| WriteOutcome::Set(shard.set_full(key, value, flags, pinned, ttl)),
            )
            .into_set();
        self.count_set(&outcome);
        outcome
    }

    fn count_set(&self, outcome: &SetOutcome) {
        match *outcome {
            SetOutcome::Stored { evicted } => {
                self.stats.sets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .evictions
                    .fetch_add(evicted as u64, Ordering::Relaxed);
            }
            SetOutcome::OutOfMemory => {
                self.stats.oom_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Store a whole batch, locking each touched shard at most once.
    ///
    /// The write-side analogue of [`Store::get_multi_with`]: keys are
    /// grouped by shard through the pooled `scratch`, then each touched
    /// shard's sub-batch is applied under a single data-lock acquisition
    /// and a single clock read (cold shards), or enqueued into the flat
    /// combiner as one batch — one drained batch, one primary lock —
    /// while the shard is hot. `outcomes` is cleared and refilled in
    /// entry order. Entries are applied in batch order within each
    /// shard, so duplicate keys resolve exactly as a sequential
    /// [`Store::set_with_ttl`] loop would (later entry wins); stats
    /// accounting matches the sequential loop per op.
    pub fn set_multi(
        &self,
        scratch: &mut GetScratch,
        entries: &[SetEntry<'_>],
        outcomes: &mut Vec<SetOutcome>,
    ) {
        self.set_multi_with(scratch, entries.len(), |i| entries[i], outcomes);
    }

    /// [`Store::set_multi`] with entries supplied by position through
    /// `entry_at` (called O(1) times per entry), so callers — the
    /// server's burst drain in particular — can hand out sub-slices of a
    /// network buffer without materialising a `&[SetEntry]`.
    pub fn set_multi_with<'k, F>(
        &self,
        scratch: &mut GetScratch,
        count: usize,
        entry_at: F,
        outcomes: &mut Vec<SetOutcome>,
    ) where
        F: Fn(usize) -> SetEntry<'k>,
    {
        outcomes.clear();
        outcomes.resize(count, SetOutcome::Stored { evicted: 0 });
        scratch.begin(self.slots.len());
        for i in 0..count {
            let h = shard::key_hash(entry_at(i).key);
            scratch.push((h & self.mask) as usize, i, h);
        }
        for &sh in &scratch.touched {
            let slot = &self.slots[sh];
            let bucket = &scratch.buckets[sh].entries;
            let batch = bucket.len() as u64;
            self.note_accesses(sh, batch);
            slot.counters.writes.fetch_add(batch, Ordering::Relaxed);
            'apply: {
                if !slot.hinted_hot.load(Ordering::Relaxed) {
                    // Cold fast path (hint re-checked under the mutex,
                    // see ShardSlot): one lock and one clock read for
                    // the whole sub-batch.
                    #[cfg(test)]
                    self.multi_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.data.lock();
                    if !slot.hinted_hot.load(Ordering::Relaxed) {
                        let now = guard.now();
                        for &(pos, h) in bucket {
                            let e = entry_at(pos);
                            outcomes[pos] = guard
                                .set_full_hashed(h, e.key, e.value, e.flags, e.pinned, e.ttl, now);
                        }
                        break 'apply;
                    }
                }
                let hot = slot.hot.read();
                if let Some(hs) = hot.as_ref() {
                    // Hot shard: the whole sub-batch enters the combiner
                    // queue before combining starts, so it drains as one
                    // batch — one log tick, one primary acquisition.
                    let mut hot_out = Vec::with_capacity(bucket.len());
                    hs.write_many(
                        bucket.iter().map(|&(pos, _)| {
                            let e = entry_at(pos);
                            WriteOp::Set {
                                key: Arc::from(e.key),
                                value: Arc::from(e.value),
                                flags: e.flags,
                                pinned: e.pinned,
                                ttl: e.ttl,
                            }
                        }),
                        &slot.data,
                        &mut hot_out,
                    );
                    for (&(pos, _), outcome) in bucket.iter().zip(hot_out) {
                        outcomes[pos] = outcome.into_set();
                    }
                } else {
                    #[cfg(test)]
                    self.multi_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.data.lock();
                    let now = guard.now();
                    for &(pos, h) in bucket {
                        let e = entry_at(pos);
                        outcomes[pos] =
                            guard.set_full_hashed(h, e.key, e.value, e.flags, e.pinned, e.ttl, now);
                    }
                }
            }
        }
        // Stats are folded over the batch first — one atomic add per
        // counter instead of one per entry.
        let (mut stored, mut evicted, mut oom) = (0u64, 0u64, 0u64);
        for outcome in outcomes.iter() {
            match *outcome {
                SetOutcome::Stored { evicted: e } => {
                    stored += 1;
                    evicted += e as u64;
                }
                SetOutcome::OutOfMemory => oom += 1,
            }
        }
        self.stats.sets.fetch_add(stored, Ordering::Relaxed);
        self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
        self.stats.oom_errors.fetch_add(oom, Ordering::Relaxed);
    }

    /// Delete a whole batch, locking each touched shard at most once;
    /// `deleted` is cleared and refilled in key order (`true` where the
    /// key existed). Stats match a sequential [`Store::delete`] loop.
    pub fn delete_multi(&self, scratch: &mut GetScratch, keys: &[&[u8]], deleted: &mut Vec<bool>) {
        self.delete_multi_with(scratch, keys.len(), |i| keys[i], deleted);
    }

    /// [`Store::delete_multi`] with keys supplied by position through
    /// `key_at`, the accessor form used by the server's burst drain.
    pub fn delete_multi_with<'k, F>(
        &self,
        scratch: &mut GetScratch,
        count: usize,
        key_at: F,
        deleted: &mut Vec<bool>,
    ) where
        F: Fn(usize) -> &'k [u8],
    {
        deleted.clear();
        deleted.resize(count, false);
        scratch.begin(self.slots.len());
        for i in 0..count {
            let h = shard::key_hash(key_at(i));
            scratch.push((h & self.mask) as usize, i, h);
        }
        for &sh in &scratch.touched {
            let slot = &self.slots[sh];
            let bucket = &scratch.buckets[sh].entries;
            let batch = bucket.len() as u64;
            self.note_accesses(sh, batch);
            slot.counters.writes.fetch_add(batch, Ordering::Relaxed);
            'apply: {
                if !slot.hinted_hot.load(Ordering::Relaxed) {
                    #[cfg(test)]
                    self.multi_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.data.lock();
                    if !slot.hinted_hot.load(Ordering::Relaxed) {
                        for &(pos, h) in bucket {
                            deleted[pos] = guard.delete_hashed(h, key_at(pos));
                        }
                        break 'apply;
                    }
                }
                let hot = slot.hot.read();
                if let Some(hs) = hot.as_ref() {
                    let mut hot_out = Vec::with_capacity(bucket.len());
                    hs.write_many(
                        bucket.iter().map(|&(pos, _)| WriteOp::Delete {
                            key: Arc::from(key_at(pos)),
                        }),
                        &slot.data,
                        &mut hot_out,
                    );
                    for (&(pos, _), outcome) in bucket.iter().zip(hot_out) {
                        deleted[pos] = outcome.into_deleted();
                    }
                } else {
                    #[cfg(test)]
                    self.multi_lock_acquisitions.fetch_add(1, Ordering::Relaxed);
                    let mut guard = slot.data.lock();
                    for &(pos, h) in bucket {
                        deleted[pos] = guard.delete_hashed(h, key_at(pos));
                    }
                }
            }
        }
        let removed = deleted.iter().filter(|&&d| d).count() as u64;
        self.stats.deletes.fetch_add(removed, Ordering::Relaxed);
    }

    /// `add`: store only if absent; `None` if the key already exists.
    pub fn add(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        let outcome = self
            .apply_write(
                key,
                || WriteOp::Add {
                    key: Arc::from(key),
                    value: Arc::from(value),
                    flags,
                    ttl,
                },
                |shard| WriteOutcome::Conditional(shard.add(key, value, flags, ttl)),
            )
            .into_conditional();
        if let Some(o) = &outcome {
            self.count_set(o);
        }
        outcome
    }

    /// `replace`: store only if present; `None` if the key is absent.
    pub fn replace(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        let outcome = self
            .apply_write(
                key,
                || WriteOp::Replace {
                    key: Arc::from(key),
                    value: Arc::from(value),
                    flags,
                    ttl,
                },
                |shard| WriteOutcome::Conditional(shard.replace(key, value, flags, ttl)),
            )
            .into_conditional();
        if let Some(o) = &outcome {
            self.count_set(o);
        }
        outcome
    }

    /// Compare-and-swap with the token from a previous `get`.
    pub fn cas(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        token: u64,
        ttl: Option<Duration>,
    ) -> CasOutcome {
        let outcome = self
            .apply_write(
                key,
                || WriteOp::Cas {
                    key: Arc::from(key),
                    value: Arc::from(value),
                    flags,
                    token,
                    ttl,
                },
                |shard| WriteOutcome::Cas(shard.cas(key, value, flags, token, ttl)),
            )
            .into_cas();
        match outcome {
            CasOutcome::Stored => {
                self.stats.cas_ok.fetch_add(1, Ordering::Relaxed);
                self.stats.sets.fetch_add(1, Ordering::Relaxed);
            }
            CasOutcome::Exists => {
                self.stats.cas_conflicts.fetch_add(1, Ordering::Relaxed);
            }
            CasOutcome::NotFound => {}
            CasOutcome::OutOfMemory => {
                self.stats.oom_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// `incr` (`negative = false`) / `decr` (`negative = true`).
    pub fn arith(&self, key: &[u8], delta: u64, negative: bool) -> ArithOutcome {
        let outcome = self
            .apply_write(
                key,
                || WriteOp::Arith {
                    key: Arc::from(key),
                    delta,
                    negative,
                },
                |shard| WriteOutcome::Arith(shard.arith(key, delta, negative)),
            )
            .into_arith();
        match outcome {
            ArithOutcome::Value(_) => {
                let hits = if negative {
                    &self.stats.decr_hits
                } else {
                    &self.stats.incr_hits
                };
                hits.fetch_add(1, Ordering::Relaxed);
                // incr/decr rewrites the value: a mutation, like set/cas.
                self.stats.sets.fetch_add(1, Ordering::Relaxed);
            }
            ArithOutcome::NotFound => {
                let misses = if negative {
                    &self.stats.decr_misses
                } else {
                    &self.stats.incr_misses
                };
                misses.fetch_add(1, Ordering::Relaxed);
            }
            ArithOutcome::NonNumeric => {
                self.stats.arith_non_numeric.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Eagerly reclaim expired entries in every shard (pinned ones
    /// included); returns how many were removed. `len()`/`mem_used()`
    /// reflect the sweep immediately.
    pub fn sweep_expired(&self) -> usize {
        // Hot shards are skipped: sweeping the primary behind the
        // combiner's back would diverge it from the replicas (the removal
        // never enters the op log). Hot shards still expire entries lazily
        // on read/write, and a later sweep after demotion reclaims them.
        self.slots
            .iter()
            .map(|slot| {
                let hot = slot.hot.read();
                if hot.is_some() {
                    0
                } else {
                    slot.data.lock().sweep_expired()
                }
            })
            .sum()
    }

    /// Delete a key; true if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let deleted = self
            .apply_write(
                key,
                || WriteOp::Delete {
                    key: Arc::from(key),
                },
                |shard| WriteOutcome::Deleted(shard.delete(key)),
            )
            .into_deleted();
        if deleted {
            self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        }
        deleted
    }

    /// Entries across all shards.
    pub fn len(&self) -> usize {
        self.slots.iter().map(|s| s.data.lock().len()).sum()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes accounted across all shards.
    pub fn mem_used(&self) -> usize {
        self.slots.iter().map(|s| s.data.lock().mem_used()).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats
            .snapshot(self.len() as u64, self.mem_used() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip_and_stats() {
        let store = Store::new(1 << 20);
        assert!(matches!(
            store.set(b"a", b"1", 5, false),
            SetOutcome::Stored { .. }
        ));
        let v = store.get(b"a").unwrap();
        assert_eq!(&v.data[..], b"1");
        assert_eq!(v.flags, 5);
        assert!(store.get(b"b").is_none());
        let s = store.stats();
        assert_eq!(s.sets, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.curr_items, 1);
        assert!(s.bytes > 0);
    }

    #[test]
    fn get_multi_counts_one_transaction() {
        let store = Store::new(1 << 20);
        store.set(b"x", b"1", 0, false);
        store.set(b"y", b"2", 0, false);
        let res = store.get_multi(&[b"x", b"y", b"z"]);
        assert_eq!(res.len(), 3);
        assert!(res[0].is_some() && res[1].is_some() && res[2].is_none());
        let s = store.stats();
        assert_eq!(s.get_txns, 1);
        assert_eq!(s.gets, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn get_multi_reference_counts_like_get_multi() {
        let store = Store::new(1 << 20);
        store.set(b"x", b"1", 0, false);
        let batched = Store::new(1 << 20);
        batched.set(b"x", b"1", 0, false);
        store.get_multi_reference(&[b"x", b"z"]);
        batched.get_multi(&[b"x", b"z"]);
        let a = store.stats();
        let b = batched.stats();
        assert_eq!((a.get_txns, a.gets, a.hits, a.misses), (1, 2, 1, 1));
        assert_eq!(a.get_batch_hist, b.get_batch_hist);
    }

    #[test]
    fn get_multi_locks_at_most_shards_touched() {
        // The tentpole invariant: lock acquisitions <= min(M, shards
        // touched), never one per key.
        let store = Store::with_shards(1 << 20, 8);
        let keys: Vec<Vec<u8>> = (0..100u32).map(|i| format!("k{i}").into_bytes()).collect();
        for k in &keys {
            store.set(k, b"v", 0, false);
        }
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let distinct: std::collections::HashSet<usize> =
            refs.iter().map(|k| store.shard_index(k)).collect();
        assert!(distinct.len() > 1, "keys should span several shards");

        store.multi_lock_acquisitions.store(0, Ordering::Relaxed);
        let out = store.get_multi(&refs);
        let locks = store.multi_lock_acquisitions.load(Ordering::Relaxed);
        assert!(out.iter().all(Option::is_some));
        assert_eq!(locks as usize, distinct.len(), "one lock per touched shard");
        assert!(locks as usize <= 8);
        assert!(locks as usize <= refs.len());
    }

    #[test]
    fn set_multi_locks_at_most_shards_touched() {
        // The write-side tentpole invariant: a batched store takes one
        // lock per touched shard, never one per key.
        let store = Store::with_shards(1 << 20, 8);
        let keys: Vec<Vec<u8>> = (0..100u32).map(|i| format!("w{i}").into_bytes()).collect();
        let values: Vec<Vec<u8>> = (0..100u32).map(|i| format!("v{i}").into_bytes()).collect();
        let entries: Vec<SetEntry> = keys
            .iter()
            .zip(&values)
            .enumerate()
            .map(|(i, (k, v))| SetEntry {
                key: k,
                value: v,
                flags: i as u32,
                pinned: false,
                ttl: None,
            })
            .collect();
        let distinct: std::collections::HashSet<usize> =
            keys.iter().map(|k| store.shard_index(k)).collect();
        assert!(distinct.len() > 1, "keys should span several shards");

        let mut scratch = GetScratch::new();
        let mut outcomes = Vec::new();
        store.multi_lock_acquisitions.store(0, Ordering::Relaxed);
        store.set_multi(&mut scratch, &entries, &mut outcomes);
        let locks = store.multi_lock_acquisitions.load(Ordering::Relaxed);
        assert!(outcomes
            .iter()
            .all(|o| matches!(o, SetOutcome::Stored { .. })));
        assert_eq!(locks as usize, distinct.len(), "one lock per touched shard");

        // Everything landed, in entry order, with per-op stats parity.
        for (i, k) in keys.iter().enumerate() {
            let v = store.get(k).expect("batched set lost a key");
            assert_eq!(v.data[..], values[i][..]);
            assert_eq!(v.flags, i as u32);
        }
        assert_eq!(store.stats().sets, 100);

        // delete_multi honours the same invariant.
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let mut deleted = Vec::new();
        store.multi_lock_acquisitions.store(0, Ordering::Relaxed);
        store.delete_multi(&mut scratch, &refs, &mut deleted);
        let locks = store.multi_lock_acquisitions.load(Ordering::Relaxed);
        assert_eq!(locks as usize, distinct.len(), "one lock per touched shard");
        assert!(deleted.iter().all(|&d| d));
        assert_eq!(store.stats().deletes, 100);
        assert_eq!(store.len(), 0);
    }

    #[test]
    fn set_multi_duplicate_keys_last_wins() {
        // Entries apply in batch order within a shard: a duplicate key
        // resolves exactly like a sequential set loop.
        let store = Store::with_shards(1 << 20, 4);
        let mut scratch = GetScratch::new();
        let mut outcomes = Vec::new();
        let entries = [
            SetEntry {
                key: b"dup",
                value: b"first",
                flags: 1,
                pinned: false,
                ttl: None,
            },
            SetEntry {
                key: b"other",
                value: b"x",
                flags: 0,
                pinned: false,
                ttl: None,
            },
            SetEntry {
                key: b"dup",
                value: b"second",
                flags: 2,
                pinned: false,
                ttl: None,
            },
        ];
        store.set_multi(&mut scratch, &entries, &mut outcomes);
        assert_eq!(outcomes.len(), 3);
        let v = store.get(b"dup").unwrap();
        assert_eq!(&v.data[..], b"second");
        assert_eq!(v.flags, 2);
        assert_eq!(store.stats().sets, 3, "every occurrence counts as a set");
    }

    proptest! {
        /// `set_multi` + `delete_multi` leave exactly the store state a
        /// sequential per-key loop leaves, for any key/value mix
        /// (duplicates included) on any shard count.
        #[test]
        fn set_multi_matches_sequential_loop(
            writes in proptest::collection::vec((0u32..30, 0usize..40, any::<bool>()), 0..50),
            shards_log2 in 0u32..5,
        ) {
            let batched = Store::with_shards(1 << 20, 1 << shards_log2);
            let sequential = Store::with_shards(1 << 20, 1 << shards_log2);
            let keys: Vec<Vec<u8>> =
                writes.iter().map(|(n, _, _)| format!("k{n}").into_bytes()).collect();
            let values: Vec<Vec<u8>> =
                writes.iter().map(|(_, vlen, _)| vec![b'x'; *vlen]).collect();
            let entries: Vec<SetEntry> = writes
                .iter()
                .zip(keys.iter().zip(&values))
                .map(|((n, _, pinned), (k, v))| SetEntry {
                    key: k, value: v, flags: *n, pinned: *pinned, ttl: None,
                })
                .collect();
            let mut scratch = GetScratch::new();
            let mut outcomes = Vec::new();
            batched.set_multi(&mut scratch, &entries, &mut outcomes);
            let seq_outcomes: Vec<SetOutcome> = entries
                .iter()
                .map(|e| sequential.set_with_ttl(e.key, e.value, e.flags, e.pinned, e.ttl))
                .collect();
            prop_assert_eq!(&outcomes, &seq_outcomes);

            // Identical state under identical reads.
            let check: Vec<Vec<u8>> = (0..30u32).map(|n| format!("k{n}").into_bytes()).collect();
            let check_refs: Vec<&[u8]> = check.iter().map(Vec::as_slice).collect();
            prop_assert_eq!(
                batched.get_multi(&check_refs),
                sequential.get_multi(&check_refs)
            );

            // Delete half the universe through both paths.
            let victims: Vec<&[u8]> =
                check.iter().step_by(2).map(Vec::as_slice).collect();
            let mut deleted = Vec::new();
            batched.delete_multi(&mut scratch, &victims, &mut deleted);
            let seq_deleted: Vec<bool> =
                victims.iter().map(|k| sequential.delete(k)).collect();
            prop_assert_eq!(&deleted, &seq_deleted);
            prop_assert_eq!(
                batched.get_multi(&check_refs),
                sequential.get_multi(&check_refs)
            );
            let (a, b) = (batched.stats(), sequential.stats());
            prop_assert_eq!(a.sets, b.sets);
            prop_assert_eq!(a.deletes, b.deletes);
            prop_assert_eq!(a.oom_errors, b.oom_errors);
        }
    }

    #[test]
    fn get_multi_spans_every_shard() {
        // A single multi-get whose key list covers all shards comes back
        // complete and in caller order.
        let store = Store::with_shards(1 << 20, 8);
        let keys: Vec<Vec<u8>> = (0..64u32)
            .map(|i| format!("span-{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
        let covered: std::collections::HashSet<usize> =
            refs.iter().map(|k| store.shard_index(k)).collect();
        assert_eq!(covered.len(), 8, "64 keys must cover all 8 shards");
        for (i, k) in keys.iter().enumerate() {
            store.set(k, format!("v{i}").as_bytes(), 0, false);
        }
        let out = store.get_multi(&refs);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(
                &v.as_ref().unwrap().data[..],
                format!("v{i}").as_bytes(),
                "slot {i} out of order"
            );
        }
    }

    #[test]
    fn get_multi_into_reuses_buffers() {
        let store = Store::new(1 << 20);
        store.set(b"a", b"1", 0, false);
        let mut scratch = GetScratch::new();
        let mut out = Vec::new();
        store.get_multi_into(&mut scratch, &[b"a", b"b"], &mut out);
        assert!(out[0].is_some() && out[1].is_none());
        // Second call with a different shape reuses the same buffers.
        store.get_multi_into(&mut scratch, &[b"b"], &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].is_none());
        // Empty batches are fine too.
        store.get_multi_into(&mut scratch, &[], &mut out);
        assert!(out.is_empty());
    }

    proptest! {
        /// The batched multi-get is result-identical to the retained
        /// per-key reference path, for any key mix (hits, misses,
        /// duplicates) on any shard count.
        #[test]
        fn get_multi_matches_reference(
            stored in proptest::collection::vec((0u32..40, 0usize..30), 0..40),
            queried in proptest::collection::vec(0u32..60, 0..50),
            shards_log2 in 0u32..5,
        ) {
            let store = Store::with_shards(1 << 20, 1 << shards_log2);
            for (keyn, vlen) in &stored {
                let key = format!("k{keyn}").into_bytes();
                store.set(&key, &vec![b'x'; *vlen], *keyn, false);
            }
            let keys: Vec<Vec<u8>> =
                queried.iter().map(|n| format!("k{n}").into_bytes()).collect();
            let refs: Vec<&[u8]> = keys.iter().map(Vec::as_slice).collect();
            let batched = store.get_multi(&refs);
            let reference = store.get_multi_reference(&refs);
            prop_assert_eq!(batched, reference);
        }
    }

    #[test]
    fn delete_and_len() {
        let store = Store::new(1 << 20);
        store.set(b"a", b"1", 0, false);
        store.set(b"b", b"2", 0, false);
        assert_eq!(store.len(), 2);
        assert!(store.delete(b"a"));
        assert!(!store.delete(b"a"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().deletes, 1);
    }

    #[test]
    fn eviction_under_pressure_keeps_budget() {
        // Small budget; hammer it with many entries.
        let store = Store::with_shards(8 * 1024, 4);
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            store.set(key.as_bytes(), &[0u8; 10], 0, false);
        }
        assert!(store.mem_used() <= 8 * 1024);
        let s = store.stats();
        assert!(s.evictions > 0, "pressure should evict");
        assert!(s.curr_items < 1000);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let store = Arc::new(Store::new(1 << 22));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let key = format!("t{t}-k{i}");
                        assert!(matches!(
                            store.set(key.as_bytes(), key.as_bytes(), t, false),
                            SetOutcome::Stored { .. }
                        ));
                        let v = store.get(key.as_bytes()).unwrap();
                        assert_eq!(&v.data[..], key.as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 500);
        let s = store.stats();
        assert_eq!(s.sets, 4000);
        assert_eq!(s.hits, 4000);
        assert_eq!(s.misses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        Store::with_shards(1024, 3);
    }

    #[test]
    fn arith_outcomes_are_counted() {
        // Regression: `Store::arith` used to record no stats at all.
        let store = Store::new(1 << 20);
        store.set(b"n", b"10", 0, false);
        store.set(b"txt", b"hello", 0, false);
        assert!(matches!(
            store.arith(b"n", 5, false),
            ArithOutcome::Value(15)
        ));
        assert!(matches!(
            store.arith(b"n", 1, false),
            ArithOutcome::Value(16)
        ));
        assert!(matches!(
            store.arith(b"n", 6, true),
            ArithOutcome::Value(10)
        ));
        assert!(matches!(
            store.arith(b"missing", 1, false),
            ArithOutcome::NotFound
        ));
        assert!(matches!(
            store.arith(b"missing", 1, true),
            ArithOutcome::NotFound
        ));
        assert!(matches!(
            store.arith(b"txt", 1, false),
            ArithOutcome::NonNumeric
        ));
        let s = store.stats();
        assert_eq!(s.incr_hits, 2);
        assert_eq!(s.decr_hits, 1);
        assert_eq!(s.incr_misses, 1);
        assert_eq!(s.decr_misses, 1);
        assert_eq!(s.arith_non_numeric, 1);
        // incr/decr rewrite the value, so they count as mutations too:
        // 2 plain sets + 3 successful ariths.
        assert_eq!(s.sets, 5);
    }

    #[test]
    fn store_expiry_on_virtual_time() {
        use crate::clock::TestClock;
        use std::time::Duration;

        let clock = TestClock::new();
        let store = Store::with_clock(1 << 20, 4, clock.clone().into());
        store.set_with_ttl(b"a", b"1", 0, false, Some(Duration::from_secs(5)));
        store.set_with_ttl(b"b", b"2", 0, true, Some(Duration::from_secs(5)));
        store.set(b"c", b"3", 0, false);
        assert_eq!(store.len(), 3);
        clock.advance(Duration::from_secs(6));
        // Expired entries linger until touched or swept…
        assert!(store.get(b"a").is_none());
        // …and a sweep reclaims the rest (the pinned one included, which
        // no lookup path would ever remove for us here).
        assert_eq!(store.sweep_expired(), 1);
        assert_eq!(store.len(), 1);
        assert!(store.get(b"c").is_some());
    }

    #[test]
    fn shard_counters_readable_without_data_lock() {
        let store = Store::with_shards(1 << 20, 1);
        store.set(b"k", b"v", 0, false);
        store.get(b"k");
        store.get(b"missing");
        store.get_multi(&[b"k", b"missing"]);
        let c = store.shard_counters(0);
        assert_eq!(c.writes, 1);
        assert_eq!(c.gets, 4);
        assert_eq!(c.hits, 2);
    }

    /// Drives a shard through the full lifecycle: cold → promoted (hot,
    /// replica reads + combined writes) → demoted back to the mutex path,
    /// with the data surviving each transition.
    #[test]
    fn hot_promotion_and_demotion_cycle() {
        let cfg = HotConfig {
            window: 64,
            promote_accesses: 32,
            demote_accesses: 16,
            replicas: 2,
        };
        let store = Store::with_config(1 << 20, 2, Clock::real(), cfg);

        // Find one key per shard so we can steer the access skew.
        let mut k0 = None;
        let mut k1 = None;
        for i in 0u32..64 {
            let key = format!("key-{i}").into_bytes();
            match store.shard_index(&key) {
                0 if k0.is_none() => k0 = Some(key),
                1 if k1.is_none() => k1 = Some(key),
                _ => {}
            }
        }
        let (k0, k1) = (k0.unwrap(), k1.unwrap());

        store.set(&k0, b"v0", 0, false);
        assert!(!store.shard_is_hot(0));

        // Skewed load: shard 0 dominates the window → promoted.
        for _ in 0..200 {
            store.get(&k0);
        }
        assert!(store.shard_is_hot(0));
        assert!(store.stats().hot_promotions >= 1);

        // Pre-promotion data is visible through the replicas, and writes
        // funnel through the combiner while staying readable.
        assert_eq!(&store.get(&k0).unwrap().data[..], b"v0");
        store.set(&k0, b"v1", 0, false);
        assert_eq!(&store.get(&k0).unwrap().data[..], b"v1");
        let s = store.stats();
        assert!(s.combiner_batches >= 1);
        assert!(s.log_appends >= 1);
        assert!(s.replica_reads >= 1);

        // Shift the skew to shard 1: shard 0 falls under the demotion
        // floor at the next window roll and reverts to the mutex path.
        store.set(&k1, b"w", 0, false);
        for _ in 0..300 {
            store.get(&k1);
        }
        assert!(!store.shard_is_hot(0));
        assert!(store.stats().hot_demotions >= 1);

        // The primary absorbed every combined write before demotion.
        assert_eq!(&store.get(&k0).unwrap().data[..], b"v1");
    }

    /// `HotConfig::disabled` must never promote, no matter the skew.
    #[test]
    fn disabled_hot_config_never_promotes() {
        let store = Store::with_config(1 << 20, 1, Clock::real(), HotConfig::disabled());
        store.set(b"k", b"v", 0, false);
        for _ in 0..500 {
            store.get(b"k");
        }
        assert!(!store.shard_is_hot(0));
        assert_eq!(store.stats().hot_promotions, 0);
    }

    /// Expired entries in a hot shard are skipped by `sweep_expired`
    /// (sweeping behind the combiner would fork primary and replicas) but
    /// still expire from the reader's point of view.
    #[test]
    fn sweep_skips_hot_shards_but_reads_still_expire() {
        use crate::clock::TestClock;
        use std::time::Duration;

        let clock = TestClock::new();
        let cfg = HotConfig {
            window: 8,
            promote_accesses: 4,
            demote_accesses: 1,
            replicas: 1,
        };
        let store = Store::with_config(1 << 20, 1, clock.clone().into(), cfg);
        store.set_with_ttl(b"t", b"1", 0, false, Some(Duration::from_secs(5)));
        for _ in 0..32 {
            store.get(b"t");
        }
        assert!(store.shard_is_hot(0));
        clock.advance(Duration::from_secs(6));
        assert_eq!(store.sweep_expired(), 0);
        assert!(store.get(b"t").is_none());
    }
}
