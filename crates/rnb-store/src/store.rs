//! The sharded concurrent store.

use crate::clock::Clock;
use crate::shard::{ArithOutcome, CasOutcome, SetOutcome, Shard, Value};
use crate::stats::{StatsSnapshot, StoreStats};
use parking_lot::Mutex;
use rnb_hash::xxhash::xxh64;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Default shard count (power of two; one mutex each keeps contention low
/// at the connection counts the micro-benchmarks use).
pub const DEFAULT_SHARDS: usize = 16;

/// A concurrent, memory-bounded key-value store.
///
/// ```
/// use rnb_store::Store;
/// let store = Store::new(1 << 20); // 1 MiB budget
/// store.set(b"user:42", b"hello", 0, false);
/// let hit = store.get(b"user:42").unwrap();
/// assert_eq!(&hit.data[..], b"hello");
/// // Multi-get counts as ONE transaction (the paper's cost unit):
/// store.get_multi(&[b"user:42", b"user:43"]);
/// assert_eq!(store.stats().get_txns, 2);
/// ```
pub struct Store {
    shards: Vec<Mutex<Shard>>,
    mask: u64,
    stats: StoreStats,
}

impl Store {
    /// A store with `mem_limit` bytes total across [`DEFAULT_SHARDS`]
    /// shards.
    pub fn new(mem_limit: usize) -> Self {
        Self::with_shards(mem_limit, DEFAULT_SHARDS)
    }

    /// A store with an explicit shard count (must be a power of two).
    pub fn with_shards(mem_limit: usize, shards: usize) -> Self {
        Self::with_clock(mem_limit, shards, Clock::real())
    }

    /// A store whose TTL expiry reads `clock` — the virtual-time
    /// constructor. Hand every shard a clone of a
    /// [`TestClock`](crate::TestClock)-backed clock and `advance()` the
    /// handle you kept to drive expiry deterministically, even across the
    /// server's connection threads.
    pub fn with_clock(mem_limit: usize, shards: usize, clock: Clock) -> Self {
        assert!(
            shards.is_power_of_two(),
            "shard count must be a power of two"
        );
        let per_shard = mem_limit / shards;
        Store {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::with_clock(per_shard, clock.clone())))
                .collect(),
            mask: (shards - 1) as u64,
            stats: StoreStats::default(),
        }
    }

    fn shard_of(&self, key: &[u8]) -> &Mutex<Shard> {
        // Seed chosen once; must differ from placement seeds so shard
        // choice does not correlate with RnB server choice in tests.
        let h = xxh64(key, 0x5348_4152_4421);
        &self.shards[(h & self.mask) as usize]
    }

    /// Fetch one key.
    pub fn get(&self, key: &[u8]) -> Option<Value> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        self.stats.get_txns.fetch_add(1, Ordering::Relaxed);
        let got = self.shard_of(key).lock().get(key);
        match got {
            Some(v) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Fetch many keys in one transaction (one `get_transactions` tick,
    /// one lookup per key).
    pub fn get_multi(&self, keys: &[&[u8]]) -> Vec<Option<Value>> {
        self.stats.get_txns.fetch_add(1, Ordering::Relaxed);
        self.stats
            .gets
            .fetch_add(keys.len() as u64, Ordering::Relaxed);
        let mut hits = 0u64;
        let out: Vec<Option<Value>> = keys
            .iter()
            .map(|key| {
                let v = self.shard_of(key).lock().get(key);
                if v.is_some() {
                    hits += 1;
                }
                v
            })
            .collect();
        self.stats.hits.fetch_add(hits, Ordering::Relaxed);
        self.stats
            .misses
            .fetch_add(keys.len() as u64 - hits, Ordering::Relaxed);
        out
    }

    /// Store a value. `pinned` entries are never evicted.
    pub fn set(&self, key: &[u8], value: &[u8], flags: u32, pinned: bool) -> SetOutcome {
        self.set_with_ttl(key, value, flags, pinned, None)
    }

    /// [`Store::set`] with an optional expiry.
    pub fn set_with_ttl(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        pinned: bool,
        ttl: Option<Duration>,
    ) -> SetOutcome {
        let outcome = self
            .shard_of(key)
            .lock()
            .set_full(key, value, flags, pinned, ttl);
        self.count_set(&outcome);
        outcome
    }

    fn count_set(&self, outcome: &SetOutcome) {
        match *outcome {
            SetOutcome::Stored { evicted } => {
                self.stats.sets.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .evictions
                    .fetch_add(evicted as u64, Ordering::Relaxed);
            }
            SetOutcome::OutOfMemory => {
                self.stats.oom_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// `add`: store only if absent; `None` if the key already exists.
    pub fn add(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        let outcome = self.shard_of(key).lock().add(key, value, flags, ttl);
        if let Some(o) = &outcome {
            self.count_set(o);
        }
        outcome
    }

    /// `replace`: store only if present; `None` if the key is absent.
    pub fn replace(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        let outcome = self.shard_of(key).lock().replace(key, value, flags, ttl);
        if let Some(o) = &outcome {
            self.count_set(o);
        }
        outcome
    }

    /// Compare-and-swap with the token from a previous `get`.
    pub fn cas(
        &self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        token: u64,
        ttl: Option<Duration>,
    ) -> CasOutcome {
        let outcome = self.shard_of(key).lock().cas(key, value, flags, token, ttl);
        match outcome {
            CasOutcome::Stored => {
                self.stats.cas_ok.fetch_add(1, Ordering::Relaxed);
                self.stats.sets.fetch_add(1, Ordering::Relaxed);
            }
            CasOutcome::Exists => {
                self.stats.cas_conflicts.fetch_add(1, Ordering::Relaxed);
            }
            CasOutcome::NotFound => {}
            CasOutcome::OutOfMemory => {
                self.stats.oom_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// `incr` (`negative = false`) / `decr` (`negative = true`).
    pub fn arith(&self, key: &[u8], delta: u64, negative: bool) -> ArithOutcome {
        let outcome = self.shard_of(key).lock().arith(key, delta, negative);
        match outcome {
            ArithOutcome::Value(_) => {
                let hits = if negative {
                    &self.stats.decr_hits
                } else {
                    &self.stats.incr_hits
                };
                hits.fetch_add(1, Ordering::Relaxed);
                // incr/decr rewrites the value: a mutation, like set/cas.
                self.stats.sets.fetch_add(1, Ordering::Relaxed);
            }
            ArithOutcome::NotFound => {
                let misses = if negative {
                    &self.stats.decr_misses
                } else {
                    &self.stats.incr_misses
                };
                misses.fetch_add(1, Ordering::Relaxed);
            }
            ArithOutcome::NonNumeric => {
                self.stats.arith_non_numeric.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    /// Eagerly reclaim expired entries in every shard (pinned ones
    /// included); returns how many were removed. `len()`/`mem_used()`
    /// reflect the sweep immediately.
    pub fn sweep_expired(&self) -> usize {
        self.shards.iter().map(|s| s.lock().sweep_expired()).sum()
    }

    /// Delete a key; true if it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        let deleted = self.shard_of(key).lock().delete(key);
        if deleted {
            self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        }
        deleted
    }

    /// Entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes accounted across all shards.
    pub fn mem_used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().mem_used()).sum()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats
            .snapshot(self.len() as u64, self.mem_used() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip_and_stats() {
        let store = Store::new(1 << 20);
        assert!(matches!(
            store.set(b"a", b"1", 5, false),
            SetOutcome::Stored { .. }
        ));
        let v = store.get(b"a").unwrap();
        assert_eq!(&v.data[..], b"1");
        assert_eq!(v.flags, 5);
        assert!(store.get(b"b").is_none());
        let s = store.stats();
        assert_eq!(s.sets, 1);
        assert_eq!(s.gets, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.curr_items, 1);
        assert!(s.bytes > 0);
    }

    #[test]
    fn get_multi_counts_one_transaction() {
        let store = Store::new(1 << 20);
        store.set(b"x", b"1", 0, false);
        store.set(b"y", b"2", 0, false);
        let res = store.get_multi(&[b"x", b"y", b"z"]);
        assert_eq!(res.len(), 3);
        assert!(res[0].is_some() && res[1].is_some() && res[2].is_none());
        let s = store.stats();
        assert_eq!(s.get_txns, 1);
        assert_eq!(s.gets, 3);
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn delete_and_len() {
        let store = Store::new(1 << 20);
        store.set(b"a", b"1", 0, false);
        store.set(b"b", b"2", 0, false);
        assert_eq!(store.len(), 2);
        assert!(store.delete(b"a"));
        assert!(!store.delete(b"a"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.stats().deletes, 1);
    }

    #[test]
    fn eviction_under_pressure_keeps_budget() {
        // Small budget; hammer it with many entries.
        let store = Store::with_shards(8 * 1024, 4);
        for i in 0..1000u32 {
            let key = format!("key-{i}");
            store.set(key.as_bytes(), &[0u8; 10], 0, false);
        }
        assert!(store.mem_used() <= 8 * 1024);
        let s = store.stats();
        assert!(s.evictions > 0, "pressure should evict");
        assert!(s.curr_items < 1000);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let store = Arc::new(Store::new(1 << 22));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        let key = format!("t{t}-k{i}");
                        assert!(matches!(
                            store.set(key.as_bytes(), key.as_bytes(), t, false),
                            SetOutcome::Stored { .. }
                        ));
                        let v = store.get(key.as_bytes()).unwrap();
                        assert_eq!(&v.data[..], key.as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.len(), 8 * 500);
        let s = store.stats();
        assert_eq!(s.sets, 4000);
        assert_eq!(s.hits, 4000);
        assert_eq!(s.misses, 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_shards_rejected() {
        Store::with_shards(1024, 3);
    }

    #[test]
    fn arith_outcomes_are_counted() {
        // Regression: `Store::arith` used to record no stats at all.
        let store = Store::new(1 << 20);
        store.set(b"n", b"10", 0, false);
        store.set(b"txt", b"hello", 0, false);
        assert!(matches!(
            store.arith(b"n", 5, false),
            ArithOutcome::Value(15)
        ));
        assert!(matches!(
            store.arith(b"n", 1, false),
            ArithOutcome::Value(16)
        ));
        assert!(matches!(
            store.arith(b"n", 6, true),
            ArithOutcome::Value(10)
        ));
        assert!(matches!(
            store.arith(b"missing", 1, false),
            ArithOutcome::NotFound
        ));
        assert!(matches!(
            store.arith(b"missing", 1, true),
            ArithOutcome::NotFound
        ));
        assert!(matches!(
            store.arith(b"txt", 1, false),
            ArithOutcome::NonNumeric
        ));
        let s = store.stats();
        assert_eq!(s.incr_hits, 2);
        assert_eq!(s.decr_hits, 1);
        assert_eq!(s.incr_misses, 1);
        assert_eq!(s.decr_misses, 1);
        assert_eq!(s.arith_non_numeric, 1);
        // incr/decr rewrite the value, so they count as mutations too:
        // 2 plain sets + 3 successful ariths.
        assert_eq!(s.sets, 5);
    }

    #[test]
    fn store_expiry_on_virtual_time() {
        use crate::clock::TestClock;
        use std::time::Duration;

        let clock = TestClock::new();
        let store = Store::with_clock(1 << 20, 4, clock.clone().into());
        store.set_with_ttl(b"a", b"1", 0, false, Some(Duration::from_secs(5)));
        store.set_with_ttl(b"b", b"2", 0, true, Some(Duration::from_secs(5)));
        store.set(b"c", b"3", 0, false);
        assert_eq!(store.len(), 3);
        clock.advance(Duration::from_secs(6));
        // Expired entries linger until touched or swept…
        assert!(store.get(b"a").is_none());
        // …and a sweep reclaims the rest (the pinned one included, which
        // no lookup path would ever remove for us here).
        assert_eq!(store.sweep_expired(), 1);
        assert_eq!(store.len(), 1);
        assert!(store.get(b"c").is_some());
    }
}
