//! The memaslap analog: a multi-threaded load generator measuring items
//! fetched per second versus items per transaction (Appendix, Figs 13–14).
//!
//! Paper configuration reproduced: "extremely small items, 10 bytes each",
//! "one set transaction of a single item for every 1000 items fetched by
//! get transactions", TCP with per-connection clients.

use crate::client::StoreClient;
use crate::clock::{duration_to_ticks, Clock};
use std::net::SocketAddr;
use std::time::Duration;

/// Load-run parameters.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Concurrent client connections (the paper's Fig 13 uses one client
    /// machine; Fig 14 uses two).
    pub clients: usize,
    /// Items per get transaction.
    pub txn_size: usize,
    /// Keys pre-populated and drawn from.
    pub keyspace: usize,
    /// Value size in bytes (paper: 10).
    pub value_len: usize,
    /// Issue one single-item `set` per this many `get` items (paper:
    /// 1000). 0 disables sets.
    pub set_every_items: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
}

impl LoadSpec {
    /// The paper's memaslap settings at a given transaction size.
    pub fn paper_style(clients: usize, txn_size: usize, duration: Duration) -> Self {
        LoadSpec {
            clients,
            txn_size,
            keyspace: 10_000,
            value_len: 10,
            set_every_items: 1000,
            duration,
        }
    }
}

/// Aggregated measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadReport {
    /// Get transactions completed (all clients).
    pub get_txns: u64,
    /// Items fetched.
    pub items: u64,
    /// Set transactions issued.
    pub sets: u64,
    /// Measured wall-clock seconds.
    pub elapsed_secs: f64,
}

impl LoadReport {
    /// Items fetched per second — the Fig 13/14 y-axis.
    pub fn items_per_sec(&self) -> f64 {
        self.items as f64 / self.elapsed_secs
    }

    /// Get transactions per second.
    pub fn txns_per_sec(&self) -> f64 {
        self.get_txns as f64 / self.elapsed_secs
    }
}

/// Key for index `i` (shared by population and load phases).
pub fn key_of(i: usize) -> Vec<u8> {
    format!("memaslap-{i:08}").into_bytes()
}

/// Pre-populate `keyspace` keys with `value_len`-byte values.
pub fn populate(addr: SocketAddr, keyspace: usize, value_len: usize) -> std::io::Result<()> {
    let mut client = StoreClient::connect(addr)?;
    let value = vec![b'v'; value_len];
    for i in 0..keyspace {
        client.set(&key_of(i), &value, 0)?;
    }
    Ok(())
}

/// Run the load against `addr` per `spec`; the store must already be
/// populated (see [`populate`]). Returns the aggregated report.
pub fn run_load(addr: SocketAddr, spec: &LoadSpec) -> std::io::Result<LoadReport> {
    run_load_with_clock(addr, spec, Clock::real())
}

/// [`run_load`] against an injected clock: `spec.duration` elapses on the
/// clock's timeline, so a test can drive a whole measurement run from a
/// [`TestClock`](crate::TestClock) without waiting in real time.
pub fn run_load_with_clock(
    addr: SocketAddr,
    spec: &LoadSpec,
    clock: Clock,
) -> std::io::Result<LoadReport> {
    assert!(spec.clients >= 1, "need at least one client");
    assert!(spec.txn_size >= 1, "transactions carry at least one item");
    assert!(
        spec.keyspace >= spec.txn_size,
        "keyspace smaller than one transaction"
    );

    let start = clock.now();
    let deadline = start.saturating_add(duration_to_ticks(spec.duration));
    let mut handles = Vec::with_capacity(spec.clients);
    for c in 0..spec.clients {
        let spec = *spec;
        let clock = clock.clone();
        handles.push(std::thread::spawn(
            move || -> std::io::Result<(u64, u64, u64)> {
                let mut client = StoreClient::connect(addr)?;
                let value = vec![b'v'; spec.value_len];
                // Cheap deterministic per-client LCG; measurement noise is
                // dominated by syscalls, not key choice.
                let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(c as u64 + 1) | 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                let (mut txns, mut items, mut sets) = (0u64, 0u64, 0u64);
                let mut items_since_set = 0usize;
                let mut keys: Vec<Vec<u8>> = Vec::with_capacity(spec.txn_size);
                while clock.now() < deadline {
                    keys.clear();
                    let base = next() as usize % spec.keyspace;
                    for j in 0..spec.txn_size {
                        keys.push(key_of((base + j) % spec.keyspace));
                    }
                    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                    let got = client.get_multi(&refs)?;
                    txns += 1;
                    items += got.iter().filter(|v| v.is_some()).count() as u64;
                    items_since_set += spec.txn_size;
                    if spec.set_every_items > 0 && items_since_set >= spec.set_every_items {
                        items_since_set = 0;
                        client.set(&key_of(next() as usize % spec.keyspace), &value, 0)?;
                        sets += 1;
                    }
                }
                Ok((txns, items, sets))
            },
        ));
    }

    let mut report = LoadReport {
        get_txns: 0,
        items: 0,
        sets: 0,
        elapsed_secs: 0.0,
    };
    for h in handles {
        let (txns, items, sets) = h
            .join()
            .map_err(|_| std::io::Error::other("load thread panicked"))??;
        report.get_txns += txns;
        report.items += items;
        report.sets += sets;
    }
    report.elapsed_secs = (clock.now().saturating_sub(start)) as f64 / 1e9;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::StoreServer;
    use crate::store::Store;
    use std::sync::Arc;

    #[test]
    fn load_run_fetches_everything_it_asks_for() {
        let server = StoreServer::start(Arc::new(Store::new(1 << 24))).unwrap();
        populate(server.addr(), 500, 10).unwrap();
        let spec = LoadSpec {
            clients: 2,
            txn_size: 10,
            keyspace: 500,
            value_len: 10,
            set_every_items: 100,
            duration: Duration::from_millis(200),
        };
        let report = run_load(server.addr(), &spec).unwrap();
        assert!(report.get_txns > 0, "no transactions completed");
        // Fully populated keyspace → 100% hits → items = txns × size.
        assert_eq!(report.items, report.get_txns * 10);
        assert!(report.sets > 0);
        assert!(report.items_per_sec() > 0.0);
        assert!(report.txns_per_sec() > 0.0);
    }

    #[test]
    fn bigger_transactions_fetch_more_items_per_sec() {
        // The core Fig 13 observation, at miniature scale. Loopback and
        // CI noise allow rare inversions, so compare 1 vs 8 items with a
        // generous margin.
        let server = StoreServer::start(Arc::new(Store::new(1 << 24))).unwrap();
        populate(server.addr(), 2000, 10).unwrap();
        let run = |txn_size| {
            let spec = LoadSpec {
                clients: 1,
                txn_size,
                keyspace: 2000,
                value_len: 10,
                set_every_items: 0,
                duration: Duration::from_millis(300),
            };
            run_load(server.addr(), &spec).unwrap().items_per_sec()
        };
        let small = run(1);
        let big = run(8);
        assert!(
            big > 2.0 * small,
            "8-item transactions should fetch far more items/s: {big} vs {small}"
        );
    }

    #[test]
    fn load_run_on_virtual_time_terminates_without_waiting() {
        use crate::clock::TestClock;
        use std::sync::atomic::{AtomicBool, Ordering};

        // A "one hour" measurement window completes in a blink: the
        // driver thread spin-advances the shared virtual clock while the
        // load runs, so no thread ever really sleeps or waits an hour.
        let server = StoreServer::start(Arc::new(Store::new(1 << 24))).unwrap();
        populate(server.addr(), 100, 10).unwrap();
        let clock = TestClock::new();
        let done = Arc::new(AtomicBool::new(false));
        let driver = {
            let clock = clock.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    clock.advance(Duration::from_secs(1));
                }
            })
        };
        let spec = LoadSpec {
            clients: 2,
            txn_size: 5,
            keyspace: 100,
            value_len: 10,
            set_every_items: 0,
            duration: Duration::from_secs(3600),
        };
        let report = run_load_with_clock(server.addr(), &spec, clock.clone().into()).unwrap();
        done.store(true, Ordering::SeqCst);
        driver.join().unwrap();
        assert!(report.elapsed_secs >= 3600.0, "{}", report.elapsed_secs);
        // The clients connected and did real work before the window closed.
        assert_eq!(report.items, report.get_txns * 5);
    }

    #[test]
    fn paper_style_spec() {
        let spec = LoadSpec::paper_style(2, 64, Duration::from_secs(1));
        assert_eq!(spec.clients, 2);
        assert_eq!(spec.txn_size, 64);
        assert_eq!(spec.value_len, 10);
        assert_eq!(spec.set_every_items, 1000);
    }

    #[test]
    #[should_panic(expected = "keyspace smaller")]
    fn undersized_keyspace_rejected() {
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let spec = LoadSpec {
            clients: 1,
            txn_size: 10,
            keyspace: 5,
            value_len: 10,
            set_every_items: 0,
            duration: Duration::from_millis(1),
        };
        let _ = run_load(addr, &spec);
    }
}
