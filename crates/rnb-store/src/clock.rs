//! Injected time source for the store.
//!
//! TTL expiry is observable behaviour (an expired entry answers like a
//! miss), so it must be testable without real waiting and reproducible
//! under the deterministic discipline the simulator (`rnb-sim`) already
//! enforces for randomness. The rule, recorded in INVARIANTS.md: **expiry
//! is a pure function of injected time** — given the same sequence of
//! operations and clock readings, a shard answers identically, with no
//! hidden wall-clock reads.
//!
//! The abstraction is deliberately minimal (two variants, one method):
//!
//! * [`Clock::real`] anchors an [`Instant`] once and reports nanoseconds
//!   elapsed since that anchor — production behaviour, one monotonic
//!   clock read per call, exactly what `Shard` did before injection.
//! * A [`TestClock`] is a shared atomic nanosecond counter that only
//!   moves when a test calls [`TestClock::advance`]; cloning the handle
//!   (or the [`Clock`] wrapping it) shares the timeline, so a test can
//!   hold one handle while the store (and its server threads) read the
//!   other.
//!
//! This module is the **one sanctioned wall-clock read** in `rnb-store`:
//! xtask lint rule R2 allowlists `clock.rs` alone, so any
//! `Instant::now()` reintroduced in `shard.rs` (or anywhere else on the
//! serving path) fails the lint.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A point on a [`Clock`]'s timeline: nanoseconds since the clock's
/// epoch (construction for a real clock, zero for a test clock).
///
/// Ticks are plain integers so expiry deadlines can be stored, compared
/// and replayed without any hidden clock access.
pub type Tick = u64;

/// `Duration` → ticks, saturating at the end of the timeline (a `u64` of
/// nanoseconds spans ~584 years, far past any real deadline).
pub fn duration_to_ticks(d: Duration) -> Tick {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The store's time source. Cloning shares the underlying timeline.
#[derive(Debug, Clone)]
pub enum Clock {
    /// Monotonic wall-clock time (production).
    Real(RealClock),
    /// Manually advanced virtual time (deterministic tests).
    Test(TestClock),
}

impl Clock {
    /// A wall-clock-backed clock anchored at the moment of the call.
    pub fn real() -> Self {
        Clock::Real(RealClock::new())
    }

    /// The current tick on this clock's timeline.
    pub fn now(&self) -> Tick {
        match self {
            Clock::Real(c) => c.now(),
            Clock::Test(c) => c.now(),
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

impl From<TestClock> for Clock {
    fn from(test: TestClock) -> Self {
        Clock::Test(test)
    }
}

/// Monotonic wall-clock time, reported as nanoseconds since the anchor
/// captured at construction.
#[derive(Debug, Clone, Copy)]
pub struct RealClock {
    epoch: Instant,
}

impl RealClock {
    /// Anchor a new timeline at the present instant.
    pub fn new() -> Self {
        RealClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since construction.
    pub fn now(&self) -> Tick {
        duration_to_ticks(self.epoch.elapsed())
    }
}

impl Default for RealClock {
    fn default() -> Self {
        RealClock::new()
    }
}

/// Virtual time under manual control: starts at tick 0 and moves only
/// when [`advance`](TestClock::advance) is called. Clones share the
/// timeline (it is an `Arc` around one atomic counter), so the handle a
/// test keeps advances the clock inside a `Store` on other threads.
#[derive(Debug, Clone, Default)]
pub struct TestClock {
    nanos: Arc<AtomicU64>,
}

impl TestClock {
    /// A fresh timeline at tick 0.
    pub fn new() -> Self {
        TestClock::default()
    }

    /// The current virtual tick.
    pub fn now(&self) -> Tick {
        self.nanos.load(Ordering::SeqCst)
    }

    /// Move virtual time forward by `d`. Saturates at the end of the
    /// timeline rather than wrapping back past live deadlines.
    pub fn advance(&self, d: Duration) {
        let step = duration_to_ticks(d);
        let mut current = self.nanos.load(Ordering::SeqCst);
        loop {
            let next = current.saturating_add(step);
            match self.nanos.compare_exchange_weak(
                current,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_clock_starts_at_zero_and_advances_exactly() {
        let clock = TestClock::new();
        assert_eq!(clock.now(), 0);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), 5_000_000);
        clock.advance(Duration::from_nanos(1));
        assert_eq!(clock.now(), 5_000_001);
    }

    #[test]
    fn test_clock_clones_share_the_timeline() {
        let a = TestClock::new();
        let b = a.clone();
        let wrapped = Clock::from(a.clone());
        b.advance(Duration::from_secs(1));
        assert_eq!(a.now(), 1_000_000_000);
        assert_eq!(wrapped.now(), 1_000_000_000);
    }

    #[test]
    fn test_clock_advance_saturates() {
        let clock = TestClock::new();
        clock.advance(Duration::from_nanos(u64::MAX));
        clock.advance(Duration::from_secs(1));
        assert_eq!(clock.now(), u64::MAX, "must saturate, not wrap");
    }

    #[test]
    fn real_clock_is_monotonic_and_is_the_default() {
        let clock = Clock::default();
        assert!(matches!(clock, Clock::Real(_)));
        let t1 = clock.now();
        let t2 = clock.now();
        assert!(t2 >= t1);
    }

    #[test]
    fn duration_conversion_saturates() {
        assert_eq!(duration_to_ticks(Duration::from_secs(1)), 1_000_000_000);
        assert_eq!(duration_to_ticks(Duration::MAX), u64::MAX);
    }
}
