//! Std-only readiness poller for the serving path.
//!
//! The platform has no `epoll`/`kqueue` binding we may use (the
//! workspace forbids `unsafe` and vendors no FFI), so "readiness" is
//! level-triggered the portable way: every connection is kept in
//! nonblocking mode while idle, and a **sweep** probe-reads each one. A
//! probe that returns data moves the connection to the worker pool; a
//! probe that returns EOF (or a hard error) retires it; `WouldBlock`
//! means still idle. Between empty sweeps the poll thread parks with an
//! escalating timeout ([`Poller::idle_park`]), so an idle server costs a
//! few wakeups per second rather than a spinning core, while a busy one
//! is swept back-to-back.
//!
//! Ownership is the concurrency story: a [`Conn`] belongs to exactly one
//! thread at a time — the poll thread while idle, a worker while being
//! served — and moves between them over channels. No lock is ever held
//! around socket I/O.

use std::io::{self, Read};
use std::net::TcpStream;
use std::time::Duration;

/// Bytes a single probe read may pull from one connection per sweep.
/// Larger requests are completed by the worker after dispatch, so this
/// only needs to cover "did anything arrive" plus a typical request.
const PROBE_BUF: usize = 16 * 1024;

/// Bytes per worker-mode read. Sized for pipelined request bursts.
const WORKER_READ_BUF: usize = 64 * 1024;

/// First park interval after an empty sweep.
const PARK_BASE_MICROS: u64 = 100;

/// Park ceiling: bounds both the latency for the first byte on a
/// long-idle connection and the sweep rate of an all-idle server.
const PARK_MAX_MICROS: u64 = 25_000;

/// One connection's state: the nonblocking stream plus the bytes read
/// ahead of the next complete request. Owned by the poll thread while
/// idle and by a single worker while active; never shared.
#[derive(Debug)]
pub struct Conn {
    id: u64,
    stream: TcpStream,
    input: Vec<u8>,
}

/// Result of one probe read on an idle connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// No bytes waiting; stay idle.
    Idle,
    /// This many bytes arrived; dispatch to a worker.
    Ready(usize),
    /// Peer closed (or the socket failed); retire the connection.
    Closed,
}

impl Conn {
    /// Wrap a freshly accepted stream: nodelay (the serving path answers
    /// small requests) and nonblocking (poll-mode is the initial state).
    pub fn new(id: u64, stream: TcpStream) -> io::Result<Conn> {
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(Conn {
            id,
            stream,
            input: Vec::new(),
        })
    }

    /// Registry id assigned at accept time.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The underlying stream (workers write responses through it).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Bytes read ahead of the next complete request.
    pub fn input(&self) -> &[u8] {
        &self.input
    }

    /// Discard the first `n` buffered bytes (a parsed request).
    pub fn consume(&mut self, n: usize) {
        self.input.drain(..n);
    }

    /// Switch to blocking mode for a worker checkout. `linger` bounds
    /// how long a worker read waits for the next request before the
    /// connection is handed back to the poller, and `write_stall` bounds
    /// a write to a client that stopped reading (so a stalled peer
    /// cannot wedge a worker, and shutdown stays bounded).
    pub fn enter_worker_mode(&self, linger: Duration, write_stall: Duration) -> io::Result<()> {
        self.stream.set_nonblocking(false)?;
        self.stream.set_read_timeout(Some(linger))?;
        self.stream.set_write_timeout(Some(write_stall))
    }

    /// Switch back to nonblocking mode before returning to the poller.
    pub fn enter_poller_mode(&self) -> io::Result<()> {
        self.stream.set_nonblocking(true)
    }

    /// Worker-mode read: append up to one buffer of bytes to the input.
    /// Returns `Ok(0)` on EOF; `WouldBlock`/`TimedOut` after `linger`
    /// with no traffic (the signal to hand the connection back).
    pub fn read_more(&mut self, staging: &mut Vec<u8>) -> io::Result<usize> {
        if staging.len() < WORKER_READ_BUF {
            staging.resize(WORKER_READ_BUF, 0);
        }
        let n = self.stream.read(staging)?;
        self.input.extend_from_slice(&staging[..n]);
        Ok(n)
    }

    /// Nonblocking probe read used by the sweep.
    fn probe(&mut self, staging: &mut [u8]) -> Probe {
        match self.stream.read(staging) {
            Ok(0) => Probe::Closed,
            Ok(n) => {
                self.input.extend_from_slice(&staging[..n]);
                Probe::Ready(n)
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Probe::Idle,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Probe::Idle,
            Err(_) => Probe::Closed,
        }
    }
}

/// The idle-connection set, owned by the poll thread. `sweep` is the
/// whole readiness mechanism; everything else is bookkeeping.
#[derive(Debug)]
pub struct Poller {
    conns: Vec<Conn>,
    staging: Vec<u8>,
    empty_sweeps: u32,
}

impl Default for Poller {
    fn default() -> Self {
        Poller::new()
    }
}

impl Poller {
    /// An empty poller.
    pub fn new() -> Poller {
        Poller {
            conns: Vec::new(),
            staging: vec![0u8; PROBE_BUF],
            empty_sweeps: 0,
        }
    }

    /// Take ownership of a connection (new, or handed back by a worker).
    pub fn register(&mut self, conn: Conn) {
        self.conns.push(conn);
        self.empty_sweeps = 0;
    }

    /// Idle connections currently owned.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// True when no connections are registered.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// Probe every idle connection once. Connections with waiting bytes
    /// move into `ready` (for worker dispatch); closed ones are dropped
    /// and their ids pushed into `closed`. Returns the total bytes the
    /// probes read (for wire accounting).
    pub fn sweep(&mut self, ready: &mut Vec<Conn>, closed: &mut Vec<u64>) -> u64 {
        let before = ready.len() + closed.len();
        let mut bytes: u64 = 0;
        let mut i = 0;
        while i < self.conns.len() {
            match self.conns[i].probe(&mut self.staging) {
                Probe::Idle => i += 1,
                Probe::Ready(n) => {
                    bytes += n as u64;
                    ready.push(self.conns.swap_remove(i));
                }
                Probe::Closed => {
                    let conn = self.conns.swap_remove(i);
                    closed.push(conn.id);
                }
            }
        }
        if ready.len() + closed.len() == before {
            self.empty_sweeps = self.empty_sweeps.saturating_add(1);
        } else {
            self.empty_sweeps = 0;
        }
        bytes
    }

    /// How long to park after a sweep that found nothing: escalates from
    /// [`PARK_BASE_MICROS`] to [`PARK_MAX_MICROS`] over consecutive
    /// empty sweeps. Derived from sweep counts, not wall-clock reads, so
    /// the poll loop stays deterministic per the repo's time discipline.
    pub fn idle_park(&self) -> Duration {
        let micros = PARK_BASE_MICROS << self.empty_sweeps.min(8);
        Duration::from_micros(micros.min(PARK_MAX_MICROS))
    }

    /// Reset the park escalation (external activity: a new connection or
    /// a returned one).
    pub fn note_activity(&mut self) {
        self.empty_sweeps = 0;
    }

    /// Give up ownership of every connection (shutdown path).
    pub fn drain(&mut self) -> Vec<Conn> {
        std::mem::take(&mut self.conns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    fn pair(id: u64) -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        (client, Conn::new(id, server_side).unwrap())
    }

    /// Sweep until `done` or a bounded number of attempts (loopback
    /// delivery is fast; the bound only guards against a real bug).
    fn sweep_until(
        poller: &mut Poller,
        ready: &mut Vec<Conn>,
        closed: &mut Vec<u64>,
        done: impl Fn(&Vec<Conn>, &Vec<u64>) -> bool,
    ) {
        for _ in 0..5_000_000u64 {
            poller.sweep(ready, closed);
            if done(ready, closed) {
                return;
            }
            std::thread::yield_now();
        }
        panic!("poller never observed the expected event");
    }

    #[test]
    fn sweep_detects_arriving_data() {
        let (mut client, conn) = pair(1);
        let mut poller = Poller::new();
        poller.register(conn);
        let (mut ready, mut closed) = (Vec::new(), Vec::new());
        poller.sweep(&mut ready, &mut closed);
        assert!(ready.is_empty() && closed.is_empty(), "nothing sent yet");

        client.write_all(b"version\r\n").unwrap();
        sweep_until(&mut poller, &mut ready, &mut closed, |r, _| !r.is_empty());
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].id(), 1);
        assert_eq!(ready[0].input(), b"version\r\n");
        assert_eq!(poller.len(), 0, "ready conn left the poller");
    }

    #[test]
    fn sweep_retires_closed_connections() {
        let (client, conn) = pair(9);
        let mut poller = Poller::new();
        poller.register(conn);
        drop(client);
        let (mut ready, mut closed) = (Vec::new(), Vec::new());
        sweep_until(&mut poller, &mut ready, &mut closed, |_, c| !c.is_empty());
        assert_eq!(closed, vec![9]);
        assert!(poller.is_empty());
    }

    #[test]
    fn idle_park_escalates_and_resets() {
        let (_client, conn) = pair(1);
        let mut poller = Poller::new();
        poller.register(conn);
        let (mut ready, mut closed) = (Vec::new(), Vec::new());
        let first = poller.idle_park();
        for _ in 0..32 {
            poller.sweep(&mut ready, &mut closed);
        }
        assert!(ready.is_empty() && closed.is_empty());
        let escalated = poller.idle_park();
        assert!(escalated > first, "{escalated:?} !> {first:?}");
        assert_eq!(escalated, Duration::from_micros(PARK_MAX_MICROS));
        poller.note_activity();
        assert_eq!(poller.idle_park(), first);
    }

    #[test]
    fn consume_drops_parsed_prefix() {
        let (mut client, conn) = pair(3);
        let mut poller = Poller::new();
        poller.register(conn);
        client.write_all(b"version\r\nget a").unwrap();
        let (mut ready, mut closed) = (Vec::new(), Vec::new());
        sweep_until(&mut poller, &mut ready, &mut closed, |r, _| !r.is_empty());
        let mut conn = ready.pop().unwrap();
        // The dispatched conn is no longer swept; pull the remainder the
        // way a worker would (still nonblocking here, so spin briefly).
        let mut staging = Vec::new();
        for _ in 0..5_000_000u64 {
            if conn.input().len() >= 15 {
                break;
            }
            match conn.read_more(&mut staging) {
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::yield_now(),
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(conn.input(), b"version\r\nget a");
        conn.consume(9);
        assert_eq!(conn.input(), b"get a");
    }

    #[test]
    fn worker_mode_read_times_out_without_traffic() {
        let (mut client, mut conn) = pair(4);
        conn.enter_worker_mode(Duration::from_millis(5), Duration::from_secs(1))
            .unwrap();
        let mut staging = Vec::new();
        let err = conn.read_more(&mut staging).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            "{err:?}"
        );
        client.write_all(b"hi").unwrap();
        // Bounded retry: the bytes are in flight on loopback.
        let mut got = 0;
        for _ in 0..1000 {
            match conn.read_more(&mut staging) {
                Ok(n) => {
                    got = n;
                    break;
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) => {}
                Err(e) => panic!("{e:?}"),
            }
        }
        assert_eq!(got, 2);
        assert_eq!(conn.input(), b"hi");
        conn.enter_poller_mode().unwrap();
    }
}
