//! Store-wide counters, memcached-`stats`-style.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters shared by all shards and connections.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// `get` item lookups.
    pub gets: AtomicU64,
    /// Lookups that hit.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// `set` operations accepted.
    pub sets: AtomicU64,
    /// Entries evicted by memory pressure.
    pub evictions: AtomicU64,
    /// `set` operations refused for memory.
    pub oom_errors: AtomicU64,
    /// `delete` operations that removed an entry.
    pub deletes: AtomicU64,
    /// get transactions (multi-gets count once).
    pub get_txns: AtomicU64,
    /// Successful compare-and-swaps.
    pub cas_ok: AtomicU64,
    /// CAS attempts rejected for a stale token.
    pub cas_conflicts: AtomicU64,
    /// `incr` operations that found their key.
    pub incr_hits: AtomicU64,
    /// `incr` operations on a missing key.
    pub incr_misses: AtomicU64,
    /// `decr` operations that found their key.
    pub decr_hits: AtomicU64,
    /// `decr` operations on a missing key.
    pub decr_misses: AtomicU64,
    /// incr/decr refused because the value is not a number.
    pub arith_non_numeric: AtomicU64,
}

/// A plain-data snapshot of [`StoreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `get` item lookups.
    pub gets: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// `set` operations accepted.
    pub sets: u64,
    /// Entries evicted by memory pressure.
    pub evictions: u64,
    /// `set` operations refused for memory.
    pub oom_errors: u64,
    /// `delete` operations that removed an entry.
    pub deletes: u64,
    /// get transactions.
    pub get_txns: u64,
    /// Successful compare-and-swaps.
    pub cas_ok: u64,
    /// CAS attempts rejected for a stale token.
    pub cas_conflicts: u64,
    /// `incr` operations that found their key.
    pub incr_hits: u64,
    /// `incr` operations on a missing key.
    pub incr_misses: u64,
    /// `decr` operations that found their key.
    pub decr_hits: u64,
    /// `decr` operations on a missing key.
    pub decr_misses: u64,
    /// incr/decr refused because the value is not a number.
    pub arith_non_numeric: u64,
    /// Entries currently stored (filled in by the store).
    pub curr_items: u64,
    /// Bytes currently accounted (filled in by the store).
    pub bytes: u64,
}

impl StoreStats {
    /// Take a snapshot (items/bytes are supplied by the store, which
    /// knows the shards).
    pub fn snapshot(&self, curr_items: u64, bytes: u64) -> StatsSnapshot {
        StatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            oom_errors: self.oom_errors.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            get_txns: self.get_txns.load(Ordering::Relaxed),
            cas_ok: self.cas_ok.load(Ordering::Relaxed),
            cas_conflicts: self.cas_conflicts.load(Ordering::Relaxed),
            incr_hits: self.incr_hits.load(Ordering::Relaxed),
            incr_misses: self.incr_misses.load(Ordering::Relaxed),
            decr_hits: self.decr_hits.load(Ordering::Relaxed),
            decr_misses: self.decr_misses.load(Ordering::Relaxed),
            arith_non_numeric: self.arith_non_numeric.load(Ordering::Relaxed),
            curr_items,
            bytes,
        }
    }
}

impl StatsSnapshot {
    /// Hit rate among lookups (0 if none).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Render as memcached-style `STAT` lines (without the trailing
    /// `END`).
    pub fn stat_lines(&self) -> Vec<(String, String)> {
        vec![
            ("cmd_get".into(), self.gets.to_string()),
            ("get_hits".into(), self.hits.to_string()),
            ("get_misses".into(), self.misses.to_string()),
            ("cmd_set".into(), self.sets.to_string()),
            ("evictions".into(), self.evictions.to_string()),
            ("oom_errors".into(), self.oom_errors.to_string()),
            ("cmd_delete".into(), self.deletes.to_string()),
            ("get_transactions".into(), self.get_txns.to_string()),
            ("cas_hits".into(), self.cas_ok.to_string()),
            ("cas_badval".into(), self.cas_conflicts.to_string()),
            ("incr_hits".into(), self.incr_hits.to_string()),
            ("incr_misses".into(), self.incr_misses.to_string()),
            ("decr_hits".into(), self.decr_hits.to_string()),
            ("decr_misses".into(), self.decr_misses.to_string()),
            (
                "arith_non_numeric".into(),
                self.arith_non_numeric.to_string(),
            ),
            ("curr_items".into(), self.curr_items.to_string()),
            ("bytes".into(), self.bytes.to_string()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = StoreStats::default();
        s.gets.fetch_add(10, Ordering::Relaxed);
        s.hits.fetch_add(7, Ordering::Relaxed);
        s.misses.fetch_add(3, Ordering::Relaxed);
        let snap = s.snapshot(5, 1234);
        assert_eq!(snap.gets, 10);
        assert_eq!(snap.hits, 7);
        assert_eq!(snap.curr_items, 5);
        assert_eq!(snap.bytes, 1234);
        assert!((snap.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_gets_hit_rate() {
        assert_eq!(StatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn stat_lines_complete() {
        let lines = StatsSnapshot::default().stat_lines();
        let names: Vec<&str> = lines.iter().map(|(n, _)| n.as_str()).collect();
        for expect in [
            "cmd_get",
            "get_hits",
            "cmd_set",
            "evictions",
            "curr_items",
            "bytes",
            "incr_hits",
            "incr_misses",
            "decr_hits",
            "decr_misses",
            "arith_non_numeric",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }
}
