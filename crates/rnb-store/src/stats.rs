//! Store-wide counters, memcached-`stats`-style.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of multi-get batch-size histogram buckets: bucket 0 holds
/// single-key gets, bucket `k` (1–7) holds sizes in `(2^(k-1), 2^k]`,
/// and the last bucket holds everything above 128 keys.
pub const BATCH_HIST_BUCKETS: usize = 9;

/// Upper bound (inclusive) of each histogram bucket except the last,
/// which is open-ended.
const BATCH_HIST_BOUNDS: [u64; BATCH_HIST_BUCKETS - 1] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Which histogram bucket a batch of `m` keys falls into.
fn batch_bucket(m: usize) -> usize {
    match m {
        0 | 1 => 0,
        m if m > 128 => BATCH_HIST_BUCKETS - 1,
        // ceil(log2(m)) for 2..=128 → buckets 1..=7.
        m => (usize::BITS - (m - 1).leading_zeros()) as usize,
    }
}

/// Lock-free counters shared by all shards and connections.
#[derive(Debug, Default)]
pub struct StoreStats {
    /// `get` item lookups.
    pub gets: AtomicU64,
    /// Lookups that hit.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// `set` operations accepted.
    pub sets: AtomicU64,
    /// Entries evicted by memory pressure.
    pub evictions: AtomicU64,
    /// `set` operations refused for memory.
    pub oom_errors: AtomicU64,
    /// `delete` operations that removed an entry.
    pub deletes: AtomicU64,
    /// get transactions (multi-gets count once).
    pub get_txns: AtomicU64,
    /// Successful compare-and-swaps.
    pub cas_ok: AtomicU64,
    /// CAS attempts rejected for a stale token.
    pub cas_conflicts: AtomicU64,
    /// `incr` operations that found their key.
    pub incr_hits: AtomicU64,
    /// `incr` operations on a missing key.
    pub incr_misses: AtomicU64,
    /// `decr` operations that found their key.
    pub decr_hits: AtomicU64,
    /// `decr` operations on a missing key.
    pub decr_misses: AtomicU64,
    /// incr/decr refused because the value is not a number.
    pub arith_non_numeric: AtomicU64,
    /// Multi-get batch sizes, power-of-two buckets (see
    /// [`BATCH_HIST_BUCKETS`]).
    pub get_batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
    /// Bytes read off client connections (request lines + data blocks).
    pub bytes_read: AtomicU64,
    /// Bytes written back to client connections.
    pub bytes_written: AtomicU64,
    /// Key lookups served from a hot shard's read replica instead of the
    /// shard mutex.
    pub replica_reads: AtomicU64,
    /// Flat-combining batches applied (each batch = one primary-shard
    /// lock acquisition covering every drained write).
    pub combiner_batches: AtomicU64,
    /// Operations appended to hot-shard operation logs.
    pub log_appends: AtomicU64,
    /// Shards promoted to replicated "hot" mode.
    pub hot_promotions: AtomicU64,
    /// Hot shards demoted back to the plain mutex path.
    pub hot_demotions: AtomicU64,
}

/// A plain-data snapshot of [`StoreStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// `get` item lookups.
    pub gets: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// `set` operations accepted.
    pub sets: u64,
    /// Entries evicted by memory pressure.
    pub evictions: u64,
    /// `set` operations refused for memory.
    pub oom_errors: u64,
    /// `delete` operations that removed an entry.
    pub deletes: u64,
    /// get transactions.
    pub get_txns: u64,
    /// Successful compare-and-swaps.
    pub cas_ok: u64,
    /// CAS attempts rejected for a stale token.
    pub cas_conflicts: u64,
    /// `incr` operations that found their key.
    pub incr_hits: u64,
    /// `incr` operations on a missing key.
    pub incr_misses: u64,
    /// `decr` operations that found their key.
    pub decr_hits: u64,
    /// `decr` operations on a missing key.
    pub decr_misses: u64,
    /// incr/decr refused because the value is not a number.
    pub arith_non_numeric: u64,
    /// Multi-get batch-size histogram (power-of-two buckets).
    pub get_batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Bytes read off client connections.
    pub bytes_read: u64,
    /// Bytes written back to client connections.
    pub bytes_written: u64,
    /// Key lookups served from hot-shard read replicas.
    pub replica_reads: u64,
    /// Flat-combining batches applied.
    pub combiner_batches: u64,
    /// Operations appended to hot-shard operation logs.
    pub log_appends: u64,
    /// Shards promoted to replicated "hot" mode.
    pub hot_promotions: u64,
    /// Hot shards demoted back to the mutex path.
    pub hot_demotions: u64,
    /// Entries currently stored (filled in by the store).
    pub curr_items: u64,
    /// Bytes currently accounted (filled in by the store).
    pub bytes: u64,
}

impl StoreStats {
    /// Record one get transaction of `m` keys in the batch-size
    /// histogram.
    pub fn count_get_batch(&self, m: usize) {
        self.get_batch_hist[batch_bucket(m)].fetch_add(1, Ordering::Relaxed);
    }

    /// Take a snapshot (items/bytes are supplied by the store, which
    /// knows the shards).
    pub fn snapshot(&self, curr_items: u64, bytes: u64) -> StatsSnapshot {
        let mut get_batch_hist = [0u64; BATCH_HIST_BUCKETS];
        for (out, src) in get_batch_hist.iter_mut().zip(&self.get_batch_hist) {
            *out = src.load(Ordering::Relaxed);
        }
        StatsSnapshot {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            oom_errors: self.oom_errors.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            get_txns: self.get_txns.load(Ordering::Relaxed),
            cas_ok: self.cas_ok.load(Ordering::Relaxed),
            cas_conflicts: self.cas_conflicts.load(Ordering::Relaxed),
            incr_hits: self.incr_hits.load(Ordering::Relaxed),
            incr_misses: self.incr_misses.load(Ordering::Relaxed),
            decr_hits: self.decr_hits.load(Ordering::Relaxed),
            decr_misses: self.decr_misses.load(Ordering::Relaxed),
            arith_non_numeric: self.arith_non_numeric.load(Ordering::Relaxed),
            get_batch_hist,
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            combiner_batches: self.combiner_batches.load(Ordering::Relaxed),
            log_appends: self.log_appends.load(Ordering::Relaxed),
            hot_promotions: self.hot_promotions.load(Ordering::Relaxed),
            hot_demotions: self.hot_demotions.load(Ordering::Relaxed),
            curr_items,
            bytes,
        }
    }
}

impl StatsSnapshot {
    /// Hit rate among lookups (0 if none).
    pub fn hit_rate(&self) -> f64 {
        if self.gets == 0 {
            0.0
        } else {
            self.hits as f64 / self.gets as f64
        }
    }

    /// Render as memcached-style `STAT` lines (without the trailing
    /// `END`).
    pub fn stat_lines(&self) -> Vec<(String, String)> {
        let mut lines = vec![
            ("cmd_get".into(), self.gets.to_string()),
            ("get_hits".into(), self.hits.to_string()),
            ("get_misses".into(), self.misses.to_string()),
            ("cmd_set".into(), self.sets.to_string()),
            ("evictions".into(), self.evictions.to_string()),
            ("oom_errors".into(), self.oom_errors.to_string()),
            ("cmd_delete".into(), self.deletes.to_string()),
            ("get_transactions".into(), self.get_txns.to_string()),
            ("cas_hits".into(), self.cas_ok.to_string()),
            ("cas_badval".into(), self.cas_conflicts.to_string()),
            ("incr_hits".into(), self.incr_hits.to_string()),
            ("incr_misses".into(), self.incr_misses.to_string()),
            ("decr_hits".into(), self.decr_hits.to_string()),
            ("decr_misses".into(), self.decr_misses.to_string()),
            (
                "arith_non_numeric".into(),
                self.arith_non_numeric.to_string(),
            ),
            ("bytes_read".into(), self.bytes_read.to_string()),
            ("bytes_written".into(), self.bytes_written.to_string()),
            ("replica_reads".into(), self.replica_reads.to_string()),
            ("combiner_batches".into(), self.combiner_batches.to_string()),
            ("log_appends".into(), self.log_appends.to_string()),
            ("hot_promotions".into(), self.hot_promotions.to_string()),
            ("hot_demotions".into(), self.hot_demotions.to_string()),
            ("curr_items".into(), self.curr_items.to_string()),
            ("bytes".into(), self.bytes.to_string()),
        ];
        for (k, count) in self.get_batch_hist.iter().enumerate() {
            let name = match BATCH_HIST_BOUNDS.get(k) {
                Some(bound) => format!("get_batch_le_{bound}"),
                None => "get_batch_gt_128".into(),
            };
            lines.push((name, count.to_string()));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let s = StoreStats::default();
        s.gets.fetch_add(10, Ordering::Relaxed);
        s.hits.fetch_add(7, Ordering::Relaxed);
        s.misses.fetch_add(3, Ordering::Relaxed);
        let snap = s.snapshot(5, 1234);
        assert_eq!(snap.gets, 10);
        assert_eq!(snap.hits, 7);
        assert_eq!(snap.curr_items, 5);
        assert_eq!(snap.bytes, 1234);
        assert!((snap.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn zero_gets_hit_rate() {
        assert_eq!(StatsSnapshot::default().hit_rate(), 0.0);
    }

    #[test]
    fn batch_buckets_cover_the_size_axis() {
        assert_eq!(batch_bucket(0), 0);
        assert_eq!(batch_bucket(1), 0);
        assert_eq!(batch_bucket(2), 1);
        assert_eq!(batch_bucket(3), 2);
        assert_eq!(batch_bucket(4), 2);
        assert_eq!(batch_bucket(5), 3);
        assert_eq!(batch_bucket(8), 3);
        assert_eq!(batch_bucket(9), 4);
        assert_eq!(batch_bucket(100), 7);
        assert_eq!(batch_bucket(128), 7);
        assert_eq!(batch_bucket(129), 8);
        assert_eq!(batch_bucket(10_000), 8);
        // Every recorded size lands inside the array.
        for m in 0..1000 {
            assert!(batch_bucket(m) < BATCH_HIST_BUCKETS);
        }
    }

    #[test]
    fn histogram_and_bytes_round_trip_through_stat_lines() {
        let s = StoreStats::default();
        s.count_get_batch(1);
        s.count_get_batch(100);
        s.count_get_batch(100);
        s.count_get_batch(500);
        s.bytes_read.fetch_add(77, Ordering::Relaxed);
        s.bytes_written.fetch_add(99, Ordering::Relaxed);
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.get_batch_hist[0], 1);
        assert_eq!(snap.get_batch_hist[7], 2);
        assert_eq!(snap.get_batch_hist[8], 1);
        assert_eq!(snap.bytes_read, 77);
        assert_eq!(snap.bytes_written, 99);

        let lines = snap.stat_lines();
        let lookup = |name: &str| -> String {
            lines
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing stat line {name}"))
        };
        assert_eq!(lookup("get_batch_le_1"), "1");
        assert_eq!(lookup("get_batch_le_128"), "2");
        assert_eq!(lookup("get_batch_gt_128"), "1");
        assert_eq!(lookup("bytes_read"), "77");
        assert_eq!(lookup("bytes_written"), "99");
    }

    #[test]
    fn replication_counters_round_trip_through_stat_lines() {
        let s = StoreStats::default();
        s.replica_reads.fetch_add(11, Ordering::Relaxed);
        s.combiner_batches.fetch_add(3, Ordering::Relaxed);
        s.log_appends.fetch_add(17, Ordering::Relaxed);
        s.hot_promotions.fetch_add(2, Ordering::Relaxed);
        s.hot_demotions.fetch_add(1, Ordering::Relaxed);
        let snap = s.snapshot(0, 0);
        assert_eq!(snap.replica_reads, 11);
        assert_eq!(snap.combiner_batches, 3);
        assert_eq!(snap.log_appends, 17);
        assert_eq!(snap.hot_promotions, 2);
        assert_eq!(snap.hot_demotions, 1);

        let lines = snap.stat_lines();
        let lookup = |name: &str| -> String {
            lines
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing stat line {name}"))
        };
        assert_eq!(lookup("replica_reads"), "11");
        assert_eq!(lookup("combiner_batches"), "3");
        assert_eq!(lookup("log_appends"), "17");
        assert_eq!(lookup("hot_promotions"), "2");
        assert_eq!(lookup("hot_demotions"), "1");
    }

    #[test]
    fn stat_lines_complete() {
        let lines = StatsSnapshot::default().stat_lines();
        let names: Vec<&str> = lines.iter().map(|(n, _)| n.as_str()).collect();
        for expect in [
            "cmd_get",
            "get_hits",
            "cmd_set",
            "evictions",
            "curr_items",
            "bytes",
            "incr_hits",
            "incr_misses",
            "decr_hits",
            "decr_misses",
            "arith_non_numeric",
            "bytes_read",
            "bytes_written",
            "replica_reads",
            "combiner_batches",
            "log_appends",
            "hot_promotions",
            "hot_demotions",
            "get_batch_le_1",
            "get_batch_gt_128",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }
}
