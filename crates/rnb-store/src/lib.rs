//! A memcached-analog RAM key-value store — the substrate the paper's
//! micro-benchmarks run against (Appendix).

// Serving-path crate: panics take down a connection (or the whole server
// thread), so unwrap/expect are denied outside tests. The workspace-wide
// policy keeps these `allow` (simulation code indexes within checked
// bounds); the deny is scoped here. xtask lint rule R1 enforces the same
// contract textually as defense in depth.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//!
//! The paper calibrates its simulator with memaslap against a real
//! memcached over 1 GbE. We reproduce the substrate from scratch:
//!
//! * [`clock`] — the injected time source: TTL expiry is a pure function
//!   of [`Clock`] ticks, so expiry behaviour runs deterministically under
//!   a manually-advanced [`TestClock`] (the only sanctioned wall-clock
//!   read in this crate lives in `clock.rs`; xtask lint R2 enforces it).
//! * [`shard::Shard`] — a byte-budgeted LRU hash table with **pinning**
//!   (the mechanism behind RnB distinguished copies) — memcached's
//!   `-m`-bounded slab+LRU behaviour at item granularity.
//! * [`store::Store`] — a sharded concurrent store (parking_lot mutex per
//!   shard, xxHash shard selection) with memcached-style counters.
//! * [`replicated`] — flat-combining replication for hot shards: shards
//!   promoted under skewed (Zipf) load serve reads from per-thread
//!   replicas and funnel writes through an operation-log combiner, one
//!   primary lock per drained batch (DESIGN.md "Flat combining &
//!   hot-shard replication").
//! * [`protocol`] — the memcached **text protocol** subset the experiments
//!   need: `get` (multi-key), `set`, `delete`, `stats`, `version`, `quit`.
//! * [`server`] / [`client`] — a threaded TCP server and a blocking
//!   client, so the micro-benchmark runs over a real socket like the
//!   original (loopback stands in for the paper's dedicated LAN cable —
//!   see DESIGN.md "Substitutions").
//! * [`loadgen`] — the memaslap analog: concurrent clients issuing
//!   multi-gets of a fixed transaction size (10-byte values, one `set`
//!   per 1000 `get` items, like the paper's configuration), reporting
//!   items/sec per transaction size — the Fig 13/14 measurement.

pub mod client;
pub mod clock;
pub mod loadgen;
pub mod poller;
pub mod protocol;
pub mod replicated;
pub mod server;
pub mod shard;
pub mod stats;
pub mod store;
pub mod udp;

pub use client::{StorageOp, StoreClient};
pub use clock::{Clock, RealClock, TestClock, Tick};
pub use loadgen::{run_load, run_load_with_clock, LoadReport, LoadSpec};
pub use replicated::{Dispatch, ReadOp, ReadOutcome, WriteOp, WriteOutcome};
pub use server::{serve_connection, ConnScratch, ServerConfig, StoreServer};
pub use store::{GetScratch, HotConfig, SetEntry, Store};
pub use udp::{UdpStoreClient, UdpStoreServer};
