//! UDP transport — memcached's datagram protocol.
//!
//! The paper's Appendix explains why its micro-benchmarks use TCP:
//!
//! > "We opted to use TCP and not UDP. We made this choice since the
//! > benchmark program suffered, as expected, from considerable packet
//! > loss issues when attempting to communicate with the server as fast
//! > as possible over a protocol without flow control."
//!
//! This module implements memcached's UDP framing (an 8-byte header —
//! request id, sequence number, datagram count, reserved — followed by
//! the same text protocol) so that the `ext_udp` experiment can
//! reproduce that observation: a sender flooding gets without flow
//! control loses responses once buffers fill, while TCP backpressures.

use crate::protocol::{self, Command};
use crate::store::Store;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// memcached UDP frame header length.
pub const HEADER_LEN: usize = 8;
/// Maximum payload per datagram (fits a standard MTU comfortably).
pub const MAX_PAYLOAD: usize = 1400;

/// Encode the frame header: request id, sequence number, datagram count.
pub fn encode_header(request_id: u16, seq: u16, total: u16) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..2].copy_from_slice(&request_id.to_be_bytes());
    h[2..4].copy_from_slice(&seq.to_be_bytes());
    h[4..6].copy_from_slice(&total.to_be_bytes());
    // bytes 6..8 reserved, zero
    h
}

/// Decode a frame header; `None` if the datagram is too short.
pub fn decode_header(datagram: &[u8]) -> Option<(u16, u16, u16)> {
    if datagram.len() < HEADER_LEN {
        return None;
    }
    let id = u16::from_be_bytes([datagram[0], datagram[1]]);
    let seq = u16::from_be_bytes([datagram[2], datagram[3]]);
    let total = u16::from_be_bytes([datagram[4], datagram[5]]);
    Some((id, seq, total))
}

/// A UDP front-end for a [`Store`]. Supports single-datagram requests
/// (`get`/`gets` and `delete`; `set` over UDP is possible but the
/// experiments follow memcached practice of writing over TCP).
pub struct UdpStoreServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl UdpStoreServer {
    /// Start on an OS-chosen loopback port.
    pub fn start(store: Arc<Store>) -> io::Result<UdpStoreServer> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        let addr = socket.local_addr()?;
        socket.set_read_timeout(Some(Duration::from_millis(50)))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);

        let thread = std::thread::spawn(move || {
            let mut buf = vec![0u8; 64 * 1024];
            while !flag.load(Ordering::SeqCst) {
                let (len, peer) = match socket.recv_from(&mut buf) {
                    Ok(x) => x,
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        continue;
                    }
                    Err(_) => break,
                };
                if let Some(reply) = handle_datagram(&buf[..len], &store) {
                    for frame in reply {
                        let _ = socket.send_to(&frame, peer);
                    }
                }
            }
        });
        Ok(UdpStoreServer {
            addr,
            shutdown,
            thread: Some(thread),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the serving thread.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for UdpStoreServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Process one request datagram into response datagrams.
fn handle_datagram(datagram: &[u8], store: &Store) -> Option<Vec<Vec<u8>>> {
    let (request_id, seq, _total) = decode_header(datagram)?;
    if seq != 0 {
        return None; // multi-datagram requests unsupported (like memcached)
    }
    let body = &datagram[HEADER_LEN..];
    let line_end = body.iter().position(|&b| b == b'\n')?;
    let line: Vec<u8> = body[..line_end]
        .iter()
        .copied()
        .filter(|&b| b != b'\r')
        .collect();

    let mut text = Vec::new();
    match protocol::parse_command(&line) {
        Ok(Command::Get { keys, with_cas }) => {
            let refs: Vec<&[u8]> = keys.iter().collect();
            let values = store.get_multi(&refs);
            for (key, value) in keys.iter().zip(values) {
                if let Some(v) = value {
                    let cas = with_cas.then_some(v.cas);
                    protocol::write_value(&mut text, key, v.flags, &v.data, cas).ok()?;
                }
            }
            protocol::write_end(&mut text).ok()?;
        }
        Ok(Command::Delete { key, noreply }) => {
            let deleted = store.delete(key);
            if noreply {
                return None;
            }
            text.extend_from_slice(if deleted {
                crate::protocol::reply::DELETED
            } else {
                crate::protocol::reply::NOT_FOUND
            });
        }
        Ok(Command::Version) => text.extend_from_slice(crate::protocol::reply::VERSION),
        Ok(_) => text.extend_from_slice(b"CLIENT_ERROR command not supported over udp\r\n"),
        Err(msg) => {
            text.extend_from_slice(format!("CLIENT_ERROR {msg}\r\n").as_bytes());
        }
    }

    // Split into MAX_PAYLOAD frames.
    let chunks: Vec<&[u8]> = text.chunks(MAX_PAYLOAD).collect();
    let total = chunks.len().max(1) as u16;
    Some(
        chunks
            .iter()
            .enumerate()
            .map(|(i, chunk)| {
                let mut frame = encode_header(request_id, i as u16, total).to_vec();
                frame.extend_from_slice(chunk);
                frame
            })
            .collect(),
    )
}

/// A minimal UDP client for `get` transactions with loss accounting.
pub struct UdpStoreClient {
    socket: UdpSocket,
    server: SocketAddr,
    next_request_id: u16,
    /// Requests that timed out waiting for (all of) their response
    /// datagrams — the packet-loss signal the paper observed.
    pub lost_responses: u64,
}

impl UdpStoreClient {
    /// Connect (bind a local ephemeral socket) toward `server`.
    pub fn connect(server: SocketAddr, timeout: Duration) -> io::Result<UdpStoreClient> {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        socket.set_read_timeout(Some(timeout))?;
        Ok(UdpStoreClient {
            socket,
            server,
            next_request_id: 1,
            lost_responses: 0,
        })
    }

    /// Switch receives to non-blocking — flood mode, where the sender
    /// never waits (the Appendix's "as fast as possible" configuration).
    pub fn set_nonblocking(&mut self) -> io::Result<()> {
        self.socket.set_nonblocking(true)
    }

    /// Fire a multi-get without waiting (flood mode). Returns the request
    /// id to match responses later.
    pub fn send_get(&mut self, keys: &[&[u8]]) -> io::Result<u16> {
        let id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        let mut frame = encode_header(id, 0, 1).to_vec();
        frame.extend_from_slice(b"get");
        for key in keys {
            frame.push(b' ');
            frame.extend_from_slice(key);
        }
        frame.extend_from_slice(b"\r\n");
        self.socket.send_to(&frame, self.server)?;
        Ok(id)
    }

    /// Receive one response datagram (any request), returning
    /// `(request_id, seq, total, body)`; `None` on timeout.
    #[allow(clippy::type_complexity)]
    pub fn recv_frame(&mut self) -> io::Result<Option<(u16, u16, u16, Vec<u8>)>> {
        let mut buf = vec![0u8; 64 * 1024];
        match self.socket.recv_from(&mut buf) {
            Ok((len, _)) => {
                let Some((id, seq, total)) = decode_header(&buf[..len]) else {
                    return Ok(None);
                };
                Ok(Some((id, seq, total, buf[HEADER_LEN..len].to_vec())))
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e),
        }
    }

    /// Blocking multi-get: send and gather the full response. Counts the
    /// number of items returned; on timeout records a lost response and
    /// returns `None`.
    pub fn get_multi_counted(&mut self, keys: &[&[u8]]) -> io::Result<Option<usize>> {
        let id = self.send_get(keys)?;
        let mut frames: Vec<Option<Vec<u8>>> = Vec::new();
        let mut expected: Option<u16> = None;
        loop {
            match self.recv_frame()? {
                None => {
                    self.lost_responses += 1;
                    return Ok(None);
                }
                Some((rid, seq, total, body)) => {
                    if rid != id {
                        continue; // stale response from an abandoned request
                    }
                    let total = total.max(1);
                    expected.get_or_insert(total);
                    if frames.len() < total as usize {
                        frames.resize(total as usize, None);
                    }
                    if let Some(slot) = frames.get_mut(seq as usize) {
                        *slot = Some(body);
                    }
                    if frames.iter().all(Option::is_some) {
                        break;
                    }
                }
            }
        }
        let text: Vec<u8> = frames.into_iter().flatten().flatten().collect();
        // Count VALUE stanzas.
        let items = text.windows(6).filter(|w| w == b"VALUE ").count();
        Ok(Some(items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = encode_header(0x1234, 2, 7);
        assert_eq!(decode_header(&h), Some((0x1234, 2, 7)));
        assert_eq!(decode_header(&h[..5]), None);
    }

    fn start_pair() -> (Arc<Store>, UdpStoreServer, UdpStoreClient) {
        let store = Arc::new(Store::new(1 << 22));
        let server = UdpStoreServer::start(Arc::clone(&store)).unwrap();
        let client = UdpStoreClient::connect(server.addr(), Duration::from_millis(500)).unwrap();
        (store, server, client)
    }

    #[test]
    fn udp_get_roundtrip() {
        let (store, _server, mut client) = start_pair();
        store.set(b"a", b"1", 0, false);
        store.set(b"b", b"2", 0, false);
        let items = client.get_multi_counted(&[b"a", b"b", b"missing"]).unwrap();
        assert_eq!(items, Some(2));
        assert_eq!(client.lost_responses, 0);
    }

    #[test]
    fn udp_large_response_spans_frames() {
        let (store, _server, mut client) = start_pair();
        // 20 values of 200 bytes ≈ 4 KB of response → multiple datagrams.
        let big = vec![b'x'; 200];
        let keys: Vec<Vec<u8>> = (0..20).map(|i| format!("key{i}").into_bytes()).collect();
        for k in &keys {
            store.set(k, &big, 0, false);
        }
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let items = client.get_multi_counted(&refs).unwrap();
        assert_eq!(items, Some(20), "multi-frame response reassembly failed");
    }

    #[test]
    fn udp_version_and_unsupported() {
        let (_store, server, mut client) = start_pair();
        let mut frame = encode_header(9, 0, 1).to_vec();
        frame.extend_from_slice(b"version\r\n");
        client.socket.send_to(&frame, server.addr()).unwrap();
        let (_, _, _, body) = client.recv_frame().unwrap().expect("reply");
        assert!(body.starts_with(b"VERSION"));

        let mut frame = encode_header(10, 0, 1).to_vec();
        frame.extend_from_slice(b"set k 0 0 1\r\n");
        client.socket.send_to(&frame, server.addr()).unwrap();
        let (_, _, _, body) = client.recv_frame().unwrap().expect("reply");
        assert!(body.starts_with(b"CLIENT_ERROR"), "{body:?}");
    }

    #[test]
    fn udp_timeout_counts_as_lost() {
        let store = Arc::new(Store::new(1 << 20));
        let server = UdpStoreServer::start(Arc::clone(&store)).unwrap();
        let addr = server.addr();
        drop(server); // kill the server; requests now vanish
        let mut client = UdpStoreClient::connect(addr, Duration::from_millis(100)).unwrap();
        assert_eq!(client.get_multi_counted(&[b"a"]).unwrap(), None);
        assert_eq!(client.lost_responses, 1);
    }
}
