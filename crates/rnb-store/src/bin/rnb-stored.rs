//! Standalone store daemon: a memcached-analog server speaking the text
//! protocol subset (`get`/`gets`/`set`/`add`/`replace`/`cas`/`incr`/
//! `decr`/`delete`/`stats`/`version`/`quit`).
//!
//! ```text
//! cargo run --release -p rnb-store --bin rnb-stored -- [--port P] [--mem MB]
//! # then: printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 P
//! ```

use rnb_store::{Store, StoreServer};
use std::sync::Arc;

fn main() {
    let mut port: u16 = 11311;
    let mut mem_mb: usize = 64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--port needs a number"));
            }
            "--mem" => {
                mem_mb = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--mem needs a number (MB)"));
            }
            "--help" | "-h" => {
                println!("usage: rnb-stored [--port P] [--mem MB]");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let store = Arc::new(Store::new(mem_mb << 20));
    // StoreServer binds an ephemeral port; for a daemon we want the
    // requested one, so bind it ourselves by reusing the library after
    // checking availability.
    let server = match StoreServer::start_on(Arc::clone(&store), port) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot listen on port {port}: {e}")),
    };
    println!(
        "rnb-stored listening on {} ({} MB budget)",
        server.addr(),
        mem_mb
    );
    println!("press Ctrl-C to stop");
    loop {
        // Nothing to do on the main thread until Ctrl-C kills the
        // process; park (looping over spurious unparks) instead of a
        // periodic sleep so the thread truly blocks.
        std::thread::park();
    }
}

// CLI usage errors exit the process by design; the workspace-wide
// `clippy::exit` deny is meant for library code.
#[allow(clippy::exit)]
fn die(msg: &str) -> ! {
    eprintln!("rnb-stored: {msg}");
    std::process::exit(2)
}
