//! Standalone store daemon: a memcached-analog server speaking the text
//! protocol subset (`get`/`gets`/`set`/`add`/`replace`/`cas`/`incr`/
//! `decr`/`delete`/`stats`/`version`/`quit`).
//!
//! ```text
//! cargo run --release -p rnb-store --bin rnb-stored -- [--port P] [--mem MB]
//! # then: printf 'set k 0 0 5\r\nhello\r\nget k\r\nquit\r\n' | nc 127.0.0.1 P
//! ```
//!
//! Harness mode (`--control`, used by `rnb-cluster`): the daemon prints
//! one machine-readable `READY <addr>` line on stdout once the listener
//! is bound (`--port 0` asks the OS for a port, so the line is the only
//! way to learn it), then reads stdin for a `shutdown` command. On
//! `shutdown` — or stdin EOF, so an orphaned daemon never outlives its
//! harness — it drains in-flight connections via
//! [`StoreServer::shutdown_drain`], prints `BYE`, and exits 0. No
//! signals are involved, so harnesses synchronize on pipes alone,
//! without sleeps or SIGTERM races.

use rnb_store::{ServerConfig, Store, StoreServer};
use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Duration;

/// How long a `--control` shutdown waits for live connections to drain
/// before closing them abruptly (nominal wait, see `shutdown_drain`).
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

fn main() {
    let mut port: u16 = 11311;
    let mut mem_mb: usize = 64;
    let mut shards: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut control = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                port = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--port needs a number (0 = OS-chosen)"));
            }
            "--mem" => {
                mem_mb = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--mem needs a number (MB)"));
            }
            "--shards" => {
                shards = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&s| s > 0)
                        .unwrap_or_else(|| die("--shards needs a positive number")),
                );
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&w| w > 0)
                        .unwrap_or_else(|| die("--workers needs a positive number")),
                );
            }
            "--control" => control = true,
            "--help" | "-h" => {
                println!(
                    "usage: rnb-stored [--port P] [--mem MB] [--shards N] \
                     [--workers N] [--control]"
                );
                println!("  --port 0     bind an OS-chosen port (printed on stdout)");
                println!("  --control    READY/shutdown/BYE handshake on stdout/stdin");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let store = match shards {
        Some(s) => Arc::new(Store::with_shards(mem_mb << 20, s)),
        None => Arc::new(Store::new(mem_mb << 20)),
    };
    let mut config = ServerConfig::default();
    if let Some(w) = workers {
        config.workers = w;
    }
    let mut server = match StoreServer::start_with(Arc::clone(&store), port, config) {
        Ok(s) => s,
        Err(e) => die(&format!("cannot listen on port {port}: {e}")),
    };
    // The READY line is the machine-readable half of the handshake: the
    // harness blocks on it instead of sleeping-and-retrying, and it is
    // the only way to learn an OS-chosen (`--port 0`) address.
    println!("READY {}", server.addr());
    println!(
        "rnb-stored listening on {} ({} MB budget, {} threads)",
        server.addr(),
        mem_mb,
        server.thread_count()
    );
    let _ = std::io::stdout().flush();

    if control {
        // Block on stdin: `shutdown` (or EOF — the harness died or
        // closed the pipe) triggers a graceful drain.
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.lock().read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    if line.trim() == "shutdown" {
                        break;
                    }
                }
            }
        }
        server.shutdown_drain(DRAIN_DEADLINE);
        println!("BYE");
        let _ = std::io::stdout().flush();
    } else {
        println!("press Ctrl-C to stop");
        loop {
            // Nothing to do on the main thread until Ctrl-C kills the
            // process; park (looping over spurious unparks) instead of a
            // periodic sleep so the thread truly blocks.
            std::thread::park();
        }
    }
}

// CLI usage errors exit the process by design; the workspace-wide
// `clippy::exit` deny is meant for library code.
#[allow(clippy::exit)]
fn die(msg: &str) -> ! {
    eprintln!("rnb-stored: {msg}");
    std::process::exit(2)
}
