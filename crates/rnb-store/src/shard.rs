//! One store shard: a byte-budgeted LRU hash table with pinning, CAS,
//! arithmetic operations and TTL expiry — the memcached feature surface
//! the paper's §IV atomic-operation schemes build on.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

const NIL: usize = usize::MAX;

/// Fixed bookkeeping cost charged per entry on top of key/value bytes
/// (hash-table slot, list links, refcount — memcached charges ~50–60
/// bytes similarly).
pub const ENTRY_OVERHEAD: usize = 64;

/// Result of a `set`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// Stored; `evicted` entries were dropped to make room.
    Stored {
        /// Number of LRU entries evicted by this set.
        evicted: usize,
    },
    /// The entry cannot fit even after evicting every unpinned entry.
    OutOfMemory,
}

/// Result of a `cas` (compare-and-swap) — memcached semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The token matched; the value was replaced.
    Stored,
    /// The entry changed since the token was issued.
    Exists,
    /// No such entry.
    NotFound,
    /// The replacement does not fit in memory.
    OutOfMemory,
}

/// Result of `incr`/`decr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOutcome {
    /// New value after the operation.
    Value(u64),
    /// No such entry (memcached does not auto-create on incr).
    NotFound,
    /// The stored value is not an unsigned decimal integer.
    NonNumeric,
}

/// A value as returned by `get`: cheaply clonable bytes plus the
/// client-opaque flags word memcached round-trips and the CAS token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The stored bytes.
    pub data: Arc<[u8]>,
    /// Opaque flags stored with the value.
    pub flags: u32,
    /// Compare-and-swap token: changes on every successful mutation.
    pub cas: u64,
}

#[derive(Debug)]
struct Node {
    key: Box<[u8]>,
    value: Arc<[u8]>,
    flags: u32,
    cas: u64,
    expires_at: Option<Instant>,
    pinned: bool,
    prev: usize,
    next: usize,
}

impl Node {
    fn expired(&self, now: Instant) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }
}

/// A single-threaded LRU hash table with a byte budget. Pinned entries
/// never appear on the LRU list and are never evicted (they back RnB's
/// distinguished copies).
#[derive(Debug)]
pub struct Shard {
    map: HashMap<Box<[u8]>, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    mem_used: usize,
    /// Bytes held by unpinned (evictable) entries — kept in sync so fit
    /// checks are O(1).
    unpinned_bytes: usize,
    mem_limit: usize,
    /// Monotonic CAS-token source.
    cas_counter: u64,
}

fn entry_cost(key: &[u8], value: &[u8]) -> usize {
    key.len() + value.len() + ENTRY_OVERHEAD
}

impl Shard {
    /// A shard with a byte budget.
    pub fn new(mem_limit: usize) -> Self {
        Shard {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            mem_used: 0,
            unpinned_bytes: 0,
            mem_limit,
            cas_counter: 0,
        }
    }

    /// Entries resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes accounted as used.
    pub fn mem_used(&self) -> usize {
        self.mem_used
    }

    /// The byte budget.
    pub fn mem_limit(&self) -> usize {
        self.mem_limit
    }

    /// Look up `key`, promoting unpinned hits to most-recently-used.
    /// Expired entries are removed lazily and report as misses.
    pub fn get(&mut self, key: &[u8]) -> Option<Value> {
        let &idx = self.map.get(key)?;
        if self.nodes[idx].expired(Instant::now()) {
            self.delete(key);
            return None;
        }
        if !self.nodes[idx].pinned {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(Value {
            data: Arc::clone(&self.nodes[idx].value),
            flags: self.nodes[idx].flags,
            cas: self.nodes[idx].cas,
        })
    }

    /// Presence probe without LRU promotion (expired entries report
    /// absent but are left for lazy removal).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.map
            .get(key)
            .is_some_and(|&idx| !self.nodes[idx].expired(Instant::now()))
    }

    /// Store `key` → `value`, evicting LRU entries as needed.
    pub fn set(&mut self, key: &[u8], value: &[u8], flags: u32, pinned: bool) -> SetOutcome {
        self.set_full(key, value, flags, pinned, None)
    }

    /// [`Shard::set`] with an optional TTL (memcached `exptime`).
    pub fn set_full(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        pinned: bool,
        ttl: Option<Duration>,
    ) -> SetOutcome {
        let new_cost = entry_cost(key, value);
        let expires_at = ttl.map(|d| Instant::now() + d);

        if let Some(&idx) = self.map.get(key) {
            // Overwrite. Fit check: everything except this entry and other
            // pinned entries is evictable.
            let old_cost = entry_cost(&self.nodes[idx].key, &self.nodes[idx].value);
            let other_unpinned =
                self.unpinned_bytes - if self.nodes[idx].pinned { 0 } else { old_cost };
            // Irreducible bytes after the overwrite: other pinned entries
            // plus the new entry itself (evict_to_fit never evicts the
            // entry just written).
            let other_pinned = self.mem_used - old_cost - other_unpinned;
            if other_pinned + new_cost > self.mem_limit {
                return SetOutcome::OutOfMemory;
            }
            self.mem_used = self.mem_used - old_cost + new_cost;
            if !self.nodes[idx].pinned {
                self.unpinned_bytes -= old_cost;
                self.unlink(idx);
            }
            self.cas_counter += 1;
            self.nodes[idx].value = Arc::from(value);
            self.nodes[idx].flags = flags;
            self.nodes[idx].pinned = pinned;
            self.nodes[idx].cas = self.cas_counter;
            self.nodes[idx].expires_at = expires_at;
            if !pinned {
                self.unpinned_bytes += new_cost;
                self.push_front(idx);
            }
            let evicted = self.evict_to_fit(idx);
            return SetOutcome::Stored { evicted };
        }

        // New entry. Irreducible bytes = pinned bytes (+ the new entry).
        let pinned_bytes = self.mem_used - self.unpinned_bytes;
        if pinned_bytes + new_cost > self.mem_limit {
            return SetOutcome::OutOfMemory;
        }
        self.cas_counter += 1;
        let idx = self.alloc(Node {
            key: Box::from(key),
            value: Arc::from(value),
            flags,
            cas: self.cas_counter,
            expires_at,
            pinned,
            prev: NIL,
            next: NIL,
        });
        self.map.insert(Box::from(key), idx);
        self.mem_used += new_cost;
        if !pinned {
            self.unpinned_bytes += new_cost;
            self.push_front(idx);
        }
        let evicted = self.evict_to_fit(idx);
        SetOutcome::Stored { evicted }
    }

    /// `add`: store only if `key` is absent (memcached semantics).
    /// Returns `None` if the key already exists.
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        if self.contains(key) {
            return None;
        }
        Some(self.set_full(key, value, flags, false, ttl))
    }

    /// `replace`: store only if `key` is present. Returns `None` if the
    /// key does not exist.
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        if !self.contains(key) {
            return None;
        }
        // Preserve the pinned status on replace.
        let pinned = self
            .map
            .get(key)
            .map(|&idx| self.nodes[idx].pinned)
            .unwrap_or(false);
        Some(self.set_full(key, value, flags, pinned, ttl))
    }

    /// `cas`: replace only if the entry's token still equals `token`.
    pub fn cas(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        token: u64,
        ttl: Option<Duration>,
    ) -> CasOutcome {
        match self.map.get(key) {
            None => CasOutcome::NotFound,
            Some(&idx) if self.nodes[idx].expired(Instant::now()) => {
                self.delete(key);
                CasOutcome::NotFound
            }
            Some(&idx) => {
                if self.nodes[idx].cas != token {
                    return CasOutcome::Exists;
                }
                let pinned = self.nodes[idx].pinned;
                match self.set_full(key, value, flags, pinned, ttl) {
                    SetOutcome::Stored { .. } => CasOutcome::Stored,
                    SetOutcome::OutOfMemory => CasOutcome::OutOfMemory,
                }
            }
        }
    }

    /// `incr`/`decr`: treat the value as an ASCII unsigned decimal and
    /// add `delta` (saturating at 0 for decrements, wrapping at `u64` for
    /// increments — memcached semantics).
    pub fn arith(&mut self, key: &[u8], delta: u64, negative: bool) -> ArithOutcome {
        let Some(current) = self.get(key) else {
            return ArithOutcome::NotFound;
        };
        let Ok(text) = std::str::from_utf8(&current.data) else {
            return ArithOutcome::NonNumeric;
        };
        let Ok(n) = text.trim().parse::<u64>() else {
            return ArithOutcome::NonNumeric;
        };
        let next = if negative {
            n.saturating_sub(delta)
        } else {
            n.wrapping_add(delta)
        };
        let rendered = next.to_string();
        let pinned = self
            .map
            .get(key)
            .map(|&idx| self.nodes[idx].pinned)
            .unwrap_or(false);
        let ttl_left = self.map.get(key).and_then(|&idx| {
            self.nodes[idx]
                .expires_at
                .map(|t| t.saturating_duration_since(Instant::now()))
        });
        match self.set_full(key, rendered.as_bytes(), current.flags, pinned, ttl_left) {
            SetOutcome::Stored { .. } => ArithOutcome::Value(next),
            // A numeric value is never larger than what it replaces by
            // more than a few bytes; OOM here means the shard is pathological.
            SetOutcome::OutOfMemory => ArithOutcome::NonNumeric,
        }
    }

    /// Delete `key`; true if it was present.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                let cost = entry_cost(&self.nodes[idx].key, &self.nodes[idx].value);
                self.mem_used -= cost;
                if !self.nodes[idx].pinned {
                    self.unpinned_bytes -= cost;
                    self.unlink(idx);
                }
                self.release(idx);
                true
            }
            None => false,
        }
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx].key = Box::from(&b""[..]);
        self.nodes[idx].value = Arc::from(&b""[..]);
        self.free.push(idx);
    }

    /// Evict LRU entries (never `protect`) until within budget. Returns
    /// how many were evicted.
    fn evict_to_fit(&mut self, protect: usize) -> usize {
        let mut evicted = 0;
        while self.mem_used > self.mem_limit && self.tail != NIL {
            let victim = if self.tail == protect {
                self.nodes[self.tail].prev
            } else {
                self.tail
            };
            if victim == NIL {
                break;
            }
            let cost = entry_cost(&self.nodes[victim].key, &self.nodes[victim].value);
            let key = std::mem::take(&mut self.nodes[victim].key);
            self.mem_used -= cost;
            self.unpinned_bytes -= cost;
            self.map.remove(&key);
            self.unlink(victim);
            self.release(victim);
            evicted += 1;
        }
        evicted
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i}").into_bytes(),
            format!("value{i}").into_bytes(),
        )
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = Shard::new(10_000);
        let (k, v) = kv(1);
        assert_eq!(s.set(&k, &v, 42, false), SetOutcome::Stored { evicted: 0 });
        let got = s.get(&k).unwrap();
        assert_eq!(&got.data[..], &v[..]);
        assert_eq!(got.flags, 42);
        assert!(s.get(b"missing").is_none());
    }

    #[test]
    fn overwrite_updates_value_and_memory() {
        let mut s = Shard::new(10_000);
        s.set(b"k", b"short", 0, false);
        let used_short = s.mem_used();
        s.set(b"k", b"a-much-longer-value", 7, false);
        assert!(s.mem_used() > used_short);
        assert_eq!(s.len(), 1);
        assert_eq!(&s.get(b"k").unwrap().data[..], b"a-much-longer-value");
        assert_eq!(s.get(b"k").unwrap().flags, 7);
        s.set(b"k", b"x", 0, false);
        assert!(s.mem_used() < used_short);
    }

    #[test]
    fn eviction_is_lru_order() {
        // Budget for ~3 small entries.
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(3 * cost);
        for i in 0..3 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert_eq!(s.len(), 3);
        // Touch key0 so key1 is LRU.
        s.get(b"key0");
        let (k, v) = kv(3);
        match s.set(&k, &v, 0, false) {
            SetOutcome::Stored { evicted } => assert_eq!(evicted, 1),
            o => panic!("{o:?}"),
        }
        assert!(s.contains(b"key0"));
        assert!(!s.contains(b"key1"), "key1 should be evicted");
        assert!(s.contains(b"key2") && s.contains(b"key3"));
        assert!(s.mem_used() <= s.mem_limit());
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true); // pinned
        for i in 1..10 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(s.contains(b"key0"), "pinned entry evicted");
        assert!(s.mem_used() <= s.mem_limit());
        assert_eq!(&s.get(b"key0").unwrap().data[..], b"value0");
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut s = Shard::new(100);
        let big = vec![0u8; 200];
        assert_eq!(s.set(b"big", &big, 0, false), SetOutcome::OutOfMemory);
        assert_eq!(s.len(), 0);
        assert_eq!(s.mem_used(), 0);
    }

    #[test]
    fn pinned_set_rejected_when_pinned_bytes_exhaust_budget() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(cost + 10);
        s.set(b"key0", b"value0", 0, true);
        let (k, v) = kv(1);
        assert_eq!(s.set(&k, &v, 0, true), SetOutcome::OutOfMemory);
        assert!(s.contains(b"key0"));
        // An unpinned entry also cannot fit (only 10 spare bytes).
        assert_eq!(s.set(&k, &v, 0, false), SetOutcome::OutOfMemory);
    }

    #[test]
    fn unpinned_set_can_displace_unpinned_but_not_pinned() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true);
        s.set(b"key1", b"value1", 0, false);
        // key2 fits by evicting key1.
        match s.set(b"key2", b"value2", 0, false) {
            SetOutcome::Stored { evicted } => assert_eq!(evicted, 1),
            o => panic!("{o:?}"),
        }
        assert!(s.contains(b"key0") && s.contains(b"key2") && !s.contains(b"key1"));
    }

    #[test]
    fn delete_frees_memory() {
        let mut s = Shard::new(10_000);
        s.set(b"a", b"1", 0, false);
        s.set(b"b", b"2", 0, true);
        let used = s.mem_used();
        assert!(s.delete(b"a"));
        assert!(s.mem_used() < used);
        assert!(!s.delete(b"a"));
        assert!(s.delete(b"b"), "pinned entries are deletable");
        assert_eq!(s.len(), 0);
        assert_eq!(s.mem_used(), 0);
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut s = Shard::new(10_000);
        s.set(b"a", b"1", 0, false);
        s.delete(b"a");
        s.set(b"b", b"2", 0, false);
        s.set(b"c", b"3", 0, false);
        assert_eq!(s.len(), 2);
        assert_eq!(&s.get(b"b").unwrap().data[..], b"2");
        assert_eq!(&s.get(b"c").unwrap().data[..], b"3");
    }

    #[test]
    fn unpin_via_overwrite() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true);
        s.set(b"key0", b"value0", 0, false); // unpin
        for i in 1..6 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(
            !s.contains(b"key0"),
            "unpinned entry should become evictable"
        );
    }

    #[test]
    fn cas_tokens_change_per_mutation() {
        let mut s = Shard::new(10_000);
        s.set(b"k", b"v1", 0, false);
        let c1 = s.get(b"k").unwrap().cas;
        s.set(b"k", b"v2", 0, false);
        let c2 = s.get(b"k").unwrap().cas;
        assert_ne!(c1, c2);
        // Stale token rejected, fresh token accepted.
        assert_eq!(s.cas(b"k", b"v3", 0, c1, None), CasOutcome::Exists);
        assert_eq!(s.cas(b"k", b"v3", 0, c2, None), CasOutcome::Stored);
        assert_eq!(&s.get(b"k").unwrap().data[..], b"v3");
        assert_eq!(s.cas(b"missing", b"x", 0, 1, None), CasOutcome::NotFound);
    }

    #[test]
    fn add_and_replace_semantics() {
        let mut s = Shard::new(10_000);
        assert!(
            s.replace(b"k", b"v", 0, None).is_none(),
            "replace needs existing"
        );
        assert!(s.add(b"k", b"v1", 0, None).is_some());
        assert!(
            s.add(b"k", b"v2", 0, None).is_none(),
            "add refuses existing"
        );
        assert_eq!(&s.get(b"k").unwrap().data[..], b"v1");
        assert!(s.replace(b"k", b"v3", 0, None).is_some());
        assert_eq!(&s.get(b"k").unwrap().data[..], b"v3");
    }

    #[test]
    fn replace_preserves_pinning() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true);
        s.replace(b"key0", b"value1", 0, None).unwrap();
        for i in 1..6 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(s.contains(b"key0"), "pinning lost through replace");
    }

    #[test]
    fn incr_decr_semantics() {
        let mut s = Shard::new(10_000);
        assert_eq!(s.arith(b"n", 5, false), ArithOutcome::NotFound);
        s.set(b"n", b"10", 0, false);
        assert_eq!(s.arith(b"n", 5, false), ArithOutcome::Value(15));
        assert_eq!(
            s.arith(b"n", 20, true),
            ArithOutcome::Value(0),
            "decr saturates at 0"
        );
        assert_eq!(&s.get(b"n").unwrap().data[..], b"0");
        s.set(b"txt", b"hello", 0, false);
        assert_eq!(s.arith(b"txt", 1, false), ArithOutcome::NonNumeric);
    }

    #[test]
    fn ttl_expiry_is_lazy_but_effective() {
        let mut s = Shard::new(10_000);
        s.set_full(
            b"fleeting",
            b"v",
            0,
            false,
            Some(std::time::Duration::from_millis(15)),
        );
        s.set(b"lasting", b"v", 0, false);
        assert!(s.contains(b"fleeting"));
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!s.contains(b"fleeting"), "expired entry still visible");
        assert!(s.get(b"fleeting").is_none());
        assert!(s.contains(b"lasting"));
        // The lazy removal freed the memory.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn cas_on_expired_entry_is_not_found() {
        let mut s = Shard::new(10_000);
        s.set_full(
            b"k",
            b"v",
            0,
            false,
            Some(std::time::Duration::from_millis(10)),
        );
        let token = s.get(b"k").unwrap().cas;
        std::thread::sleep(std::time::Duration::from_millis(25));
        assert_eq!(s.cas(b"k", b"w", 0, token, None), CasOutcome::NotFound);
    }

    #[test]
    fn incr_preserves_remaining_ttl() {
        let mut s = Shard::new(10_000);
        s.set_full(
            b"n",
            b"1",
            0,
            false,
            Some(std::time::Duration::from_millis(40)),
        );
        assert_eq!(s.arith(b"n", 1, false), ArithOutcome::Value(2));
        std::thread::sleep(std::time::Duration::from_millis(60));
        assert!(s.get(b"n").is_none(), "incr must not clear the expiry");
    }

    #[test]
    fn pin_via_overwrite() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, false);
        s.set(b"key0", b"value0", 0, true); // pin it
        for i in 1..6 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(s.contains(b"key0"), "pinned entry evicted");
    }

    // Memory accounting invariant under random operation sequences:
    // mem_used equals the sum of entry costs, pinned entries survive,
    // and the budget is never exceeded after a successful set.
    proptest! {
        #[test]
        fn accounting_invariants(
            ops in proptest::collection::vec(
                (0u8..3, 0u32..12, 0usize..40, any::<bool>()), 1..120),
            limit in 300usize..1200,
        ) {
            let mut s = Shard::new(limit);
            let mut reference: std::collections::HashMap<Vec<u8>, (usize, bool)> =
                Default::default();
            for (op, keyn, vlen, pinned) in ops {
                let key = format!("k{keyn}").into_bytes();
                match op {
                    0 => {
                        let value = vec![b'x'; vlen];
                        match s.set(&key, &value, 0, pinned) {
                            SetOutcome::Stored { .. } => {
                                reference.insert(key.clone(), (entry_cost(&key, &value), pinned));
                                prop_assert!(s.mem_used() <= limit);
                            }
                            SetOutcome::OutOfMemory => {}
                        }
                    }
                    1 => {
                        let present = s.contains(&key);
                        prop_assert_eq!(s.get(&key).is_some(), present);
                    }
                    _ => {
                        s.delete(&key);
                        reference.remove(&key);
                    }
                }
                // Evictions may have removed unpinned reference entries;
                // prune reference to what the shard still holds and check
                // pinned entries are all still present.
                for (k, (_, pinned)) in reference.iter() {
                    if *pinned {
                        prop_assert!(s.contains(k), "pinned entry lost");
                    }
                }
                reference.retain(|k, _| s.contains(k));
                let expect_used: usize = reference.values().map(|(c, _)| *c).sum();
                prop_assert_eq!(s.mem_used(), expect_used);
                prop_assert_eq!(s.len(), reference.len());
            }
        }
    }
}
