//! One store shard: a byte-budgeted LRU hash table with pinning, CAS,
//! arithmetic operations and TTL expiry — the memcached feature surface
//! the paper's §IV atomic-operation schemes build on.
//!
//! All time comes from an injected [`Clock`]: expiry is a pure function
//! of the clock's ticks (see INVARIANTS.md "Clock invariant"), so TTL
//! behaviour is fully deterministic under a
//! [`TestClock`](crate::clock::TestClock) and the xtask R2 lint keeps
//! this file wall-clock-free.
//!
//! Lookups go through [`KeyIndex`], an open-addressed slot index keyed by
//! a precomputed xxh64 of the key. The same hash the parent
//! [`Store`](crate::Store) computes to route a key to a shard is reused
//! for the in-shard probe, so the batched read path
//! ([`Shard::get_many`]) hashes every key exactly once end to end.

use crate::clock::{duration_to_ticks, Clock, Tick};
use rnb_hash::xxhash::xxh64;
use std::sync::Arc;
use std::time::Duration;

const NIL: usize = usize::MAX;

/// Seed for key hashing. Chosen once; must differ from placement seeds so
/// shard choice does not correlate with RnB server choice in tests.
pub(crate) const KEY_HASH_SEED: u64 = 0x5348_4152_4421;

/// The one hash every key pays: the store's shard selection *and* the
/// in-shard index probe both consume this value.
pub(crate) fn key_hash(key: &[u8]) -> u64 {
    xxh64(key, KEY_HASH_SEED)
}

/// Fixed bookkeeping cost charged per entry on top of key/value bytes
/// (hash-table slot, list links, refcount — memcached charges ~50–60
/// bytes similarly).
pub const ENTRY_OVERHEAD: usize = 64;

/// Result of a `set`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOutcome {
    /// Stored; `evicted` entries were dropped to make room.
    Stored {
        /// Number of live LRU entries evicted by this set (expired
        /// entries reclaimed on the way are not counted — they were
        /// already dead).
        evicted: usize,
    },
    /// The entry cannot fit even after evicting every unpinned entry.
    OutOfMemory,
}

/// Result of a `cas` (compare-and-swap) — memcached semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CasOutcome {
    /// The token matched; the value was replaced.
    Stored,
    /// The entry changed since the token was issued.
    Exists,
    /// No such entry.
    NotFound,
    /// The replacement does not fit in memory.
    OutOfMemory,
}

/// Result of `incr`/`decr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOutcome {
    /// New value after the operation.
    Value(u64),
    /// No such entry (memcached does not auto-create on incr).
    NotFound,
    /// The stored value is not an unsigned decimal integer.
    NonNumeric,
}

/// A value as returned by `get`: cheaply clonable bytes plus the
/// client-opaque flags word memcached round-trips and the CAS token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Value {
    /// The stored bytes.
    pub data: Arc<[u8]>,
    /// Opaque flags stored with the value.
    pub flags: u32,
    /// Compare-and-swap token: changes on every successful mutation.
    pub cas: u64,
}

#[derive(Debug, Clone)]
struct Node {
    key: Box<[u8]>,
    value: Arc<[u8]>,
    /// [`key_hash`] of `key`, stored so probes compare 8 bytes before
    /// touching key bytes and rehashes never recompute.
    hash: u64,
    flags: u32,
    cas: u64,
    expires_at: Option<Tick>,
    pinned: bool,
    prev: usize,
    next: usize,
}

impl Node {
    fn expired(&self, now: Tick) -> bool {
        self.expires_at.is_some_and(|t| t <= now)
    }
}

/// Bucket value: no entry here, probe chains may stop.
const EMPTY: usize = 0;
/// Bucket value: an entry was removed here, probe chains continue.
const TOMB: usize = 1;
/// Multiplier spreading the stored hash across bucket space (Fibonacci
/// hashing). Needed because all keys in one shard share their low hash
/// bits (the parent store routed them here by `hash & shard_mask`), so
/// raw low bits would cluster pathologically.
const SPREAD: u64 = 0x9E37_79B9_7F4A_7C15;

fn probe_start(hash: u64, mask: usize) -> usize {
    // The multiply-shift keeps only well-mixed upper product bits, which
    // shards do not share.
    ((hash.wrapping_mul(SPREAD) >> 32) as usize) & mask
}

/// Open-addressed (linear-probe, tombstone) index from key hash to node
/// slot: the map half of the classic "hash table + intrusive LRU list"
/// pair. The hash is computed by the caller exactly once and stored in
/// the node, which is what lets [`Shard::get_many`] skip per-key
/// rehashing entirely.
#[derive(Debug, Default, Clone)]
struct KeyIndex {
    /// `EMPTY`, `TOMB`, or `slot + 2`. Length is a power of two (or zero
    /// before the first insert); at least one bucket is always `EMPTY`,
    /// so probe loops terminate.
    buckets: Vec<usize>,
    /// Live entries.
    live: usize,
    /// Tombstones left by removals (cleared on rehash).
    tombs: usize,
}

impl KeyIndex {
    fn len(&self) -> usize {
        self.live
    }

    /// Find the node slot holding `key` (whose [`key_hash`] is `hash`).
    fn find(&self, hash: u64, key: &[u8], nodes: &[Node]) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut i = probe_start(hash, mask);
        loop {
            match self.buckets[i] {
                EMPTY => return None,
                TOMB => {}
                v => {
                    let slot = v - 2;
                    if nodes[slot].hash == hash && *nodes[slot].key == *key {
                        return Some(slot);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `slot` under `hash`. The key must be absent — callers
    /// always [`find`](KeyIndex::find) first; a duplicate insert would
    /// shadow the existing entry.
    fn insert(&mut self, hash: u64, slot: usize, nodes: &[Node]) {
        self.maybe_grow(nodes);
        let mask = self.buckets.len() - 1;
        let mut i = probe_start(hash, mask);
        loop {
            match self.buckets[i] {
                EMPTY => {
                    self.buckets[i] = slot + 2;
                    self.live += 1;
                    return;
                }
                TOMB => {
                    self.buckets[i] = slot + 2;
                    self.tombs -= 1;
                    self.live += 1;
                    return;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Remove the bucket pointing at `slot` (`hash` is the node's stored
    /// hash, so the probe starts on the right chain).
    fn remove_slot(&mut self, hash: u64, slot: usize) {
        if self.buckets.is_empty() {
            return;
        }
        let mask = self.buckets.len() - 1;
        let mut i = probe_start(hash, mask);
        loop {
            match self.buckets[i] {
                EMPTY => {
                    debug_assert!(false, "KeyIndex: removed slot not on its probe chain");
                    return;
                }
                v if v == slot + 2 => {
                    self.buckets[i] = TOMB;
                    self.live -= 1;
                    self.tombs += 1;
                    return;
                }
                _ => i = (i + 1) & mask,
            }
        }
    }

    /// Iterate the node slots of every live entry (arbitrary order).
    fn slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.buckets.iter().filter_map(|&v| v.checked_sub(2))
    }

    /// Grow/rehash so at least one bucket stays `EMPTY` and probe chains
    /// stay short: rebuild once occupancy (live + tombstones) reaches
    /// 7/8, sizing so live load lands at ≤ 3/4.
    fn maybe_grow(&mut self, nodes: &[Node]) {
        let cap = self.buckets.len();
        if cap == 0 {
            self.buckets = vec![EMPTY; 8];
            return;
        }
        if (self.live + self.tombs + 1) * 8 <= cap * 7 {
            return;
        }
        let mut new_cap = cap;
        while (self.live + 1) * 4 > new_cap * 3 {
            new_cap *= 2;
        }
        let mask = new_cap - 1;
        let mut fresh = vec![EMPTY; new_cap];
        for &v in &self.buckets {
            let Some(slot) = v.checked_sub(2) else {
                continue;
            };
            let mut i = probe_start(nodes[slot].hash, mask);
            while fresh[i] != EMPTY {
                i = (i + 1) & mask;
            }
            fresh[i] = v;
        }
        self.buckets = fresh;
        self.tombs = 0;
    }
}

/// A single-threaded LRU hash table with a byte budget. Pinned entries
/// never appear on the LRU list and are never evicted (they back RnB's
/// distinguished copies).
#[derive(Debug)]
pub struct Shard {
    index: KeyIndex,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    mem_used: usize,
    /// Bytes held by unpinned (evictable) entries — kept in sync so fit
    /// checks are O(1).
    unpinned_bytes: usize,
    mem_limit: usize,
    /// Monotonic CAS-token source.
    cas_counter: u64,
    /// Injected time source; every expiry decision reads this.
    clock: Clock,
}

fn entry_cost(key: &[u8], value: &[u8]) -> usize {
    key.len() + value.len() + ENTRY_OVERHEAD
}

impl Shard {
    /// A shard with a byte budget, expiring against real time.
    pub fn new(mem_limit: usize) -> Self {
        Self::with_clock(mem_limit, Clock::real())
    }

    /// A shard whose TTL expiry reads `clock` — pass a
    /// [`TestClock`](crate::clock::TestClock)-backed clock to drive
    /// expiry deterministically.
    pub fn with_clock(mem_limit: usize, clock: Clock) -> Self {
        Shard {
            index: KeyIndex::default(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            mem_used: 0,
            unpinned_bytes: 0,
            mem_limit,
            cas_counter: 0,
            clock,
        }
    }

    /// Entries resident (expired entries linger until a lookup, a
    /// [`sweep_expired`](Shard::sweep_expired) or memory pressure
    /// reclaims them).
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.index.len() == 0
    }

    /// Bytes accounted as used.
    pub fn mem_used(&self) -> usize {
        self.mem_used
    }

    /// The byte budget.
    pub fn mem_limit(&self) -> usize {
        self.mem_limit
    }

    /// Single-key lookup step shared by [`get`](Shard::get) and
    /// [`get_many`](Shard::get_many): resolve, lazily expire, promote
    /// unpinned hits, clone the value out.
    fn get_at(&mut self, hash: u64, key: &[u8], now: Tick) -> Option<Value> {
        let idx = self.index.find(hash, key, &self.nodes)?;
        if self.nodes[idx].expired(now) {
            self.remove_slot(idx);
            return None;
        }
        if !self.nodes[idx].pinned {
            self.unlink(idx);
            self.push_front(idx);
        }
        Some(Value {
            data: Arc::clone(&self.nodes[idx].value),
            flags: self.nodes[idx].flags,
            cas: self.nodes[idx].cas,
        })
    }

    /// Look up `key`, promoting unpinned hits to most-recently-used.
    /// Expired entries are removed lazily and report as misses.
    pub fn get(&mut self, key: &[u8]) -> Option<Value> {
        let now = self.clock.now();
        self.get_at(key_hash(key), key, now)
    }

    /// Batched lookup: one clock read and one pass for the whole batch,
    /// writing each result to `out[pos]` for its `(hash, key, pos)`
    /// triple. `hash` must be [`key_hash`] of `key` — the store passes
    /// the value it already computed for shard routing, so the batch
    /// path hashes each key once in total. Positions outside `out` are
    /// ignored. Returns the number of hits.
    pub(crate) fn get_many<'k, I>(&mut self, batch: I, out: &mut [Option<Value>]) -> usize
    where
        I: IntoIterator<Item = (u64, &'k [u8], usize)>,
    {
        let now = self.clock.now();
        let mut hits = 0;
        for (hash, key, pos) in batch {
            let value = self.get_at(hash, key, now);
            hits += usize::from(value.is_some());
            if let Some(out_slot) = out.get_mut(pos) {
                *out_slot = value;
            }
        }
        hits
    }

    /// Non-mutating single-key lookup: resolves against the index and
    /// the given tick without LRU promotion and without reclaiming
    /// expired entries. This is the read replicas' serving step
    /// ([`peek_many`](Shard::peek_many)) — replicas must stay a pure
    /// function of the applied operation log, so reads may not mutate.
    pub(crate) fn peek_at(&self, hash: u64, key: &[u8], now: Tick) -> Option<Value> {
        let idx = self.index.find(hash, key, &self.nodes)?;
        if self.nodes[idx].expired(now) {
            return None;
        }
        Some(Value {
            data: Arc::clone(&self.nodes[idx].value),
            flags: self.nodes[idx].flags,
            cas: self.nodes[idx].cas,
        })
    }

    /// Batched non-mutating lookup: the replica-read counterpart of
    /// [`get_many`](Shard::get_many). Same `(hash, key, pos)` batch
    /// contract and one clock read per batch, but takes `&self`: no LRU
    /// promotion and no lazy expiry removal, so concurrent replica
    /// readers only need a shared data guard and replica state remains
    /// determined by the log alone. Returns the number of hits.
    pub(crate) fn peek_many<'k, I>(&self, batch: I, out: &mut [Option<Value>]) -> usize
    where
        I: IntoIterator<Item = (u64, &'k [u8], usize)>,
    {
        let now = self.clock.now();
        let mut hits = 0;
        for (hash, key, pos) in batch {
            let value = self.peek_at(hash, key, now);
            hits += usize::from(value.is_some());
            if let Some(out_slot) = out.get_mut(pos) {
                *out_slot = value;
            }
        }
        hits
    }

    /// Presence probe without LRU promotion (expired entries report
    /// absent but are left for lazy removal).
    pub fn contains(&self, key: &[u8]) -> bool {
        let now = self.clock.now();
        self.contains_at(key, now)
    }

    /// [`contains`](Shard::contains) against an explicit tick.
    pub(crate) fn contains_at(&self, key: &[u8], now: Tick) -> bool {
        self.index
            .find(key_hash(key), key, &self.nodes)
            .is_some_and(|idx| !self.nodes[idx].expired(now))
    }

    /// The current tick of the injected clock: the batched write path
    /// reads it once per touched shard (every entry of the sub-batch
    /// shares the tick), and test oracles drive
    /// [`Dispatch`](crate::replicated::Dispatch) at an explicit tick.
    pub(crate) fn now(&self) -> Tick {
        self.clock.now()
    }

    /// A handle to the shard's injected clock (clones share the
    /// timeline), used when promoting the shard to a replicated hot
    /// shard so log ticks come from the same time source.
    pub(crate) fn clock_handle(&self) -> Clock {
        self.clock.clone()
    }

    /// A deep copy of this shard for use as a read replica: same
    /// entries, same LRU order, same CAS counter, same clock timeline.
    /// Because the copy and the original agree on every piece of state
    /// an operation consults, replaying the same operation log against
    /// both yields identical outcomes — the log/replica consistency
    /// invariant (INVARIANTS.md).
    pub(crate) fn replica_copy(&self) -> Shard {
        let copy = Shard {
            index: self.index.clone(),
            nodes: self.nodes.clone(),
            free: self.free.clone(),
            head: self.head,
            tail: self.tail,
            mem_used: self.mem_used,
            unpinned_bytes: self.unpinned_bytes,
            mem_limit: self.mem_limit,
            cas_counter: self.cas_counter,
            clock: self.clock.clone(),
        };
        debug_assert_eq!(
            copy.len(),
            self.len(),
            "replica copy must preserve the entry count"
        );
        copy
    }

    /// Store `key` → `value`, evicting LRU entries as needed.
    pub fn set(&mut self, key: &[u8], value: &[u8], flags: u32, pinned: bool) -> SetOutcome {
        self.set_full(key, value, flags, pinned, None)
    }

    /// [`Shard::set`] with an optional TTL (memcached `exptime`). A zero
    /// TTL stores an already-expired entry (memcached's negative-exptime
    /// semantics: stored, then immediately invisible).
    pub fn set_full(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        pinned: bool,
        ttl: Option<Duration>,
    ) -> SetOutcome {
        let now = self.clock.now();
        self.set_full_at(key, value, flags, pinned, ttl, now)
    }

    /// [`set_full`](Shard::set_full) against an explicit tick. The
    /// replicated write path records one tick per combined batch and
    /// replays every operation in the batch at that tick, so primary and
    /// replicas make identical TTL/eviction decisions.
    pub(crate) fn set_full_at(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        pinned: bool,
        ttl: Option<Duration>,
        now: Tick,
    ) -> SetOutcome {
        self.set_full_hashed(key_hash(key), key, value, flags, pinned, ttl, now)
    }

    /// [`set_full_at`](Shard::set_full_at) with the key's hash supplied
    /// by the caller. The batched write path hashes every key once while
    /// grouping it by shard (mirroring [`get_many`](Shard::get_many)'s
    /// `(hash, key, pos)` contract), so re-hashing here would double the
    /// per-key hashing cost of a burst.
    #[allow(clippy::too_many_arguments)] // set_full_at's surface plus the precomputed hash
    pub(crate) fn set_full_hashed(
        &mut self,
        hash: u64,
        key: &[u8],
        value: &[u8],
        flags: u32,
        pinned: bool,
        ttl: Option<Duration>,
        now: Tick,
    ) -> SetOutcome {
        debug_assert_eq!(hash, key_hash(key), "caller-supplied hash mismatch");
        let new_cost = entry_cost(key, value);
        let expires_at = ttl.map(|d| now.saturating_add(duration_to_ticks(d)));

        // An expired entry under this key is reclaimed up front, so the
        // overwrite path below only ever sees live entries and the store
        // behaves exactly as if the entry had already been swept.
        let mut existing = self.index.find(hash, key, &self.nodes);
        if let Some(idx) = existing {
            if self.nodes[idx].expired(now) {
                self.remove_slot(idx);
                existing = None;
            }
        }

        if let Some(idx) = existing {
            // Overwrite. Fit check: everything except this entry and other
            // pinned entries is evictable; expired entries are reclaimed
            // before concluding the write cannot fit.
            if self.overwrite_would_oom(idx, new_cost) {
                self.sweep_expired_except(now, idx);
                if self.overwrite_would_oom(idx, new_cost) {
                    return SetOutcome::OutOfMemory;
                }
            }
            let old_cost = entry_cost(&self.nodes[idx].key, &self.nodes[idx].value);
            self.mem_used = self.mem_used - old_cost + new_cost;
            if !self.nodes[idx].pinned {
                self.unpinned_bytes -= old_cost;
                self.unlink(idx);
            }
            self.cas_counter += 1;
            let node = &mut self.nodes[idx];
            // Same-length overwrite with no outstanding Value clones can
            // reuse the allocation in place — this keeps a steady-state
            // `set` loop allocation-free. Outstanding clones force a
            // fresh Arc (they must keep observing the old bytes).
            match Arc::get_mut(&mut node.value) {
                Some(buf) if buf.len() == value.len() => buf.copy_from_slice(value),
                _ => node.value = Arc::from(value),
            }
            node.flags = flags;
            node.pinned = pinned;
            node.cas = self.cas_counter;
            node.expires_at = expires_at;
            if !pinned {
                self.unpinned_bytes += new_cost;
                self.push_front(idx);
            }
            let evicted = self.evict_to_fit(idx, now);
            return SetOutcome::Stored { evicted };
        }

        // New entry. Irreducible bytes = pinned bytes (+ the new entry).
        // Expired pinned entries are never evictable, so they are swept
        // before an insert is refused for memory.
        if self.mem_used - self.unpinned_bytes + new_cost > self.mem_limit {
            self.sweep_expired_except(now, NIL);
            if self.mem_used - self.unpinned_bytes + new_cost > self.mem_limit {
                return SetOutcome::OutOfMemory;
            }
        }
        self.cas_counter += 1;
        let idx = self.alloc(Node {
            key: Box::from(key),
            value: Arc::from(value),
            hash,
            flags,
            cas: self.cas_counter,
            expires_at,
            pinned,
            prev: NIL,
            next: NIL,
        });
        self.index.insert(hash, idx, &self.nodes);
        self.mem_used += new_cost;
        if !pinned {
            self.unpinned_bytes += new_cost;
            self.push_front(idx);
        }
        let evicted = self.evict_to_fit(idx, now);
        SetOutcome::Stored { evicted }
    }

    /// Would overwriting `idx` with a `new_cost`-byte entry exceed the
    /// budget even after evicting every other unpinned entry?
    fn overwrite_would_oom(&self, idx: usize, new_cost: usize) -> bool {
        let node = &self.nodes[idx];
        let old_cost = entry_cost(&node.key, &node.value);
        let other_unpinned = self.unpinned_bytes - if node.pinned { 0 } else { old_cost };
        let other_pinned = self.mem_used - old_cost - other_unpinned;
        other_pinned + new_cost > self.mem_limit
    }

    /// `add`: store only if `key` is absent (memcached semantics).
    /// Returns `None` if the key already exists.
    pub fn add(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        let now = self.clock.now();
        self.add_at(key, value, flags, ttl, now)
    }

    /// [`add`](Shard::add) against an explicit tick.
    pub(crate) fn add_at(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
        now: Tick,
    ) -> Option<SetOutcome> {
        if self.contains_at(key, now) {
            return None;
        }
        Some(self.set_full_at(key, value, flags, false, ttl, now))
    }

    /// `replace`: store only if `key` is present. Returns `None` if the
    /// key does not exist.
    pub fn replace(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
    ) -> Option<SetOutcome> {
        let now = self.clock.now();
        self.replace_at(key, value, flags, ttl, now)
    }

    /// [`replace`](Shard::replace) against an explicit tick.
    pub(crate) fn replace_at(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        ttl: Option<Duration>,
        now: Tick,
    ) -> Option<SetOutcome> {
        if !self.contains_at(key, now) {
            return None;
        }
        // Preserve the pinned status on replace.
        let pinned = self
            .index
            .find(key_hash(key), key, &self.nodes)
            .map(|idx| self.nodes[idx].pinned)
            .unwrap_or(false);
        Some(self.set_full_at(key, value, flags, pinned, ttl, now))
    }

    /// `cas`: replace only if the entry's token still equals `token`.
    pub fn cas(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        token: u64,
        ttl: Option<Duration>,
    ) -> CasOutcome {
        let now = self.clock.now();
        self.cas_at(key, value, flags, token, ttl, now)
    }

    /// [`cas`](Shard::cas) against an explicit tick.
    pub(crate) fn cas_at(
        &mut self,
        key: &[u8],
        value: &[u8],
        flags: u32,
        token: u64,
        ttl: Option<Duration>,
        now: Tick,
    ) -> CasOutcome {
        match self.index.find(key_hash(key), key, &self.nodes) {
            None => CasOutcome::NotFound,
            Some(idx) if self.nodes[idx].expired(now) => {
                self.remove_slot(idx);
                CasOutcome::NotFound
            }
            Some(idx) => {
                if self.nodes[idx].cas != token {
                    return CasOutcome::Exists;
                }
                let pinned = self.nodes[idx].pinned;
                match self.set_full_at(key, value, flags, pinned, ttl, now) {
                    SetOutcome::Stored { .. } => CasOutcome::Stored,
                    SetOutcome::OutOfMemory => CasOutcome::OutOfMemory,
                }
            }
        }
    }

    /// `incr`/`decr`: treat the value as an ASCII unsigned decimal and
    /// add `delta` (saturating at 0 for decrements, wrapping at `u64` for
    /// increments — memcached semantics). The remaining TTL is preserved
    /// exactly in clock ticks.
    pub fn arith(&mut self, key: &[u8], delta: u64, negative: bool) -> ArithOutcome {
        let now = self.clock.now();
        self.arith_at(key, delta, negative, now)
    }

    /// [`arith`](Shard::arith) against an explicit tick: the lookup, the
    /// TTL-remaining computation and the rewrite all use the same `now`,
    /// so a log replay reproduces the exact stored deadline.
    pub(crate) fn arith_at(
        &mut self,
        key: &[u8],
        delta: u64,
        negative: bool,
        now: Tick,
    ) -> ArithOutcome {
        let Some(current) = self.get_at(key_hash(key), key, now) else {
            return ArithOutcome::NotFound;
        };
        let Ok(text) = std::str::from_utf8(&current.data) else {
            return ArithOutcome::NonNumeric;
        };
        let Ok(n) = text.trim().parse::<u64>() else {
            return ArithOutcome::NonNumeric;
        };
        let next = if negative {
            n.saturating_sub(delta)
        } else {
            n.wrapping_add(delta)
        };
        let rendered = next.to_string();
        let (pinned, ttl_left) = match self.index.find(key_hash(key), key, &self.nodes) {
            Some(idx) => (
                self.nodes[idx].pinned,
                self.nodes[idx]
                    .expires_at
                    .map(|t| Duration::from_nanos(t.saturating_sub(now))),
            ),
            None => (false, None),
        };
        match self.set_full_at(
            key,
            rendered.as_bytes(),
            current.flags,
            pinned,
            ttl_left,
            now,
        ) {
            SetOutcome::Stored { .. } => ArithOutcome::Value(next),
            // A numeric value is never larger than what it replaces by
            // more than a few bytes; OOM here means the shard is pathological.
            SetOutcome::OutOfMemory => ArithOutcome::NonNumeric,
        }
    }

    /// Delete `key`; true if it was present.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        self.delete_hashed(key_hash(key), key)
    }

    /// [`delete`](Shard::delete) with the key's hash supplied by the
    /// caller (the batched delete path hashes each key once while
    /// grouping by shard).
    pub(crate) fn delete_hashed(&mut self, hash: u64, key: &[u8]) -> bool {
        debug_assert_eq!(hash, key_hash(key), "caller-supplied hash mismatch");
        match self.index.find(hash, key, &self.nodes) {
            Some(idx) => {
                self.remove_slot(idx);
                true
            }
            None => false,
        }
    }

    /// Drop slot `idx` entirely: index entry, byte accounting, LRU
    /// membership, node storage.
    fn remove_slot(&mut self, idx: usize) {
        self.index.remove_slot(self.nodes[idx].hash, idx);
        let cost = entry_cost(&self.nodes[idx].key, &self.nodes[idx].value);
        self.mem_used -= cost;
        if !self.nodes[idx].pinned {
            self.unpinned_bytes -= cost;
            self.unlink(idx);
        }
        self.release(idx);
    }

    /// Eagerly reclaim every expired entry — pinned ones included, which
    /// lazy lookup-path removal never reaches on its own. Returns how
    /// many entries were reclaimed; `len()` and `mem_used()` reflect the
    /// sweep immediately.
    pub fn sweep_expired(&mut self) -> usize {
        let now = self.clock.now();
        self.sweep_expired_except(now, NIL)
    }

    /// [`sweep_expired`](Shard::sweep_expired) skipping slot `protect`
    /// (`NIL` protects nothing): the entry a `set` just wrote may itself
    /// carry a zero TTL, and eviction must never drop the entry being
    /// stored.
    fn sweep_expired_except(&mut self, now: Tick, protect: usize) -> usize {
        let expired: Vec<usize> = self
            .index
            .slots()
            .filter(|&idx| idx != protect && self.nodes[idx].expired(now))
            .collect();
        for &idx in &expired {
            self.remove_slot(idx);
        }
        expired.len()
    }

    fn alloc(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        }
    }

    fn release(&mut self, idx: usize) {
        self.nodes[idx].key = Box::from(&b""[..]);
        self.nodes[idx].value = Arc::from(&b""[..]);
        self.free.push(idx);
    }

    /// Evict entries (never `protect`) until within budget: expired
    /// entries anywhere in the shard are reclaimed first, then live LRU
    /// entries from the tail. Returns how many **live** entries were
    /// evicted.
    fn evict_to_fit(&mut self, protect: usize, now: Tick) -> usize {
        if self.mem_used <= self.mem_limit {
            return 0;
        }
        // Dead entries must never force live data out: reclaim them
        // before touching the LRU tail (§V overbooking relies on LRUs
        // dropping *cold* replicas, not fresh ones). `now` is the tick
        // the enclosing write runs at, so log replays evict identically.
        self.sweep_expired_except(now, protect);
        let mut evicted = 0;
        while self.mem_used > self.mem_limit && self.tail != NIL {
            let victim = if self.tail == protect {
                self.nodes[self.tail].prev
            } else {
                self.tail
            };
            if victim == NIL {
                break;
            }
            self.remove_slot(victim);
            evicted += 1;
        }
        evicted
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use proptest::prelude::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key{i}").into_bytes(),
            format!("value{i}").into_bytes(),
        )
    }

    /// A shard on a virtual timeline plus the handle that advances it.
    fn shard_with_clock(mem_limit: usize) -> (Shard, TestClock) {
        let clock = TestClock::new();
        (Shard::with_clock(mem_limit, clock.clone().into()), clock)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut s = Shard::new(10_000);
        let (k, v) = kv(1);
        assert_eq!(s.set(&k, &v, 42, false), SetOutcome::Stored { evicted: 0 });
        let got = s.get(&k).unwrap();
        assert_eq!(&got.data[..], &v[..]);
        assert_eq!(got.flags, 42);
        assert!(s.get(b"missing").is_none());
    }

    #[test]
    fn overwrite_updates_value_and_memory() {
        let mut s = Shard::new(10_000);
        s.set(b"k", b"short", 0, false);
        let used_short = s.mem_used();
        s.set(b"k", b"a-much-longer-value", 7, false);
        assert!(s.mem_used() > used_short);
        assert_eq!(s.len(), 1);
        assert_eq!(&s.get(b"k").unwrap().data[..], b"a-much-longer-value");
        assert_eq!(s.get(b"k").unwrap().flags, 7);
        s.set(b"k", b"x", 0, false);
        assert!(s.mem_used() < used_short);
    }

    #[test]
    fn same_length_overwrite_keeps_old_clones_intact() {
        // The in-place Arc reuse must never mutate bytes a Value clone
        // still observes.
        let mut s = Shard::new(10_000);
        s.set(b"k", b"aaaa", 0, false);
        let held = s.get(b"k").unwrap();
        s.set(b"k", b"bbbb", 0, false);
        assert_eq!(&held.data[..], b"aaaa", "old clone mutated in place");
        assert_eq!(&s.get(b"k").unwrap().data[..], b"bbbb");
        // With no clone outstanding the same-length overwrite reuses the
        // allocation (observable only via the alloc-counter test, but the
        // semantics must hold either way).
        drop(held);
        s.set(b"k", b"cccc", 7, false);
        let got = s.get(b"k").unwrap();
        assert_eq!(&got.data[..], b"cccc");
        assert_eq!(got.flags, 7);
    }

    #[test]
    fn get_many_matches_get_and_fills_positions() {
        let mut s = Shard::new(10_000);
        for i in 0..8 {
            let (k, v) = kv(i);
            s.set(&k, &v, i, false);
        }
        // Out-of-order positions, one miss, one duplicate key.
        let keys: Vec<Vec<u8>> = vec![
            b"key3".to_vec(),
            b"missing".to_vec(),
            b"key0".to_vec(),
            b"key3".to_vec(),
        ];
        let batch: Vec<(u64, &[u8], usize)> = keys
            .iter()
            .enumerate()
            .map(|(pos, k)| (key_hash(k), k.as_slice(), pos))
            .collect();
        let mut out = vec![None, None, None, None];
        let hits = s.get_many(batch, &mut out);
        assert_eq!(hits, 3);
        assert_eq!(&out[0].as_ref().unwrap().data[..], b"value3");
        assert!(out[1].is_none());
        assert_eq!(&out[2].as_ref().unwrap().data[..], b"value0");
        assert_eq!(&out[3].as_ref().unwrap().data[..], b"value3");
        // Results agree with the single-key path.
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(s.get(k), out[i].clone());
        }
    }

    #[test]
    fn get_many_expires_lazily_like_get() {
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"t", b"v", 0, false, Some(Duration::from_secs(1)));
        s.set(b"p", b"w", 0, false);
        clock.advance(Duration::from_secs(2));
        let mut out = vec![None, None];
        let hits = s.get_many(
            vec![
                (key_hash(b"t"), &b"t"[..], 0),
                (key_hash(b"p"), &b"p"[..], 1),
            ],
            &mut out,
        );
        assert_eq!(hits, 1);
        assert!(out[0].is_none());
        assert!(out[1].is_some());
        assert_eq!(s.len(), 1, "expired entry reclaimed by the batch path");
    }

    #[test]
    fn index_survives_insert_delete_churn() {
        // Tombstone reuse and rehash under repeated fill/drain cycles.
        let mut s = Shard::new(1 << 20);
        for round in 0..4u32 {
            for i in 0..300u32 {
                let k = format!("r{round}-k{i}").into_bytes();
                assert!(matches!(
                    s.set(&k, b"v", 0, false),
                    SetOutcome::Stored { .. }
                ));
            }
            for i in 0..300u32 {
                let k = format!("r{round}-k{i}").into_bytes();
                assert!(s.contains(&k), "{round}/{i} lost after churn");
                assert!(s.delete(&k));
            }
            assert_eq!(s.len(), 0);
            assert_eq!(s.mem_used(), 0);
        }
    }

    #[test]
    fn eviction_is_lru_order() {
        // Budget for ~3 small entries.
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(3 * cost);
        for i in 0..3 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert_eq!(s.len(), 3);
        // Touch key0 so key1 is LRU.
        s.get(b"key0");
        let (k, v) = kv(3);
        match s.set(&k, &v, 0, false) {
            SetOutcome::Stored { evicted } => assert_eq!(evicted, 1),
            o => panic!("{o:?}"),
        }
        assert!(s.contains(b"key0"));
        assert!(!s.contains(b"key1"), "key1 should be evicted");
        assert!(s.contains(b"key2") && s.contains(b"key3"));
        assert!(s.mem_used() <= s.mem_limit());
    }

    #[test]
    fn pinned_entries_survive_pressure() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true); // pinned
        for i in 1..10 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(s.contains(b"key0"), "pinned entry evicted");
        assert!(s.mem_used() <= s.mem_limit());
        assert_eq!(&s.get(b"key0").unwrap().data[..], b"value0");
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut s = Shard::new(100);
        let big = vec![0u8; 200];
        assert_eq!(s.set(b"big", &big, 0, false), SetOutcome::OutOfMemory);
        assert_eq!(s.len(), 0);
        assert_eq!(s.mem_used(), 0);
    }

    #[test]
    fn pinned_set_rejected_when_pinned_bytes_exhaust_budget() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(cost + 10);
        s.set(b"key0", b"value0", 0, true);
        let (k, v) = kv(1);
        assert_eq!(s.set(&k, &v, 0, true), SetOutcome::OutOfMemory);
        assert!(s.contains(b"key0"));
        // An unpinned entry also cannot fit (only 10 spare bytes).
        assert_eq!(s.set(&k, &v, 0, false), SetOutcome::OutOfMemory);
    }

    #[test]
    fn unpinned_set_can_displace_unpinned_but_not_pinned() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true);
        s.set(b"key1", b"value1", 0, false);
        // key2 fits by evicting key1.
        match s.set(b"key2", b"value2", 0, false) {
            SetOutcome::Stored { evicted } => assert_eq!(evicted, 1),
            o => panic!("{o:?}"),
        }
        assert!(s.contains(b"key0") && s.contains(b"key2") && !s.contains(b"key1"));
    }

    #[test]
    fn delete_frees_memory() {
        let mut s = Shard::new(10_000);
        s.set(b"a", b"1", 0, false);
        s.set(b"b", b"2", 0, true);
        let used = s.mem_used();
        assert!(s.delete(b"a"));
        assert!(s.mem_used() < used);
        assert!(!s.delete(b"a"));
        assert!(s.delete(b"b"), "pinned entries are deletable");
        assert_eq!(s.len(), 0);
        assert_eq!(s.mem_used(), 0);
    }

    #[test]
    fn slot_reuse_after_delete() {
        let mut s = Shard::new(10_000);
        s.set(b"a", b"1", 0, false);
        s.delete(b"a");
        s.set(b"b", b"2", 0, false);
        s.set(b"c", b"3", 0, false);
        assert_eq!(s.len(), 2);
        assert_eq!(&s.get(b"b").unwrap().data[..], b"2");
        assert_eq!(&s.get(b"c").unwrap().data[..], b"3");
    }

    #[test]
    fn unpin_via_overwrite() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true);
        s.set(b"key0", b"value0", 0, false); // unpin
        for i in 1..6 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(
            !s.contains(b"key0"),
            "unpinned entry should become evictable"
        );
    }

    #[test]
    fn cas_tokens_change_per_mutation() {
        let mut s = Shard::new(10_000);
        s.set(b"k", b"v1", 0, false);
        let c1 = s.get(b"k").unwrap().cas;
        s.set(b"k", b"v2", 0, false);
        let c2 = s.get(b"k").unwrap().cas;
        assert_ne!(c1, c2);
        // Stale token rejected, fresh token accepted.
        assert_eq!(s.cas(b"k", b"v3", 0, c1, None), CasOutcome::Exists);
        assert_eq!(s.cas(b"k", b"v3", 0, c2, None), CasOutcome::Stored);
        assert_eq!(&s.get(b"k").unwrap().data[..], b"v3");
        assert_eq!(s.cas(b"missing", b"x", 0, 1, None), CasOutcome::NotFound);
    }

    #[test]
    fn add_and_replace_semantics() {
        let mut s = Shard::new(10_000);
        assert!(
            s.replace(b"k", b"v", 0, None).is_none(),
            "replace needs existing"
        );
        assert!(s.add(b"k", b"v1", 0, None).is_some());
        assert!(
            s.add(b"k", b"v2", 0, None).is_none(),
            "add refuses existing"
        );
        assert_eq!(&s.get(b"k").unwrap().data[..], b"v1");
        assert!(s.replace(b"k", b"v3", 0, None).is_some());
        assert_eq!(&s.get(b"k").unwrap().data[..], b"v3");
    }

    #[test]
    fn replace_preserves_pinning() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, true);
        s.replace(b"key0", b"value1", 0, None).unwrap();
        for i in 1..6 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(s.contains(b"key0"), "pinning lost through replace");
    }

    #[test]
    fn incr_decr_semantics() {
        let mut s = Shard::new(10_000);
        assert_eq!(s.arith(b"n", 5, false), ArithOutcome::NotFound);
        s.set(b"n", b"10", 0, false);
        assert_eq!(s.arith(b"n", 5, false), ArithOutcome::Value(15));
        assert_eq!(
            s.arith(b"n", 20, true),
            ArithOutcome::Value(0),
            "decr saturates at 0"
        );
        assert_eq!(&s.get(b"n").unwrap().data[..], b"0");
        s.set(b"txt", b"hello", 0, false);
        assert_eq!(s.arith(b"txt", 1, false), ArithOutcome::NonNumeric);
    }

    // ---- TTL behaviour, all on virtual time: no sleeps, no flakiness ----

    #[test]
    fn ttl_expiry_is_lazy_but_effective() {
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"fleeting", b"v", 0, false, Some(Duration::from_secs(15)));
        s.set(b"lasting", b"v", 0, false);
        assert!(s.contains(b"fleeting"));
        clock.advance(Duration::from_secs(14));
        assert!(s.contains(b"fleeting"), "one second of TTL still left");
        clock.advance(Duration::from_secs(1));
        assert!(!s.contains(b"fleeting"), "expired entry still visible");
        assert!(s.get(b"fleeting").is_none());
        assert!(s.contains(b"lasting"));
        // The lazy removal freed the memory.
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn ttl_boundary_is_exact_on_virtual_time() {
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"k", b"v", 0, false, Some(Duration::from_nanos(100)));
        clock.advance(Duration::from_nanos(99));
        assert!(s.contains(b"k"), "one tick before the deadline");
        clock.advance(Duration::from_nanos(1));
        assert!(!s.contains(b"k"), "expiry is inclusive at the deadline");
    }

    #[test]
    fn zero_ttl_stores_an_already_expired_entry() {
        let (mut s, _clock) = shard_with_clock(10_000);
        assert!(matches!(
            s.set_full(b"k", b"v", 0, false, Some(Duration::ZERO)),
            SetOutcome::Stored { .. }
        ));
        assert!(s.get(b"k").is_none(), "zero TTL is immediately invisible");
    }

    #[test]
    fn cas_on_expired_entry_is_not_found() {
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"k", b"v", 0, false, Some(Duration::from_secs(10)));
        let token = s.get(b"k").unwrap().cas;
        clock.advance(Duration::from_secs(25));
        assert_eq!(s.cas(b"k", b"w", 0, token, None), CasOutcome::NotFound);
    }

    #[test]
    fn incr_preserves_remaining_ttl() {
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"n", b"1", 0, false, Some(Duration::from_secs(40)));
        assert_eq!(s.arith(b"n", 1, false), ArithOutcome::Value(2));
        clock.advance(Duration::from_secs(60));
        assert!(s.get(b"n").is_none(), "incr must not clear the expiry");
    }

    #[test]
    fn incr_preserves_remaining_ttl_exactly() {
        // Virtual time makes the TTL arithmetic exact: an incr 40 s into
        // a 100 s TTL must leave the original 100 s deadline in place.
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"n", b"1", 0, false, Some(Duration::from_secs(100)));
        clock.advance(Duration::from_secs(40));
        assert_eq!(s.arith(b"n", 1, false), ArithOutcome::Value(2));
        clock.advance(Duration::from_secs(59));
        assert!(s.contains(b"n"), "99 s in: one second of TTL remains");
        clock.advance(Duration::from_secs(1));
        assert!(!s.contains(b"n"), "100 s in: the original deadline holds");
    }

    #[test]
    fn expired_entries_are_reclaimed_before_live_evictions() {
        // key1 expires mid-list; the subsequent over-budget set must
        // reclaim it instead of evicting the live LRU tail (key0).
        let cost = entry_cost(b"key0", b"value0");
        let (mut s, clock) = shard_with_clock(3 * cost);
        s.set(b"key0", b"value0", 0, false);
        s.set_full(b"key1", b"value1", 0, false, Some(Duration::from_secs(1)));
        s.set(b"key2", b"value2", 0, false);
        clock.advance(Duration::from_secs(2));
        match s.set(b"key3", b"value3", 0, false) {
            SetOutcome::Stored { evicted } => {
                assert_eq!(evicted, 0, "the expired entry made room, not an eviction");
            }
            o => panic!("{o:?}"),
        }
        assert!(s.contains(b"key0"), "live LRU tail wrongly evicted");
        assert!(!s.contains(b"key1"));
        assert!(s.contains(b"key2") && s.contains(b"key3"));
        assert!(s.mem_used() <= s.mem_limit());
    }

    #[test]
    fn expired_pinned_entry_cannot_force_oom() {
        // A pinned entry is never on the LRU list, so before the sweep an
        // expired pinned entry held its budget forever and forced OOM.
        let cost = entry_cost(b"key0", b"value0");
        let (mut s, clock) = shard_with_clock(cost + 10);
        s.set_full(b"key0", b"value0", 0, true, Some(Duration::from_secs(1)));
        clock.advance(Duration::from_secs(2));
        assert!(matches!(
            s.set(b"key1", b"value1", 0, true),
            SetOutcome::Stored { .. }
        ));
        assert!(s.contains(b"key1"));
        assert!(!s.contains(b"key0"));
        assert!(s.mem_used() <= s.mem_limit());
    }

    #[test]
    fn expired_pinned_entry_reclaimed_on_overwrite_fit_check() {
        // Same as above through the overwrite path: a live entry grows
        // and only fits once the dead pinned entry is reclaimed.
        let small = entry_cost(b"grow", b"x");
        let big_val = vec![b'y'; 64];
        let big = entry_cost(b"grow", &big_val);
        let pinned_cost = entry_cost(b"dead", b"value0");
        let (mut s, clock) = shard_with_clock(pinned_cost + big - 1);
        s.set_full(b"dead", b"value0", 0, true, Some(Duration::from_secs(1)));
        s.set(b"grow", b"x", 0, false);
        assert_eq!(s.mem_used(), pinned_cost + small);
        clock.advance(Duration::from_secs(2));
        assert!(matches!(
            s.set(b"grow", &big_val, 0, false),
            SetOutcome::Stored { .. }
        ));
        assert!(!s.contains(b"dead"));
        assert_eq!(&s.get(b"grow").unwrap().data[..], &big_val[..]);
    }

    #[test]
    fn sweep_expired_reclaims_pinned_and_unpinned() {
        let (mut s, clock) = shard_with_clock(10_000);
        s.set_full(b"a", b"1", 0, false, Some(Duration::from_secs(1)));
        s.set_full(b"b", b"2", 0, true, Some(Duration::from_secs(1)));
        s.set(b"c", b"3", 0, false);
        assert_eq!(s.len(), 3);
        assert_eq!(s.sweep_expired(), 0, "nothing expired yet");
        clock.advance(Duration::from_secs(2));
        let used_before = s.mem_used();
        assert_eq!(s.sweep_expired(), 2);
        assert_eq!(s.len(), 1, "len() reflects the sweep");
        assert!(s.mem_used() < used_before, "mem_used() reflects the sweep");
        assert!(s.contains(b"c"));
    }

    #[test]
    fn pin_via_overwrite() {
        let cost = entry_cost(b"key0", b"value0");
        let mut s = Shard::new(2 * cost);
        s.set(b"key0", b"value0", 0, false);
        s.set(b"key0", b"value0", 0, true); // pin it
        for i in 1..6 {
            let (k, v) = kv(i);
            s.set(&k, &v, 0, false);
        }
        assert!(s.contains(b"key0"), "pinned entry evicted");
    }

    // Memory accounting invariant under random operation sequences:
    // mem_used equals the sum of entry costs, pinned entries survive,
    // and the budget is never exceeded after a successful set.
    proptest! {
        #[test]
        fn accounting_invariants(
            ops in proptest::collection::vec(
                (0u8..3, 0u32..12, 0usize..40, any::<bool>()), 1..120),
            limit in 300usize..1200,
        ) {
            let mut s = Shard::new(limit);
            let mut reference: std::collections::HashMap<Vec<u8>, (usize, bool)> =
                Default::default();
            for (op, keyn, vlen, pinned) in ops {
                let key = format!("k{keyn}").into_bytes();
                match op {
                    0 => {
                        let value = vec![b'x'; vlen];
                        match s.set(&key, &value, 0, pinned) {
                            SetOutcome::Stored { .. } => {
                                reference.insert(key.clone(), (entry_cost(&key, &value), pinned));
                                prop_assert!(s.mem_used() <= limit);
                            }
                            SetOutcome::OutOfMemory => {}
                        }
                    }
                    1 => {
                        let present = s.contains(&key);
                        prop_assert_eq!(s.get(&key).is_some(), present);
                    }
                    _ => {
                        s.delete(&key);
                        reference.remove(&key);
                    }
                }
                // Evictions may have removed unpinned reference entries;
                // prune reference to what the shard still holds and check
                // pinned entries are all still present.
                for (k, (_, pinned)) in reference.iter() {
                    if *pinned {
                        prop_assert!(s.contains(k), "pinned entry lost");
                    }
                }
                reference.retain(|k, _| s.contains(k));
                let expect_used: usize = reference.values().map(|(c, _)| *c).sum();
                prop_assert_eq!(s.mem_used(), expect_used);
                prop_assert_eq!(s.len(), reference.len());
            }
        }
    }

    // TTL accounting under random operations on virtual time: after any
    // advance, expiry is exactly "deadline tick <= now" — a pure function
    // of injected time, never of wall time.
    proptest! {
        #[test]
        fn expiry_is_a_pure_function_of_injected_time(
            ops in proptest::collection::vec(
                (0u32..8, any::<bool>(), 0u64..50, 0u64..30), 1..80),
        ) {
            let (mut s, clock) = shard_with_clock(1 << 20);
            let mut deadlines: std::collections::HashMap<Vec<u8>, Option<u64>> =
                Default::default();
            let mut now = 0u64;
            for (keyn, has_ttl, ttl_raw, advance_ns) in ops {
                let key = format!("k{keyn}").into_bytes();
                let ttl_ns = has_ttl.then_some(ttl_raw);
                let ttl = ttl_ns.map(Duration::from_nanos);
                s.set_full(&key, b"v", 0, false, ttl);
                deadlines.insert(key, ttl_ns.map(|t| now + t));
                clock.advance(Duration::from_nanos(advance_ns));
                now += advance_ns;
                for (k, deadline) in &deadlines {
                    let alive_by_model = match deadline {
                        None => true,
                        Some(d) => *d > now,
                    };
                    prop_assert_eq!(
                        s.contains(k),
                        alive_by_model,
                        "key {:?} at tick {}: model and shard disagree",
                        k, now
                    );
                }
            }
        }
    }
}
