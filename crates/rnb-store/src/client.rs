//! Blocking client for the memcached text protocol.

use crate::protocol::read_line;
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

/// A blocking connection to a [`crate::StoreServer`] (or any
/// text-protocol memcached).
pub struct StoreClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// One operation of a pipelined storage burst
/// ([`StoreClient::send_storage_batch`] /
/// [`StoreClient::recv_storage_batch`]). Borrows the caller's key and
/// value bytes: the send half copies them straight into the socket
/// buffer, so a burst costs no per-op allocation.
#[derive(Debug, Clone, Copy)]
pub enum StorageOp<'a> {
    /// `set key flags 0 len` + data block → `STORED`.
    Set {
        /// Key bytes (no spaces or control characters).
        key: &'a [u8],
        /// Value bytes.
        value: &'a [u8],
        /// Opaque client flags echoed back on reads.
        flags: u32,
    },
    /// `delete key` → `DELETED` / `NOT_FOUND`.
    Delete {
        /// Key bytes.
        key: &'a [u8],
    },
}

fn proto_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl StoreClient {
    /// Connect to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<StoreClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(StoreClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// `set key flags 0 len` + data. Errors on a non-`STORED` reply.
    pub fn set(&mut self, key: &[u8], value: &[u8], flags: u32) -> io::Result<()> {
        self.writer.write_all(b"set ")?;
        self.writer.write_all(key)?;
        write!(self.writer, " {flags} 0 {}\r\n", value.len())?;
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        let line = self.expect_line()?;
        if line != b"STORED" {
            return Err(proto_err(format!(
                "set failed: {}",
                String::from_utf8_lossy(&line)
            )));
        }
        Ok(())
    }

    /// Multi-get. Returns, per requested key, `Some((data, flags))` on a
    /// hit and `None` on a miss. An empty key slice is answered locally
    /// with `Ok(vec![])` — no wire round-trip (and no panic: this is
    /// caller input, not a library invariant).
    #[allow(clippy::type_complexity)]
    pub fn get_multi(&mut self, keys: &[&[u8]]) -> io::Result<Vec<Option<(Vec<u8>, u32)>>> {
        let full = self.gets_inner(keys, false)?;
        Ok(full
            .into_iter()
            .map(|o| o.map(|(d, f, _)| (d, f)))
            .collect())
    }

    /// `gets` multi-get: like [`StoreClient::get_multi`] but each hit also
    /// carries its CAS token.
    #[allow(clippy::type_complexity)]
    pub fn gets_multi(&mut self, keys: &[&[u8]]) -> io::Result<Vec<Option<(Vec<u8>, u32, u64)>>> {
        self.gets_inner(keys, true)
    }

    /// Pipelining half 1: send a multi-get request without reading the
    /// reply. Pair each call with [`StoreClient::recv_get_multi`] (same
    /// keys, same order) on this connection; interleaving other
    /// operations between the two desyncs the stream.
    pub fn send_get_multi(&mut self, keys: &[&[u8]]) -> io::Result<()> {
        self.send_gets(keys, false)
    }

    /// Pipelining half 2: read the reply to an earlier
    /// [`StoreClient::send_get_multi`] with the same keys.
    #[allow(clippy::type_complexity)]
    pub fn recv_get_multi(&mut self, keys: &[&[u8]]) -> io::Result<Vec<Option<(Vec<u8>, u32)>>> {
        let full = self.recv_gets(keys, false)?;
        Ok(full
            .into_iter()
            .map(|o| o.map(|(d, f, _)| (d, f)))
            .collect())
    }

    #[allow(clippy::type_complexity)]
    fn gets_inner(
        &mut self,
        keys: &[&[u8]],
        with_cas: bool,
    ) -> io::Result<Vec<Option<(Vec<u8>, u32, u64)>>> {
        self.send_gets(keys, with_cas)?;
        self.recv_gets(keys, with_cas)
    }

    fn send_gets(&mut self, keys: &[&[u8]], with_cas: bool) -> io::Result<()> {
        if keys.is_empty() {
            return Ok(());
        }
        self.writer
            .write_all(if with_cas { b"gets" } else { b"get" })?;
        for key in keys {
            self.writer.write_all(b" ")?;
            self.writer.write_all(key)?;
        }
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()
    }

    #[allow(clippy::type_complexity)]
    fn recv_gets(
        &mut self,
        keys: &[&[u8]],
        with_cas: bool,
    ) -> io::Result<Vec<Option<(Vec<u8>, u32, u64)>>> {
        if keys.is_empty() {
            // Nothing was sent for an empty request, so read nothing.
            return Ok(Vec::new());
        }
        // Fill response slots positionally: each VALUE reply is matched
        // against the requested keys directly, so the hot path neither
        // copies key bytes nor re-hashes them into a map.
        let mut out: Vec<Option<(Vec<u8>, u32, u64)>> = vec![None; keys.len()];
        loop {
            let line = self.expect_line()?;
            if line == b"END" {
                break;
            }
            let text = String::from_utf8_lossy(&line).into_owned();
            let mut parts = text.split_whitespace();
            if parts.next() != Some("VALUE") {
                return Err(proto_err(format!("unexpected get reply: {text}")));
            }
            let key = parts
                .next()
                .ok_or_else(|| proto_err("VALUE missing key".into()))?;
            let flags: u32 = parts
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| proto_err("VALUE missing flags".into()))?;
            let len: usize = parts
                .next()
                .and_then(|l| l.parse().ok())
                .ok_or_else(|| proto_err("VALUE missing length".into()))?;
            let cas: u64 = if with_cas {
                parts
                    .next()
                    .and_then(|c| c.parse().ok())
                    .ok_or_else(|| proto_err("VALUE missing cas token".into()))?
            } else {
                0
            };
            let data = crate::protocol::read_data_block(&mut self.reader, len)?;
            let key_bytes = key.as_bytes();
            let matches = keys.iter().filter(|k| **k == key_bytes).count();
            if matches == 0 {
                // A VALUE for a key we never asked for is a desync
                // symptom (e.g. a reply of an earlier, failed request
                // still in the pipe). Surfacing it — instead of silently
                // dropping the body — is what lets callers notice a
                // broken connection and reconnect.
                return Err(proto_err(format!(
                    "VALUE for unrequested key {:?}",
                    String::from_utf8_lossy(key_bytes)
                )));
            }
            let mut left = matches;
            let mut pending = Some((data, flags, cas));
            for (k, slot) in keys.iter().zip(out.iter_mut()) {
                if *k != key_bytes {
                    continue;
                }
                left -= 1;
                *slot = if left == 0 {
                    pending.take()
                } else {
                    // Duplicate requested keys each receive an owned copy;
                    // unique-key requests always take the move above.
                    pending.clone()
                };
            }
        }
        Ok(out)
    }

    /// Pipelining half 1 of the write path: write every storage command
    /// of `ops` into the socket with a single flush, without reading any
    /// reply. Pair each call with [`StoreClient::recv_storage_batch`]
    /// (same ops, same order) on this connection; interleaving other
    /// operations between the two halves desyncs the stream. An empty
    /// burst sends nothing.
    pub fn send_storage_batch(&mut self, ops: &[StorageOp<'_>]) -> io::Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        for op in ops {
            match *op {
                StorageOp::Set { key, value, flags } => {
                    self.writer.write_all(b"set ")?;
                    self.writer.write_all(key)?;
                    write!(self.writer, " {flags} 0 {}\r\n", value.len())?;
                    self.writer.write_all(value)?;
                    self.writer.write_all(b"\r\n")?;
                }
                StorageOp::Delete { key } => {
                    self.writer.write_all(b"delete ")?;
                    self.writer.write_all(key)?;
                    self.writer.write_all(b"\r\n")?;
                }
            }
        }
        self.writer.flush()
    }

    /// Pipelining half 2 of the write path: read one status line per op
    /// of an earlier [`StoreClient::send_storage_batch`] with the same
    /// ops. `acks` is cleared and refilled positionally: `true` for
    /// `STORED`/`DELETED`, `false` for a `delete` that found nothing.
    /// Any other reply (e.g. `SERVER_ERROR out of memory`) is a protocol
    /// error — the stream may hold further replies, so the caller must
    /// treat the connection as broken.
    pub fn recv_storage_batch(
        &mut self,
        ops: &[StorageOp<'_>],
        acks: &mut Vec<bool>,
    ) -> io::Result<()> {
        acks.clear();
        for op in ops {
            let line = self.expect_line()?;
            let ack = match (op, line.as_slice()) {
                (StorageOp::Set { .. }, b"STORED") => true,
                (StorageOp::Delete { .. }, b"DELETED") => true,
                (StorageOp::Delete { .. }, b"NOT_FOUND") => false,
                (StorageOp::Set { .. }, other) => {
                    return Err(proto_err(format!(
                        "batched set: {}",
                        String::from_utf8_lossy(other)
                    )));
                }
                (StorageOp::Delete { .. }, other) => {
                    return Err(proto_err(format!(
                        "batched delete: {}",
                        String::from_utf8_lossy(other)
                    )));
                }
            };
            acks.push(ack);
        }
        Ok(())
    }

    /// `add`: true if stored (key was absent).
    pub fn add(&mut self, key: &[u8], value: &[u8], flags: u32) -> io::Result<bool> {
        self.store_like("add", key, value, flags, None)
    }

    /// `replace`: true if stored (key existed).
    pub fn replace(&mut self, key: &[u8], value: &[u8], flags: u32) -> io::Result<bool> {
        self.store_like("replace", key, value, flags, None)
    }

    /// `cas`: `Ok(true)` if swapped, `Ok(false)` on a stale token or a
    /// missing key.
    pub fn cas(&mut self, key: &[u8], value: &[u8], flags: u32, token: u64) -> io::Result<bool> {
        self.store_like("cas", key, value, flags, Some(token))
    }

    fn store_like(
        &mut self,
        verb: &str,
        key: &[u8],
        value: &[u8],
        flags: u32,
        token: Option<u64>,
    ) -> io::Result<bool> {
        write!(self.writer, "{verb} ")?;
        self.writer.write_all(key)?;
        match token {
            Some(t) => write!(self.writer, " {flags} 0 {} {t}\r\n", value.len())?,
            None => write!(self.writer, " {flags} 0 {}\r\n", value.len())?,
        }
        self.writer.write_all(value)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        let line = self.expect_line()?;
        match line.as_slice() {
            b"STORED" => Ok(true),
            b"NOT_STORED" | b"EXISTS" | b"NOT_FOUND" => Ok(false),
            other => Err(proto_err(format!(
                "{verb}: {}",
                String::from_utf8_lossy(other)
            ))),
        }
    }

    /// `incr`/`decr`; `Ok(None)` if the key is missing.
    pub fn arith(&mut self, key: &[u8], delta: u64, negative: bool) -> io::Result<Option<u64>> {
        write!(self.writer, "{} ", if negative { "decr" } else { "incr" })?;
        self.writer.write_all(key)?;
        write!(self.writer, " {delta}\r\n")?;
        self.writer.flush()?;
        let line = self.expect_line()?;
        if line == b"NOT_FOUND" {
            return Ok(None);
        }
        let text = String::from_utf8_lossy(&line).into_owned();
        text.trim()
            .parse::<u64>()
            .map(Some)
            .map_err(|_| proto_err(format!("arith reply: {text}")))
    }

    /// `delete key`; true if the server deleted it.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<bool> {
        self.writer.write_all(b"delete ")?;
        self.writer.write_all(key)?;
        self.writer.write_all(b"\r\n")?;
        self.writer.flush()?;
        let line = self.expect_line()?;
        match line.as_slice() {
            b"DELETED" => Ok(true),
            b"NOT_FOUND" => Ok(false),
            other => Err(proto_err(format!(
                "delete: {}",
                String::from_utf8_lossy(other)
            ))),
        }
    }

    /// `stats` as a name → value map.
    pub fn stats(&mut self) -> io::Result<HashMap<String, String>> {
        self.writer.write_all(b"stats\r\n")?;
        self.writer.flush()?;
        let mut out = HashMap::new();
        loop {
            let line = self.expect_line()?;
            if line == b"END" {
                break;
            }
            let text = String::from_utf8_lossy(&line).into_owned();
            let mut parts = text.split_whitespace();
            if parts.next() != Some("STAT") {
                return Err(proto_err(format!("unexpected stats reply: {text}")));
            }
            let name = parts.next().unwrap_or_default().to_string();
            let value = parts.next().unwrap_or_default().to_string();
            out.insert(name, value);
        }
        Ok(out)
    }

    /// `version` banner.
    pub fn version(&mut self) -> io::Result<String> {
        self.writer.write_all(b"version\r\n")?;
        self.writer.flush()?;
        let line = self.expect_line()?;
        Ok(String::from_utf8_lossy(&line).into_owned())
    }

    /// Send a raw line and return the single reply line (test helper for
    /// error paths).
    pub fn raw_command(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let reply = self.expect_line()?;
        Ok(String::from_utf8_lossy(&reply).into_owned())
    }

    fn expect_line(&mut self) -> io::Result<Vec<u8>> {
        read_line(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }
}

// Client behaviour is exercised end-to-end in `server::tests` and the
// load-generator tests; unit tests here cover argument validation.
#[cfg(test)]
mod tests {
    use super::*;

    use std::io::Read;
    use std::net::TcpListener;

    #[test]
    fn connect_to_closed_port_fails() {
        // Port 1 on loopback is essentially never listening.
        let addr: SocketAddr = "127.0.0.1:1".parse().unwrap();
        assert!(StoreClient::connect(addr).is_err());
    }

    /// A scripted one-connection "server": accepts, optionally reads one
    /// line, writes `reply` verbatim, holds the socket open until the
    /// client is done.
    fn fake_server(reply: &'static [u8]) -> SocketAddr {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let _ = conn.read(&mut buf);
            conn.write_all(reply).unwrap();
            // Hold until the client disconnects.
            let _ = conn.read(&mut buf);
        });
        addr
    }

    #[test]
    fn empty_key_slice_is_answered_locally() {
        // Regression: this used to `assert!` — a library panic reachable
        // from caller input. The fake server never responds, so any wire
        // round-trip would hang or error; `Ok(vec![])` proves no bytes
        // moved.
        let addr = fake_server(b"");
        let mut client = StoreClient::connect(addr).unwrap();
        assert_eq!(client.get_multi(&[]).unwrap(), vec![]);
        assert_eq!(client.gets_multi(&[]).unwrap(), vec![]);
        // The connection is still usable for the pipelined halves too.
        client.send_get_multi(&[]).unwrap();
        assert_eq!(client.recv_get_multi(&[]).unwrap(), vec![]);
    }

    #[test]
    fn storage_batch_halves_round_trip() {
        // One flush carries the whole burst; one status line per op
        // comes back positionally.
        let addr = fake_server(b"STORED\r\nDELETED\r\nNOT_FOUND\r\n");
        let mut client = StoreClient::connect(addr).unwrap();
        let ops = [
            StorageOp::Set {
                key: b"a",
                value: b"v1",
                flags: 7,
            },
            StorageOp::Delete { key: b"a" },
            StorageOp::Delete { key: b"ghost" },
        ];
        client.send_storage_batch(&ops).unwrap();
        let mut acks = Vec::new();
        client.recv_storage_batch(&ops, &mut acks).unwrap();
        assert_eq!(acks, vec![true, true, false]);
        // An empty burst moves no bytes in either half.
        client.send_storage_batch(&[]).unwrap();
        client.recv_storage_batch(&[], &mut acks).unwrap();
        assert!(acks.is_empty());
    }

    #[test]
    fn storage_batch_rejects_unexpected_status() {
        // NOT_FOUND answers a delete, never a set: surfacing the
        // mismatch is what lets callers mark the connection broken.
        let addr = fake_server(b"NOT_FOUND\r\n");
        let mut client = StoreClient::connect(addr).unwrap();
        let ops = [StorageOp::Set {
            key: b"k",
            value: b"v",
            flags: 0,
        }];
        client.send_storage_batch(&ops).unwrap();
        let mut acks = Vec::new();
        let err = client.recv_storage_batch(&ops, &mut acks).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("batched set"), "{err}");
    }

    #[test]
    fn unrequested_value_key_is_a_protocol_error() {
        // Regression: a VALUE for a key we never requested (the telltale
        // of a desynced stream) used to be silently dropped.
        let addr = fake_server(b"VALUE ghost 0 2\r\nxy\r\nEND\r\n");
        let mut client = StoreClient::connect(addr).unwrap();
        let err = client.get_multi(&[b"real"]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("ghost"), "{err}");
    }
}
