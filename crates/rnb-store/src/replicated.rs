//! Flat-combining replication for hot shards.
//!
//! Under Zipf-skewed traffic a few shards absorb most of the load and
//! their mutexes serialize every reader — the in-store reappearance of
//! the per-transaction bottleneck the RnB paper attacks at the cluster
//! level. This module removes it with the operation-log design from
//! node-replication:
//!
//! * every mutation of a hot shard is a self-contained [`WriteOp`]
//!   appended to an **operation log** together with the clock tick it
//!   runs at, so TTL decisions stay a pure function of injected time on
//!   every replay;
//! * each reader thread serves lookups from a **read replica** of the
//!   shard, catching up on the log prefix it has not yet applied — no
//!   shared mutex on the read path, only the replica's own;
//! * writers funnel through a **flat combiner**: they enqueue their op,
//!   and one thread (whoever wins the combiner token) drains the whole
//!   queue, appends it to the log, and applies the batch to the primary
//!   shard under a *single* lock acquisition — one lock per drained
//!   batch, not one per write.
//!
//! Consistency: the published log tail is advanced *before* results are
//! delivered, and a reader first loads the tail, then brings its replica
//! up to it. A read that starts after a write completed therefore always
//! observes that write (read-your-writes per client, total order across
//! clients from the log). Replica state is a pure function of
//! `(promotion-time copy, applied log prefix)` — the log/replica
//! consistency invariant in INVARIANTS.md.
//!
//! The [`Dispatch`] trait is the seam between the replication machinery
//! and the sequential [`Shard`]: the combiner and the replicas never
//! touch shard internals, they only `dispatch_mut` logged operations at
//! recorded ticks.

use crate::clock::{Clock, Tick};
use crate::shard::{key_hash, ArithOutcome, CasOutcome, SetOutcome, Shard, Value};
use crate::stats::StoreStats;
use parking_lot::Mutex;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Once a hot shard's log holds this many unreclaimed entries, the
/// combiner force-syncs every replica to the published tail and drops
/// the fully-applied prefix.
const LOG_COMPACT_THRESHOLD: usize = 1024;

/// A read-only operation over the shard surface.
#[derive(Debug, Clone, Copy)]
pub enum ReadOp<'a> {
    /// Look up a key's value (flags + CAS token included).
    Get(&'a [u8]),
    /// Probe for presence without materialising the value.
    Contains(&'a [u8]),
}

/// Response to a [`ReadOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// Result of [`ReadOp::Get`].
    Value(Option<Value>),
    /// Result of [`ReadOp::Contains`].
    Contains(bool),
}

/// A mutation of the shard surface, self-contained (owned key/value
/// bytes) so it can be queued by one thread, logged, and replayed on
/// every replica.
#[derive(Debug)]
pub enum WriteOp {
    /// Unconditional store (`set`).
    Set {
        /// Key bytes.
        key: Arc<[u8]>,
        /// Value bytes.
        value: Arc<[u8]>,
        /// Client-opaque flags.
        flags: u32,
        /// Pinned entries are never evicted.
        pinned: bool,
        /// Optional expiry relative to the tick the op is applied at.
        ttl: Option<Duration>,
    },
    /// Store only if absent (`add`).
    Add {
        /// Key bytes.
        key: Arc<[u8]>,
        /// Value bytes.
        value: Arc<[u8]>,
        /// Client-opaque flags.
        flags: u32,
        /// Optional expiry.
        ttl: Option<Duration>,
    },
    /// Store only if present (`replace`).
    Replace {
        /// Key bytes.
        key: Arc<[u8]>,
        /// Value bytes.
        value: Arc<[u8]>,
        /// Client-opaque flags.
        flags: u32,
        /// Optional expiry.
        ttl: Option<Duration>,
    },
    /// Compare-and-swap against a token from a previous read.
    Cas {
        /// Key bytes.
        key: Arc<[u8]>,
        /// Replacement value bytes.
        value: Arc<[u8]>,
        /// Client-opaque flags.
        flags: u32,
        /// The CAS token the entry must still carry.
        token: u64,
        /// Optional expiry.
        ttl: Option<Duration>,
    },
    /// `incr` (`negative = false`) / `decr` (`negative = true`).
    Arith {
        /// Key bytes.
        key: Arc<[u8]>,
        /// Magnitude of the adjustment.
        delta: u64,
        /// True for `decr`.
        negative: bool,
    },
    /// Remove a key.
    Delete {
        /// Key bytes.
        key: Arc<[u8]>,
    },
}

/// Response to a [`WriteOp`], mirroring its variants: `dispatch_mut`
/// maps each operation to its same-named outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Outcome of [`WriteOp::Set`].
    Set(SetOutcome),
    /// Outcome of [`WriteOp::Add`] / [`WriteOp::Replace`] (`None` means
    /// the presence precondition failed).
    Conditional(Option<SetOutcome>),
    /// Outcome of [`WriteOp::Cas`].
    Cas(CasOutcome),
    /// Outcome of [`WriteOp::Arith`].
    Arith(ArithOutcome),
    /// Outcome of [`WriteOp::Delete`]: true if the key existed.
    Deleted(bool),
}

/// Terminal branch for a structurally impossible outcome variant:
/// `dispatch_mut` maps every [`WriteOp`] variant to its same-named
/// [`WriteOutcome`] variant, and the combiner delivers each op's own
/// outcome to its own slot, so the typed accessors below can never see a
/// foreign variant. Registered in `PANIC_INVARIANT_REGISTRY` (R9).
fn outcome_mismatch(outcome: &WriteOutcome) -> ! {
    unreachable!("dispatch_mut returned a mismatched outcome variant: {outcome:?}")
}

impl WriteOutcome {
    /// The [`SetOutcome`] of a [`WriteOp::Set`].
    pub(crate) fn into_set(self) -> SetOutcome {
        match self {
            WriteOutcome::Set(o) => o,
            ref other => outcome_mismatch(other),
        }
    }

    /// The optional [`SetOutcome`] of an add/replace.
    pub(crate) fn into_conditional(self) -> Option<SetOutcome> {
        match self {
            WriteOutcome::Conditional(o) => o,
            ref other => outcome_mismatch(other),
        }
    }

    /// The [`CasOutcome`] of a [`WriteOp::Cas`].
    pub(crate) fn into_cas(self) -> CasOutcome {
        match self {
            WriteOutcome::Cas(o) => o,
            ref other => outcome_mismatch(other),
        }
    }

    /// The [`ArithOutcome`] of a [`WriteOp::Arith`].
    pub(crate) fn into_arith(self) -> ArithOutcome {
        match self {
            WriteOutcome::Arith(o) => o,
            ref other => outcome_mismatch(other),
        }
    }

    /// The deletion flag of a [`WriteOp::Delete`].
    pub(crate) fn into_deleted(self) -> bool {
        match self {
            WriteOutcome::Deleted(o) => o,
            ref other => outcome_mismatch(other),
        }
    }
}

/// The seam between the replication machinery and a sequential state
/// machine: apply read/write operations at an explicit clock tick.
/// Replaying the same operations at the same ticks against equal states
/// must yield equal states and equal outcomes — that determinism is what
/// lets the log stand in for the state.
pub trait Dispatch {
    /// Apply a read-only operation at tick `now` (must not mutate).
    fn dispatch(&self, op: ReadOp<'_>, now: Tick) -> ReadOutcome;
    /// Apply a mutation at tick `now`, returning its outcome.
    fn dispatch_mut(&mut self, op: &WriteOp, now: Tick) -> WriteOutcome;
}

impl Dispatch for Shard {
    fn dispatch(&self, op: ReadOp<'_>, now: Tick) -> ReadOutcome {
        match op {
            ReadOp::Get(key) => ReadOutcome::Value(self.peek_at(key_hash(key), key, now)),
            ReadOp::Contains(key) => ReadOutcome::Contains(self.contains_at(key, now)),
        }
    }

    fn dispatch_mut(&mut self, op: &WriteOp, now: Tick) -> WriteOutcome {
        match op {
            WriteOp::Set {
                key,
                value,
                flags,
                pinned,
                ttl,
            } => WriteOutcome::Set(self.set_full_at(key, value, *flags, *pinned, *ttl, now)),
            WriteOp::Add {
                key,
                value,
                flags,
                ttl,
            } => WriteOutcome::Conditional(self.add_at(key, value, *flags, *ttl, now)),
            WriteOp::Replace {
                key,
                value,
                flags,
                ttl,
            } => WriteOutcome::Conditional(self.replace_at(key, value, *flags, *ttl, now)),
            WriteOp::Cas {
                key,
                value,
                flags,
                token,
                ttl,
            } => WriteOutcome::Cas(self.cas_at(key, value, *flags, *token, *ttl, now)),
            WriteOp::Arith {
                key,
                delta,
                negative,
            } => WriteOutcome::Arith(self.arith_at(key, *delta, *negative, now)),
            WriteOp::Delete { key } => WriteOutcome::Deleted(self.delete(key)),
        }
    }
}

/// One log record: the operation plus the tick it executes at. Entries
/// are shared (`Arc`) between the log and in-flight apply/catch-up
/// copies so draining the log never copies key/value bytes.
#[derive(Debug)]
struct LogEntry {
    op: WriteOp,
    at: Tick,
}

/// The append-only operation log. `base` is the log index of
/// `entries[0]`; indices below `base` have been applied by every replica
/// and compacted away.
#[derive(Debug)]
struct OpLog {
    base: u64,
    entries: Vec<Arc<LogEntry>>,
}

/// A per-thread read replica: a full copy of the shard plus the log
/// index up to which it has applied operations. `applied` is only
/// advanced while `data` is held, so the pair is always consistent.
#[derive(Debug)]
struct Replica {
    data: Mutex<Shard>,
    applied: AtomicU64,
}

/// A write waiting in the combiner queue together with the slot its
/// outcome will be delivered to.
struct Pending {
    op: WriteOp,
    slot: Arc<WriteSlot>,
}

/// Outcome mailbox for one queued write. `done` is set (release) only
/// after the outcome is stored, and the waiting writer loads it
/// (acquire) before taking the result, so a `done` slot always holds an
/// outcome.
struct WriteSlot {
    done: AtomicBool,
    result: Mutex<Option<WriteOutcome>>,
}

impl WriteSlot {
    fn new() -> Self {
        WriteSlot {
            done: AtomicBool::new(false),
            result: Mutex::new(None),
        }
    }

    fn deliver(&self, outcome: WriteOutcome) {
        *self.result.lock() = Some(outcome);
        self.done.store(true, Ordering::Release);
    }

    fn take_result(&self) -> WriteOutcome {
        match self.result.lock().take() {
            Some(outcome) => outcome,
            // Unreachable by the deliver/take protocol above; registered
            // in PANIC_INVARIANT_REGISTRY (R9).
            None => unreachable!("write slot marked done before its outcome was delivered"),
        }
    }
}

/// Pick this thread's replica: thread ids are handed out once per thread
/// from a process-wide counter, so a thread keeps hitting the same
/// replica (warm cache, monotonic reads) while threads spread across
/// replicas round-robin.
fn replica_slot(count: usize) -> usize {
    static NEXT_READER: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static READER_ID: Cell<Option<usize>> = const { Cell::new(None) };
    }
    let id = READER_ID.with(|cell| match cell.get() {
        Some(id) => id,
        None => {
            let id = NEXT_READER.fetch_add(1, Ordering::Relaxed);
            cell.set(Some(id));
            id
        }
    });
    id % count.max(1)
}

/// The replication harness wrapped around one hot shard. The primary
/// shard itself stays where it always lived (inside the store's shard
/// mutex) — the store passes it in on each write so the combiner can
/// apply batches to it; this type owns the log, the write queue and the
/// read replicas.
pub(crate) struct HotShard {
    replicas: Vec<Replica>,
    log: Mutex<OpLog>,
    /// Published log length: a write is visible once the tail covering
    /// it is stored (release). Readers load it (acquire) and catch their
    /// replica up to it before serving.
    tail: AtomicU64,
    queue: Mutex<Vec<Pending>>,
    /// The flat-combining token: the writer that CASes it takes over
    /// draining the queue for everyone.
    combining: AtomicBool,
    clock: Clock,
    stats: Arc<StoreStats>,
    /// Primary-mutex acquisitions made by the combiner; the stress test
    /// asserts one per drained batch.
    #[cfg(test)]
    pub(crate) primary_locks: AtomicU64,
    /// Batches drained by the combiner on this shard.
    #[cfg(test)]
    pub(crate) batches: AtomicU64,
}

impl HotShard {
    /// Build the replication harness for `seed`, copying it once per
    /// replica. The caller keeps `seed` as the primary; from promotion
    /// on, it must only be mutated through [`HotShard::write`].
    pub(crate) fn new(seed: &Shard, replica_count: usize, stats: Arc<StoreStats>) -> Self {
        let replicas = (0..replica_count.max(1))
            .map(|_| Replica {
                data: Mutex::new(seed.replica_copy()),
                applied: AtomicU64::new(0),
            })
            .collect();
        HotShard {
            replicas,
            log: Mutex::new(OpLog {
                base: 0,
                entries: Vec::new(),
            }),
            tail: AtomicU64::new(0),
            queue: Mutex::new(Vec::new()),
            combining: AtomicBool::new(false),
            clock: seed.clock_handle(),
            stats,
            #[cfg(test)]
            primary_locks: AtomicU64::new(0),
            #[cfg(test)]
            batches: AtomicU64::new(0),
        }
    }

    /// Submit a write and wait for its outcome. The calling thread
    /// either becomes the combiner (drains the queue, appends the batch
    /// to the log, applies it to `primary` under one lock) or spins
    /// until the active combiner delivers its outcome.
    pub(crate) fn write(&self, op: WriteOp, primary: &Mutex<Shard>) -> WriteOutcome {
        let slot = Arc::new(WriteSlot::new());
        self.queue.lock().push(Pending {
            op,
            slot: Arc::clone(&slot),
        });
        loop {
            if slot.done.load(Ordering::Acquire) {
                return slot.take_result();
            }
            if self
                .combining
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.combine(primary);
                self.combining.store(false, Ordering::Release);
            } else {
                std::hint::spin_loop();
                std::thread::yield_now();
            }
        }
    }

    /// Submit a whole batch of writes and wait for every outcome,
    /// appending them to `out` in op order. All ops are enqueued under
    /// one queue lock *before* any combining starts, so when this thread
    /// wins the combiner token the entire batch drains as a single
    /// combined batch — one clock read and one primary-lock acquisition
    /// for the lot (another thread's concurrent combine may pick the
    /// batch up instead, which folds it into *that* thread's single
    /// drain; either way no op pays an individual lock round-trip).
    pub(crate) fn write_many<I>(&self, ops: I, primary: &Mutex<Shard>, out: &mut Vec<WriteOutcome>)
    where
        I: IntoIterator<Item = WriteOp>,
    {
        let slots: Vec<Arc<WriteSlot>> = {
            let mut queue = self.queue.lock();
            ops.into_iter()
                .map(|op| {
                    let slot = Arc::new(WriteSlot::new());
                    queue.push(Pending {
                        op,
                        slot: Arc::clone(&slot),
                    });
                    slot
                })
                .collect()
        };
        for slot in slots {
            loop {
                if slot.done.load(Ordering::Acquire) {
                    out.push(slot.take_result());
                    break;
                }
                if self
                    .combining
                    .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    self.combine(primary);
                    self.combining.store(false, Ordering::Release);
                } else {
                    std::hint::spin_loop();
                    std::thread::yield_now();
                }
            }
        }
    }

    /// The combiner loop: drain the queue, log the batch at one tick,
    /// apply it to the primary under a single lock acquisition, deliver
    /// outcomes, repeat until the queue is empty. Runs with the
    /// `combining` token held.
    fn combine(&self, primary: &Mutex<Shard>) {
        loop {
            let batch: Vec<Pending> = {
                let mut queue = self.queue.lock();
                std::mem::take(&mut *queue)
            };
            if batch.is_empty() {
                return;
            }
            // One clock read per batch: every op in it executes at the
            // same tick, on the primary now and on every replica later.
            let at = self.clock.now();
            let mut entries = Vec::with_capacity(batch.len());
            let mut slots = Vec::with_capacity(batch.len());
            for pending in batch {
                entries.push(Arc::new(LogEntry { op: pending.op, at }));
                slots.push(pending.slot);
            }
            let tail = {
                let mut log = self.log.lock();
                for entry in &entries {
                    log.entries.push(Arc::clone(entry));
                }
                let tail = log.base + log.entries.len() as u64;
                // Publish before applying: a reader that catches up to
                // this tail replays exactly the ops the primary is about
                // to contain.
                self.tail.store(tail, Ordering::Release);
                tail
            };
            let outcomes: Vec<WriteOutcome> = {
                let mut shard = primary.lock();
                #[cfg(test)]
                self.primary_locks.fetch_add(1, Ordering::Relaxed);
                entries
                    .iter()
                    .map(|entry| shard.dispatch_mut(&entry.op, entry.at))
                    .collect()
            };
            debug_assert_eq!(
                outcomes.len(),
                slots.len(),
                "combiner must produce exactly one outcome per drained write"
            );
            #[cfg(test)]
            self.batches.fetch_add(1, Ordering::Relaxed);
            self.stats.combiner_batches.fetch_add(1, Ordering::Relaxed);
            self.stats
                .log_appends
                .fetch_add(entries.len() as u64, Ordering::Relaxed);
            for (slot, outcome) in slots.into_iter().zip(outcomes) {
                slot.deliver(outcome);
            }
            self.compact(tail);
        }
    }

    /// Bound the log: once it crosses [`LOG_COMPACT_THRESHOLD`], sync
    /// every replica to `tail` and drop the prefix all replicas have
    /// applied. Called by the combiner between batches, with no lock
    /// held on entry.
    fn compact(&self, tail: u64) {
        let over_threshold = {
            let log = self.log.lock();
            log.entries.len() >= LOG_COMPACT_THRESHOLD
        };
        if !over_threshold {
            return;
        }
        for replica in &self.replicas {
            if replica.applied.load(Ordering::Acquire) < tail {
                self.catch_up(replica, tail);
            }
        }
        let mut log = self.log.lock();
        let min_applied = self
            .replicas
            .iter()
            .map(|r| r.applied.load(Ordering::Acquire))
            .min()
            .unwrap_or(log.base);
        let drop_to = min_applied.min(log.base + log.entries.len() as u64);
        if drop_to > log.base {
            let n = (drop_to - log.base) as usize;
            log.entries.drain(..n);
            log.base = drop_to;
        }
    }

    /// Serve a batched lookup from this thread's replica, first applying
    /// any log suffix the replica has not seen. Same `(hash, key, pos)`
    /// batch contract as `Shard::get_many`; returns the hit count.
    pub(crate) fn read_many<'k, I>(&self, batch: I, out: &mut [Option<Value>]) -> usize
    where
        I: IntoIterator<Item = (u64, &'k [u8], usize)>,
    {
        let target = self.tail.load(Ordering::Acquire);
        self.read_many_on(replica_slot(self.replicas.len()), target, batch, out)
    }

    /// [`read_many`](HotShard::read_many) pinned to a specific replica
    /// and tail (the oracle tests iterate replicas explicitly).
    fn read_many_on<'k, I>(
        &self,
        idx: usize,
        target: u64,
        batch: I,
        out: &mut [Option<Value>],
    ) -> usize
    where
        I: IntoIterator<Item = (u64, &'k [u8], usize)>,
    {
        let replica = &self.replicas[idx % self.replicas.len().max(1)];
        if replica.applied.load(Ordering::Acquire) < target {
            self.catch_up(replica, target);
        }
        let shard = replica.data.lock();
        shard.peek_many(batch, out)
    }

    /// Apply the log suffix `[replica.applied, target)` to `replica`.
    /// Entries are copied out under a short log guard, then applied
    /// under the replica's own guard; `applied` is re-read under that
    /// guard so concurrent catch-ups of the same replica never replay an
    /// operation twice.
    fn catch_up(&self, replica: &Replica, target: u64) {
        loop {
            let from = replica.applied.load(Ordering::Acquire);
            if from >= target {
                return;
            }
            let (start, pending) = {
                let log = self.log.lock();
                debug_assert!(
                    from >= log.base,
                    "log compacted past a replica's applied tail"
                );
                let lo = (from.saturating_sub(log.base)) as usize;
                let copied: Vec<Arc<LogEntry>> = log
                    .entries
                    .get(lo..)
                    .unwrap_or_default()
                    .iter()
                    .map(Arc::clone)
                    .collect();
                (log.base + lo as u64, copied)
            };
            if pending.is_empty() {
                return;
            }
            let mut shard = replica.data.lock();
            let mut applied = replica.applied.load(Ordering::Relaxed);
            for (offset, entry) in pending.iter().enumerate() {
                let index = start + offset as u64;
                if index < applied {
                    continue;
                }
                shard.dispatch_mut(&entry.op, entry.at);
                applied = index + 1;
            }
            replica.applied.store(applied, Ordering::Release);
            drop(shard);
        }
    }

    /// Unapplied log entries currently buffered (test introspection).
    #[cfg(test)]
    fn log_len(&self) -> usize {
        self.log.lock().entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use proptest::prelude::*;

    const REPLICAS: usize = 3;

    /// A hot-shard harness over an empty shard on a virtual timeline.
    fn harness(mem: usize) -> (Mutex<Shard>, HotShard, TestClock) {
        let clock = TestClock::new();
        let seed = Shard::with_clock(mem, clock.clone().into());
        let hot = HotShard::new(&seed, REPLICAS, Arc::new(StoreStats::default()));
        (Mutex::new(seed), hot, clock)
    }

    fn read_one(hot: &HotShard, replica: usize, key: &[u8]) -> Option<Value> {
        let target = hot.tail.load(Ordering::Acquire);
        let mut out = [None];
        hot.read_many_on(
            replica,
            target,
            std::iter::once((key_hash(key), key, 0usize)),
            &mut out,
        );
        out[0].take()
    }

    #[test]
    fn write_read_roundtrip_all_replicas() {
        let (primary, hot, _clock) = harness(1 << 20);
        let outcome = hot.write(
            WriteOp::Set {
                key: Arc::from(&b"k"[..]),
                value: Arc::from(&b"v"[..]),
                flags: 9,
                pinned: false,
                ttl: None,
            },
            &primary,
        );
        assert!(matches!(
            outcome.into_set(),
            SetOutcome::Stored { evicted: 0 }
        ));
        for r in 0..REPLICAS {
            let v = read_one(&hot, r, b"k").expect("replica {r} missed the write");
            assert_eq!(&v.data[..], b"v");
            assert_eq!(v.flags, 9);
        }
        // The primary saw the same write.
        assert_eq!(&primary.lock().get(b"k").unwrap().data[..], b"v");
    }

    #[test]
    fn log_compacts_once_replicas_catch_up() {
        let (primary, hot, _clock) = harness(1 << 22);
        let rounds = LOG_COMPACT_THRESHOLD + 50;
        for i in 0..rounds {
            let key = format!("k{}", i % 64).into_bytes();
            hot.write(
                WriteOp::Set {
                    key: Arc::from(&key[..]),
                    value: Arc::from(&key[..]),
                    flags: 0,
                    pinned: false,
                    ttl: None,
                },
                &primary,
            )
            .into_set();
        }
        assert!(
            hot.log_len() < LOG_COMPACT_THRESHOLD,
            "log never compacted: {} entries buffered",
            hot.log_len()
        );
        // Reads are still correct after compaction on every replica.
        for r in 0..REPLICAS {
            let v = read_one(&hot, r, b"k0").expect("k0 lost after compaction");
            assert_eq!(&v.data[..], b"k0");
        }
    }

    #[test]
    fn combiner_takes_one_lock_per_drained_batch() {
        // The lock-count invariant (INVARIANTS.md): however the races
        // land, primary-mutex acquisitions == drained batches, and every
        // write is applied exactly once.
        let clock = TestClock::new();
        let seed = Shard::with_clock(1 << 22, clock.clone().into());
        let stats = Arc::new(StoreStats::default());
        let hot = Arc::new(HotShard::new(&seed, 2, Arc::clone(&stats)));
        let primary = Arc::new(Mutex::new(seed));
        let threads = 4;
        let per_thread = 300u32;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let hot = Arc::clone(&hot);
                let primary = Arc::clone(&primary);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let key = format!("t{t}-k{i}").into_bytes();
                        let outcome = hot.write(
                            WriteOp::Set {
                                key: Arc::from(&key[..]),
                                value: Arc::from(&key[..]),
                                flags: t,
                                pinned: false,
                                ttl: None,
                            },
                            &primary,
                        );
                        assert!(matches!(outcome.into_set(), SetOutcome::Stored { .. }));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = u64::from(per_thread) * threads as u64;
        let locks = hot.primary_locks.load(Ordering::Relaxed);
        let batches = hot.batches.load(Ordering::Relaxed);
        assert_eq!(locks, batches, "combiner must lock once per batch");
        assert!(batches >= 1 && batches <= total);
        assert_eq!(stats.log_appends.load(Ordering::Relaxed), total);
        assert_eq!(stats.combiner_batches.load(Ordering::Relaxed), batches);
        // Every replica, once caught up, agrees with the primary on
        // every key — replica state is a function of the log alone.
        for t in 0..threads {
            for i in 0..per_thread {
                let key = format!("t{t}-k{i}").into_bytes();
                let expect = primary.lock().get(&key).expect("primary lost a write");
                for r in 0..2 {
                    let got = read_one(&hot, r, &key).expect("replica lost a write");
                    assert_eq!(got, expect);
                }
            }
        }
    }

    #[test]
    fn write_many_drains_as_one_batch() {
        // The batched-write invariant behind `Store::set_multi`: a whole
        // uncontended batch costs ONE clock read and ONE primary-lock
        // acquisition, not one per op.
        let (primary, hot, _clock) = harness(1 << 22);
        let mut out = Vec::new();
        hot.write_many(
            (0..50u32).map(|i| WriteOp::Set {
                key: Arc::from(format!("b{i}").into_bytes().as_slice()),
                value: Arc::from(format!("v{i}").into_bytes().as_slice()),
                flags: i,
                pinned: false,
                ttl: None,
            }),
            &primary,
            &mut out,
        );
        assert_eq!(out.len(), 50);
        assert!(out
            .iter()
            .all(|o| matches!(o, WriteOutcome::Set(SetOutcome::Stored { .. }))));
        assert_eq!(hot.primary_locks.load(Ordering::Relaxed), 1);
        assert_eq!(hot.batches.load(Ordering::Relaxed), 1);
        // Outcomes land in op order and every replica saw every write.
        for r in 0..REPLICAS {
            for i in 0..50u32 {
                let key = format!("b{i}").into_bytes();
                let v = read_one(&hot, r, &key).expect("replica lost a batched write");
                assert_eq!(&v.data[..], format!("v{i}").as_bytes());
                assert_eq!(v.flags, i);
            }
        }
    }

    /// Outcome of driving one op against the sequential oracle.
    fn oracle_apply(shard: &mut Shard, op: &WriteOp) -> WriteOutcome {
        let now = shard.now();
        shard.dispatch_mut(op, now)
    }

    proptest! {
        /// The flat-combined shard is observably equivalent to the
        /// sequential `Shard` under any interleaved op sequence,
        /// including TTL edges driven by the shared `TestClock`: every
        /// write outcome matches, and after every step each replica
        /// serves exactly what the oracle serves.
        #[test]
        fn flat_combined_matches_sequential_oracle(
            ops in proptest::collection::vec(
                (0u8..6, 0u32..10, 0usize..24, (any::<bool>(), 0u64..60), 0u64..40, any::<bool>()),
                1..80),
        ) {
            let clock = TestClock::new();
            let mut oracle = Shard::with_clock(1 << 20, clock.clone().into());
            let seed = Shard::with_clock(1 << 20, clock.clone().into());
            let hot = HotShard::new(&seed, REPLICAS, Arc::new(StoreStats::default()));
            let primary = Mutex::new(seed);
            for (step, (kind, keyn, vlen, (has_ttl, ttl_ns), advance_ns, negative)) in
                ops.into_iter().enumerate()
            {
                let key: Arc<[u8]> = Arc::from(format!("k{keyn}").into_bytes().as_slice());
                let value: Arc<[u8]> = Arc::from(vec![b'0' + (vlen as u8 % 10); vlen].as_slice());
                let ttl = has_ttl.then(|| Duration::from_nanos(ttl_ns));
                let op = match kind {
                    0 => WriteOp::Set {
                        key: Arc::clone(&key), value, flags: keyn, pinned: false, ttl,
                    },
                    1 => WriteOp::Add {
                        key: Arc::clone(&key), value, flags: keyn, ttl,
                    },
                    2 => WriteOp::Replace {
                        key: Arc::clone(&key), value, flags: keyn, ttl,
                    },
                    3 => {
                        // Token from the oracle's current state: stale or
                        // fresh depending on history — both paths must
                        // agree either way.
                        let token = oracle.get(&key).map(|v| v.cas).unwrap_or(7777);
                        WriteOp::Cas {
                            key: Arc::clone(&key), value, flags: keyn, token, ttl,
                        }
                    }
                    4 => WriteOp::Arith { key: Arc::clone(&key), delta: 3, negative },
                    _ => WriteOp::Delete { key: Arc::clone(&key) },
                };
                let expect = oracle_apply(&mut oracle, &op);
                let got = hot.write(op, &primary);
                prop_assert_eq!(got, expect, "outcome diverged at step {}", step);
                clock.advance(Duration::from_nanos(advance_ns));
                // After the advance, every replica must serve exactly
                // what the oracle serves for every key in the keyspace.
                for probe in 0..10u32 {
                    let pk = format!("k{probe}").into_bytes();
                    let want = oracle.peek_at(key_hash(&pk), &pk, oracle.now());
                    for r in 0..REPLICAS {
                        let got = read_one(&hot, r, &pk);
                        prop_assert_eq!(
                            &got, &want,
                            "replica {} diverged on {:?} at step {}", r, pk, step
                        );
                    }
                }
            }
        }
    }
}
