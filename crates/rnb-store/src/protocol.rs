//! The memcached **text protocol** subset used by the experiments:
//! `get` (multi-key), `set`, `delete`, `stats`, `version`, `quit`.
//!
//! Reference: memcached's `doc/protocol.txt`. Requests are CRLF-terminated
//! lines; `set` is followed by a data block of the declared length plus
//! CRLF.
//!
//! Parsing is zero-copy: [`parse_command`] returns a [`Command`] that
//! *borrows* the request line — keys are `&[u8]` slices into it, and a
//! `get`'s key list is a [`GetKeys`] cursor rather than a
//! `Vec<Vec<u8>>`. Paired with [`read_line_into`] /
//! [`read_data_block_into`] reading into pooled buffers, a serving loop
//! runs allocation-free at steady state (proven by the
//! `zero_alloc_serve` integration test).

// Wire-format module: every narrowing here changes what goes on the wire,
// so lossy `as` casts are denied — use `try_from` and surface the error.
// xtask lint rule R3 enforces the same contract textually.
#![deny(
    clippy::cast_possible_truncation,
    clippy::cast_possible_wrap,
    clippy::cast_sign_loss
)]

use std::io::{self, BufRead, Write};

/// Which storage verb a `set`-shaped command carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreVerb {
    /// Unconditional store.
    Set,
    /// Store only if absent.
    Add,
    /// Store only if present.
    Replace,
}

/// The key list of a `get`/`gets`, borrowed from the request line.
///
/// Iterating yields each key as a `&[u8]` slice into the line;
/// [`GetKeys::ranges`] yields the same tokens as `(start, end)` byte
/// offsets into the line [`parse_command`] was given, so a serving loop
/// can stash positions in a pooled `Vec<(usize, usize)>` and re-slice
/// its own line buffer without copying any key bytes.
#[derive(Debug, Clone, Copy)]
pub struct GetKeys<'a> {
    /// Line text after the verb (possibly whitespace-led).
    tail: &'a str,
    /// Byte offset of `tail` within the original line.
    base: usize,
    /// Number of keys (precomputed during parse).
    count: usize,
}

impl<'a> GetKeys<'a> {
    /// Number of keys in the request.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True if there are no keys ([`parse_command`] rejects that form,
    /// but the type stands alone).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The keys, as slices borrowed from the request line.
    pub fn iter(&self) -> impl Iterator<Item = &'a [u8]> + 'a {
        self.tail.split_whitespace().map(str::as_bytes)
    }

    /// `(start, end)` byte offsets of each key within the line passed
    /// to [`parse_command`].
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + 'a {
        let base = self.base;
        let mut rest = self.tail;
        let mut consumed = 0usize;
        std::iter::from_fn(move || {
            let trimmed = rest.trim_start();
            consumed += rest.len() - trimmed.len();
            rest = trimmed;
            if rest.is_empty() {
                return None;
            }
            let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
            let start = consumed;
            consumed += end;
            rest = &rest[end..];
            Some((base + start, base + consumed))
        })
    }
}

impl PartialEq for GetKeys<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count && self.iter().eq(other.iter())
    }
}

impl Eq for GetKeys<'_> {}

/// A parsed request line, borrowing from the line buffer it was parsed
/// out of.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command<'a> {
    /// `get <key>+` / `gets <key>+` — multi-key get (one *transaction* in
    /// paper terms). `gets` additionally returns the CAS token.
    Get {
        /// Requested keys (slices into the request line).
        keys: GetKeys<'a>,
        /// True for `gets` (include CAS tokens in the reply).
        with_cas: bool,
    },
    /// `set|add|replace <key> <flags> <exptime> <bytes> [noreply]`.
    Set {
        /// Which conditional variant.
        verb: StoreVerb,
        /// Entry key.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds. Signed, per memcached: 0 = never, negative
        /// = already expired (stored, then immediately invisible);
        /// memcached's absolute-time form for values > 30 days is not
        /// needed by the experiments.
        exptime: i64,
        /// Data block length that follows.
        bytes: usize,
        /// Suppress the reply line.
        noreply: bool,
    },
    /// `cas <key> <flags> <exptime> <bytes> <cas> [noreply]`.
    Cas {
        /// Entry key.
        key: &'a [u8],
        /// Opaque client flags.
        flags: u32,
        /// Expiry in seconds (0 = never, negative = already expired).
        exptime: i64,
        /// Data block length that follows.
        bytes: usize,
        /// The token from a previous `gets`.
        cas: u64,
        /// Suppress the reply line.
        noreply: bool,
    },
    /// `incr <key> <delta>` / `decr <key> <delta>`.
    Arith {
        /// Entry key.
        key: &'a [u8],
        /// Unsigned delta.
        delta: u64,
        /// True for `decr`.
        negative: bool,
        /// Suppress the reply line.
        noreply: bool,
    },
    /// `delete <key> [noreply]`.
    Delete {
        /// Entry key.
        key: &'a [u8],
        /// Suppress the reply line.
        noreply: bool,
    },
    /// `stats`.
    Stats,
    /// `version`.
    Version,
    /// `quit` — close the connection.
    Quit,
}

/// Maximum key length (memcached's limit).
pub const MAX_KEY_LEN: usize = 250;

/// Parse one request line (without the trailing CRLF). The returned
/// [`Command`] borrows `line`; nothing is copied.
pub fn parse_command(line: &[u8]) -> Result<Command<'_>, String> {
    let text = std::str::from_utf8(line).map_err(|_| "non-utf8 command line".to_string())?;
    let mut parts = text.split_whitespace();
    let verb = parts.next().ok_or_else(|| "empty command".to_string())?;
    match verb {
        "get" | "gets" => {
            // The verb is the first token, so `find` locates it exactly;
            // everything after it is the key list.
            let base = text.find(verb).unwrap_or(0) + verb.len();
            let tail = &text[base..];
            let mut count = 0usize;
            for key in tail.split_whitespace() {
                validate_key(key.as_bytes())?;
                count += 1;
            }
            if count == 0 {
                return Err("get requires at least one key".into());
            }
            Ok(Command::Get {
                keys: GetKeys { tail, base, count },
                with_cas: verb == "gets",
            })
        }
        "set" | "add" | "replace" | "cas" => {
            let key = parts.next().ok_or("missing key")?.as_bytes();
            validate_key(key)?;
            let flags: u32 = parts
                .next()
                .ok_or("missing flags")?
                .parse()
                .map_err(|_| "bad flags")?;
            // Signed: memcached treats a negative exptime as "expire
            // immediately", and clients do send -1.
            let exptime: i64 = parts
                .next()
                .ok_or("missing exptime")?
                .parse()
                .map_err(|_| "bad exptime")?;
            let bytes: usize = parts
                .next()
                .ok_or("missing bytes")?
                .parse()
                .map_err(|_| "bad bytes")?;
            let cas: u64 = if verb == "cas" {
                parts
                    .next()
                    .ok_or("cas: missing token")?
                    .parse()
                    .map_err(|_| "bad cas token")?
            } else {
                0
            };
            let noreply = match parts.next() {
                None => false,
                Some("noreply") => true,
                Some(other) => return Err(format!("{verb}: unexpected token {other:?}")),
            };
            Ok(match verb {
                "cas" => Command::Cas {
                    key,
                    flags,
                    exptime,
                    bytes,
                    cas,
                    noreply,
                },
                "add" => Command::Set {
                    verb: StoreVerb::Add,
                    key,
                    flags,
                    exptime,
                    bytes,
                    noreply,
                },
                "replace" => Command::Set {
                    verb: StoreVerb::Replace,
                    key,
                    flags,
                    exptime,
                    bytes,
                    noreply,
                },
                _ => Command::Set {
                    verb: StoreVerb::Set,
                    key,
                    flags,
                    exptime,
                    bytes,
                    noreply,
                },
            })
        }
        "incr" | "decr" => {
            let key = parts.next().ok_or("missing key")?.as_bytes();
            validate_key(key)?;
            let delta: u64 = parts
                .next()
                .ok_or("missing delta")?
                .parse()
                .map_err(|_| "bad delta")?;
            let noreply = match parts.next() {
                None => false,
                Some("noreply") => true,
                Some(other) => return Err(format!("{verb}: unexpected token {other:?}")),
            };
            Ok(Command::Arith {
                key,
                delta,
                negative: verb == "decr",
                noreply,
            })
        }
        "delete" => {
            let key = parts.next().ok_or("delete: missing key")?.as_bytes();
            validate_key(key)?;
            let noreply = match parts.next() {
                None => false,
                Some("noreply") => true,
                Some(other) => return Err(format!("delete: unexpected token {other:?}")),
            };
            Ok(Command::Delete { key, noreply })
        }
        "stats" => Ok(Command::Stats),
        "version" => Ok(Command::Version),
        "quit" => Ok(Command::Quit),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn validate_key(key: &[u8]) -> Result<(), String> {
    if key.is_empty() {
        return Err("empty key".into());
    }
    if key.len() > MAX_KEY_LEN {
        return Err(format!("key longer than {MAX_KEY_LEN}"));
    }
    if key.iter().any(|&b| b <= b' ' || b == 0x7f) {
        return Err("key contains control or space characters".into());
    }
    Ok(())
}

/// Read one CRLF (or bare-LF) terminated line into `buf` (cleared
/// first; the terminator is stripped). Returns the number of bytes
/// consumed from the stream — terminator included — or `None` on clean
/// EOF. Reusing `buf` keeps the steady-state read path allocation-free.
pub fn read_line_into<R: BufRead>(reader: &mut R, buf: &mut Vec<u8>) -> io::Result<Option<usize>> {
    buf.clear();
    let n = reader.read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(None);
    }
    while matches!(buf.last(), Some(b'\n') | Some(b'\r')) {
        buf.pop();
    }
    Ok(Some(n))
}

/// Read one CRLF (or bare-LF) terminated line. `Ok(None)` on clean EOF.
///
/// Allocating convenience form of [`read_line_into`].
pub fn read_line<R: BufRead>(reader: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut buf = Vec::with_capacity(64);
    Ok(read_line_into(reader, &mut buf)?.map(|_| buf))
}

/// Read a `set` data block of `len` bytes plus its trailing CRLF into
/// `buf` (cleared first). Returns the bytes consumed from the stream
/// (`len + 2`).
pub fn read_data_block_into<R: BufRead>(
    reader: &mut R,
    len: usize,
    buf: &mut Vec<u8>,
) -> io::Result<usize> {
    buf.clear();
    buf.resize(len, 0);
    reader.read_exact(buf)?;
    let mut crlf = [0u8; 2];
    reader.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "data block not CRLF-terminated",
        ));
    }
    Ok(len + 2)
}

/// Read a `set` data block of `len` bytes plus its trailing CRLF.
///
/// Allocating convenience form of [`read_data_block_into`].
pub fn read_data_block<R: BufRead>(reader: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut data = Vec::new();
    read_data_block_into(reader, len, &mut data)?;
    Ok(data)
}

/// Upper bound on a `set`/`cas` data block the incremental parser will
/// buffer (memcached's default item limit is 1 MiB; 16 MiB leaves
/// headroom for experiments while still bounding a malicious `bytes`
/// field).
pub const MAX_DATA_BLOCK: usize = 16 << 20;

/// One step of incremental request extraction from a byte buffer — the
/// readiness path's replacement for [`read_line_into`] +
/// [`read_data_block_into`]. Borrows from the buffer it was parsed out
/// of; nothing is copied.
#[derive(Debug)]
pub enum NextRequest<'a> {
    /// The buffer does not yet hold a complete request; read more bytes
    /// and try again. Nothing was consumed.
    Incomplete,
    /// A complete request. `line` is the exact slice [`parse_command`]
    /// saw (so [`GetKeys::ranges`] offsets index into it), `data` is the
    /// `set`/`cas` payload without its CRLF (empty otherwise), and
    /// `consumed` is the total bytes to drain — terminators and any
    /// skipped blank lines included.
    Request {
        /// The request line, terminator stripped.
        line: &'a [u8],
        /// The parsed command, borrowing `line`.
        cmd: Command<'a>,
        /// `set`/`cas` payload (without trailing CRLF); empty otherwise.
        data: &'a [u8],
        /// Bytes of the buffer this request consumed.
        consumed: usize,
    },
    /// A complete line that failed to parse: answer
    /// `CLIENT_ERROR <msg>` and drain `consumed` bytes — the connection
    /// stays usable, matching the blocking path.
    Error {
        /// Parse error text for the `CLIENT_ERROR` reply.
        msg: String,
        /// Bytes of the buffer the bad line consumed.
        consumed: usize,
    },
    /// Unrecoverable framing violation (data block not CRLF-terminated,
    /// or a `bytes` field beyond [`MAX_DATA_BLOCK`]): the stream is
    /// desynced and the connection must close, matching the blocking
    /// path's fatal [`read_data_block_into`] error.
    Desync,
}

/// Try to extract one complete request from the front of `buf`.
///
/// Blank lines ahead of the request are skipped silently (their bytes
/// are folded into `consumed`), mirroring the blocking command loop.
/// The caller drains `consumed` bytes after handling the result; on
/// [`NextRequest::Incomplete`] nothing may be drained.
pub fn next_request(buf: &[u8]) -> NextRequest<'_> {
    let mut offset = 0usize;
    loop {
        let rest = &buf[offset..];
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else {
            return NextRequest::Incomplete;
        };
        // Strip the terminator the way `read_line_into` does: the LF and
        // any trailing CRs.
        let mut line_end = nl;
        while line_end > 0 && rest[line_end - 1] == b'\r' {
            line_end -= 1;
        }
        let after_line = offset + nl + 1;
        if line_end == 0 {
            // Blank line: skip and keep scanning.
            offset = after_line;
            continue;
        }
        let line = &rest[..line_end];
        let cmd = match parse_command(line) {
            Ok(cmd) => cmd,
            Err(msg) => {
                return NextRequest::Error {
                    msg,
                    consumed: after_line,
                }
            }
        };
        let body = match cmd {
            Command::Set { bytes, .. } | Command::Cas { bytes, .. } => bytes,
            _ => 0,
        };
        if body == 0 {
            return NextRequest::Request {
                line,
                cmd,
                data: &[],
                consumed: after_line,
            };
        }
        if body > MAX_DATA_BLOCK {
            return NextRequest::Desync;
        }
        // Data block: `body` payload bytes plus the CRLF terminator.
        let end = after_line + body + 2;
        if buf.len() < end {
            return NextRequest::Incomplete;
        }
        if &buf[end - 2..end] != b"\r\n" {
            return NextRequest::Desync;
        }
        return NextRequest::Request {
            line,
            cmd,
            data: &buf[after_line..end - 2],
            consumed: end,
        };
    }
}

/// Write one `VALUE` stanza of a get response. `cas` adds the token
/// (the `gets` reply form).
pub fn write_value<W: Write>(
    w: &mut W,
    key: &[u8],
    flags: u32,
    data: &[u8],
    cas: Option<u64>,
) -> io::Result<()> {
    w.write_all(b"VALUE ")?;
    w.write_all(key)?;
    match cas {
        Some(token) => write!(w, " {flags} {} {token}\r\n", data.len())?,
        None => write!(w, " {flags} {}\r\n", data.len())?,
    }
    w.write_all(data)?;
    w.write_all(b"\r\n")
}

/// Terminate a get/stats response.
pub fn write_end<W: Write>(w: &mut W) -> io::Result<()> {
    w.write_all(b"END\r\n")
}

/// Canned reply lines.
pub mod reply {
    /// Reply to a successful `set`/`add`/`replace`/`cas`.
    pub const STORED: &[u8] = b"STORED\r\n";
    /// Reply to a conditional store whose condition failed
    /// (`add` on existing / `replace` on missing).
    pub const NOT_STORED: &[u8] = b"NOT_STORED\r\n";
    /// Reply to a `cas` with a stale token.
    pub const EXISTS: &[u8] = b"EXISTS\r\n";
    /// Reply to a `set` refused for memory.
    pub const OOM: &[u8] = b"SERVER_ERROR out of memory storing object\r\n";
    /// Reply to a successful `delete`.
    pub const DELETED: &[u8] = b"DELETED\r\n";
    /// Reply to a `delete`/`cas`/`incr` of a missing key.
    pub const NOT_FOUND: &[u8] = b"NOT_FOUND\r\n";
    /// Reply to `incr`/`decr` on a non-numeric value.
    pub const NON_NUMERIC: &[u8] =
        b"CLIENT_ERROR cannot increment or decrement non-numeric value\r\n";
    /// Version banner.
    pub const VERSION: &[u8] = b"VERSION rnb-store 0.1.0\r\n";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys_of(cmd: &Command<'_>) -> Vec<Vec<u8>> {
        match cmd {
            Command::Get { keys, .. } => keys.iter().map(<[u8]>::to_vec).collect(),
            other => panic!("expected a get, got {other:?}"),
        }
    }

    #[test]
    fn parse_get_multi() {
        let cmd = parse_command(b"get a bb ccc").unwrap();
        assert_eq!(
            keys_of(&cmd),
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
        );
        assert!(matches!(
            cmd,
            Command::Get {
                with_cas: false,
                ..
            }
        ));
        let cmd = parse_command(b"gets a").unwrap();
        assert!(matches!(cmd, Command::Get { with_cas: true, .. }));
    }

    #[test]
    fn get_keys_ranges_index_the_original_line() {
        let line = b"get a bb  ccc";
        let Command::Get { keys, .. } = parse_command(line).unwrap() else {
            panic!("not a get");
        };
        assert_eq!(keys.len(), 3);
        assert!(!keys.is_empty());
        let ranges: Vec<(usize, usize)> = keys.ranges().collect();
        assert_eq!(ranges, vec![(4, 5), (6, 8), (10, 13)]);
        for ((s, e), key) in ranges.iter().zip(keys.iter()) {
            assert_eq!(&line[*s..*e], key, "range and iter must agree");
        }
    }

    #[test]
    fn parse_set_with_and_without_noreply() {
        let cmd = parse_command(b"set mykey 7 0 10").unwrap();
        assert_eq!(
            cmd,
            Command::Set {
                verb: StoreVerb::Set,
                key: b"mykey",
                flags: 7,
                exptime: 0,
                bytes: 10,
                noreply: false
            }
        );
        let cmd = parse_command(b"set mykey 0 0 3 noreply").unwrap();
        assert!(matches!(cmd, Command::Set { noreply: true, .. }));
    }

    #[test]
    fn parse_negative_exptime() {
        // Regression: exptime was parsed as u32, so memcached's signed
        // "-1 = already expired" form answered CLIENT_ERROR bad exptime.
        let cmd = parse_command(b"set mykey 7 -1 10").unwrap();
        assert_eq!(
            cmd,
            Command::Set {
                verb: StoreVerb::Set,
                key: b"mykey",
                flags: 7,
                exptime: -1,
                bytes: 10,
                noreply: false
            }
        );
        assert!(matches!(
            parse_command(b"cas k 1 -30 5 42").unwrap(),
            Command::Cas { exptime: -30, .. }
        ));
        assert!(matches!(
            parse_command(b"add k 0 -1 5").unwrap(),
            Command::Set {
                verb: StoreVerb::Add,
                exptime: -1,
                ..
            }
        ));
        assert!(parse_command(b"set k 0 - 5").is_err(), "bare dash");
        assert!(parse_command(b"set k 0 -x 5").is_err());
    }

    #[test]
    fn parse_add_replace_cas_arith() {
        assert!(matches!(
            parse_command(b"add k 0 0 5").unwrap(),
            Command::Set {
                verb: StoreVerb::Add,
                ..
            }
        ));
        assert!(matches!(
            parse_command(b"replace k 0 60 5").unwrap(),
            Command::Set {
                verb: StoreVerb::Replace,
                exptime: 60,
                ..
            }
        ));
        assert_eq!(
            parse_command(b"cas k 1 0 5 42").unwrap(),
            Command::Cas {
                key: b"k",
                flags: 1,
                exptime: 0,
                bytes: 5,
                cas: 42,
                noreply: false
            }
        );
        assert_eq!(
            parse_command(b"incr n 3").unwrap(),
            Command::Arith {
                key: b"n",
                delta: 3,
                negative: false,
                noreply: false
            }
        );
        assert!(matches!(
            parse_command(b"decr n 1 noreply").unwrap(),
            Command::Arith {
                negative: true,
                noreply: true,
                ..
            }
        ));
        assert!(
            parse_command(b"cas k 1 0 5").is_err(),
            "cas requires a token"
        );
        assert!(parse_command(b"incr n").is_err());
        assert!(parse_command(b"incr n x").is_err());
    }

    #[test]
    fn parse_delete_stats_version_quit() {
        assert_eq!(
            parse_command(b"delete k").unwrap(),
            Command::Delete {
                key: b"k",
                noreply: false
            }
        );
        assert_eq!(parse_command(b"stats").unwrap(), Command::Stats);
        assert_eq!(parse_command(b"version").unwrap(), Command::Version);
        assert_eq!(parse_command(b"quit").unwrap(), Command::Quit);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_command(b"").is_err());
        assert!(parse_command(b"bogus x").is_err());
        assert!(parse_command(b"get").is_err());
        assert!(parse_command(b"set k x 0 5").is_err());
        assert!(parse_command(b"set k 0 0 5 replyno").is_err());
        assert!(parse_command(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn key_validation() {
        let long = vec![b'k'; 251];
        assert!(parse_command(&[b"get ", &long[..]].concat()).is_err());
        let ok = vec![b'k'; 250];
        assert!(parse_command(&[b"get ", &ok[..]].concat()).is_ok());
    }

    #[test]
    fn read_line_handles_crlf_lf_eof() {
        let mut cursor = io::Cursor::new(b"abc\r\ndef\nxyz".to_vec());
        assert_eq!(read_line(&mut cursor).unwrap(), Some(b"abc".to_vec()));
        assert_eq!(read_line(&mut cursor).unwrap(), Some(b"def".to_vec()));
        assert_eq!(read_line(&mut cursor).unwrap(), Some(b"xyz".to_vec()));
        assert_eq!(read_line(&mut cursor).unwrap(), None);
    }

    #[test]
    fn read_line_into_reports_wire_bytes() {
        let mut cursor = io::Cursor::new(b"abc\r\ndef\nxyz".to_vec());
        let mut buf = Vec::new();
        assert_eq!(read_line_into(&mut cursor, &mut buf).unwrap(), Some(5));
        assert_eq!(buf, b"abc");
        assert_eq!(read_line_into(&mut cursor, &mut buf).unwrap(), Some(4));
        assert_eq!(buf, b"def");
        assert_eq!(read_line_into(&mut cursor, &mut buf).unwrap(), Some(3));
        assert_eq!(buf, b"xyz");
        assert_eq!(read_line_into(&mut cursor, &mut buf).unwrap(), None);
        assert!(buf.is_empty(), "EOF clears the buffer");
    }

    #[test]
    fn data_block_roundtrip() {
        let mut cursor = io::Cursor::new(b"hello\r\n".to_vec());
        assert_eq!(read_data_block(&mut cursor, 5).unwrap(), b"hello".to_vec());
        let mut bad = io::Cursor::new(b"helloXY".to_vec());
        assert!(read_data_block(&mut bad, 5).is_err());
        let mut cursor = io::Cursor::new(b"hello\r\n".to_vec());
        let mut buf = Vec::new();
        assert_eq!(read_data_block_into(&mut cursor, 5, &mut buf).unwrap(), 7);
        assert_eq!(buf, b"hello");
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// The parser never panics on arbitrary input.
            #[test]
            fn parse_never_panics(line in proptest::collection::vec(any::<u8>(), 0..120)) {
                let _ = parse_command(&line);
            }

            /// Well-formed generated commands parse to the right variant.
            #[test]
            fn valid_commands_parse(
                key in "[a-zA-Z0-9_.-]{1,40}",
                flags in any::<u32>(),
                bytes in 0usize..65536,
                delta in any::<u64>(),
            ) {
                let set = format!("set {key} {flags} 0 {bytes}");
                let set_ok = matches!(
                    parse_command(set.as_bytes()),
                    Ok(Command::Set { verb: StoreVerb::Set, .. })
                );
                prop_assert!(set_ok);
                let get = format!("get {key}");
                let get_ok = matches!(parse_command(get.as_bytes()), Ok(Command::Get { .. }));
                prop_assert!(get_ok);
                let incr = format!("incr {key} {delta}");
                let incr_ok =
                    matches!(parse_command(incr.as_bytes()), Ok(Command::Arith { .. }));
                prop_assert!(incr_ok);
            }

            /// Get key lists of any shape: ranges() re-slices the line to
            /// exactly the keys iter() yields, in order.
            #[test]
            fn get_ranges_agree_with_iter(
                keys in proptest::collection::vec("[a-zA-Z0-9_.-]{1,20}", 1..12),
                pad in proptest::collection::vec(0usize..3, 1..13),
            ) {
                let mut line = String::from("get");
                for (i, k) in keys.iter().enumerate() {
                    let spaces = 1 + pad.get(i).copied().unwrap_or(0);
                    for _ in 0..spaces {
                        line.push(' ');
                    }
                    line.push_str(k);
                }
                let parsed = parse_command(line.as_bytes()).unwrap();
                let Command::Get { keys: got, .. } = parsed else {
                    panic!("not a get");
                };
                prop_assert_eq!(got.len(), keys.len());
                let by_iter: Vec<&[u8]> = got.iter().collect();
                let by_range: Vec<&[u8]> =
                    got.ranges().map(|(s, e)| &line.as_bytes()[s..e]).collect();
                prop_assert_eq!(&by_iter, &by_range);
                for (want, have) in keys.iter().zip(by_iter) {
                    prop_assert_eq!(want.as_bytes(), have);
                }
            }

            /// Binary values of any content survive a write_value/read
            /// round-trip through the wire format.
            #[test]
            fn value_roundtrip(
                key in "[a-z0-9]{1,30}",
                data in proptest::collection::vec(any::<u8>(), 0..2000),
                flags in any::<u32>(),
            ) {
                let mut wire = Vec::new();
                write_value(&mut wire, key.as_bytes(), flags, &data, None).unwrap();
                let mut cursor = std::io::Cursor::new(wire);
                let header = read_line(&mut cursor).unwrap().unwrap();
                let text = String::from_utf8(header).unwrap();
                let mut parts = text.split_whitespace();
                prop_assert_eq!(parts.next(), Some("VALUE"));
                prop_assert_eq!(parts.next(), Some(key.as_str()));
                prop_assert_eq!(parts.next().unwrap().parse::<u32>().unwrap(), flags);
                let len: usize = parts.next().unwrap().parse().unwrap();
                prop_assert_eq!(len, data.len());
                let got = read_data_block(&mut cursor, len).unwrap();
                prop_assert_eq!(got, data);
            }
        }
    }

    #[test]
    fn value_stanza_format() {
        let mut out = Vec::new();
        write_value(&mut out, b"k1", 9, b"0123456789", None).unwrap();
        write_end(&mut out).unwrap();
        assert_eq!(&out[..], b"VALUE k1 9 10\r\n0123456789\r\nEND\r\n");
        let mut with_cas = Vec::new();
        write_value(&mut with_cas, b"k1", 9, b"ab", Some(77)).unwrap();
        assert_eq!(&with_cas[..], b"VALUE k1 9 2 77\r\nab\r\n");
    }

    #[test]
    fn next_request_simple_line() {
        match next_request(b"version\r\nget a\r\n") {
            NextRequest::Request {
                cmd: Command::Version,
                data,
                consumed,
                ..
            } => {
                assert!(data.is_empty());
                assert_eq!(consumed, 9);
            }
            other => panic!("expected version, got {other:?}"),
        }
    }

    #[test]
    fn next_request_incomplete_line_consumes_nothing() {
        assert!(matches!(next_request(b""), NextRequest::Incomplete));
        assert!(matches!(next_request(b"get a"), NextRequest::Incomplete));
        assert!(matches!(
            next_request(b"set k 0 0 2\r\nx"),
            NextRequest::Incomplete
        ));
        // Payload present but terminator still in flight.
        assert!(matches!(
            next_request(b"set k 0 0 2\r\nxy\r"),
            NextRequest::Incomplete
        ));
    }

    #[test]
    fn next_request_set_with_data_block() {
        let buf = b"set k 3 0 2\r\nxy\r\nget k\r\n";
        match next_request(buf) {
            NextRequest::Request {
                cmd: Command::Set { key, bytes, .. },
                data,
                consumed,
                ..
            } => {
                assert_eq!(key, b"k");
                assert_eq!(bytes, 2);
                assert_eq!(data, b"xy");
                assert_eq!(consumed, 17);
            }
            other => panic!("expected set, got {other:?}"),
        }
    }

    #[test]
    fn next_request_get_ranges_index_returned_line() {
        match next_request(b"get aa b\r\n") {
            NextRequest::Request {
                line,
                cmd: Command::Get { keys, .. },
                ..
            } => {
                let got: Vec<&[u8]> = keys.ranges().map(|(s, e)| &line[s..e]).collect();
                assert_eq!(got, vec![&b"aa"[..], &b"b"[..]]);
            }
            other => panic!("expected get, got {other:?}"),
        }
    }

    #[test]
    fn next_request_skips_blank_lines_and_counts_them() {
        match next_request(b"\r\n\nversion\r\n") {
            NextRequest::Request {
                cmd: Command::Version,
                consumed,
                ..
            } => assert_eq!(consumed, 12),
            other => panic!("expected version, got {other:?}"),
        }
    }

    #[test]
    fn next_request_parse_error_keeps_connection() {
        match next_request(b"frobnicate\r\nversion\r\n") {
            NextRequest::Error { msg, consumed } => {
                assert!(msg.contains("unknown command"), "{msg}");
                assert_eq!(consumed, 12);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn next_request_desync_on_bad_terminator_or_huge_block() {
        assert!(matches!(
            next_request(b"set k 0 0 2\r\nxyQQget k\r\n"),
            NextRequest::Desync
        ));
        let huge = format!("set k 0 0 {}\r\n", MAX_DATA_BLOCK + 1);
        assert!(matches!(next_request(huge.as_bytes()), NextRequest::Desync));
    }
}
