//! End-to-end tests: RnbClient against a fleet of real StoreServers over
//! loopback TCP — the paper's §IV proof-of-concept exercised as a system.

use rnb_client::{item_key, RnbClient, RnbClientConfig};
use rnb_core::{Placement, WritePolicy};
use rnb_store::{Store, StoreServer};
use std::net::SocketAddr;
use std::sync::Arc;

struct Fleet {
    servers: Vec<StoreServer>,
}

impl Fleet {
    fn start(n: usize, mem: usize) -> Fleet {
        let servers = (0..n)
            .map(|_| StoreServer::start(Arc::new(Store::new(mem))).expect("server"))
            .collect();
        Fleet { servers }
    }

    fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.addr()).collect()
    }

    fn store(&self, i: usize) -> &Arc<Store> {
        self.servers[i].store()
    }
}

#[test]
fn set_then_multi_get_roundtrip() {
    let fleet = Fleet::start(8, 1 << 22);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(3)).unwrap();
    for item in 0..300u64 {
        client
            .set(item, format!("value-{item}").as_bytes())
            .unwrap();
    }
    let request: Vec<u64> = (0..300).step_by(11).collect();
    let values = client.multi_get(&request).unwrap();
    for (item, value) in request.iter().zip(&values) {
        assert_eq!(
            value.as_deref(),
            Some(format!("value-{item}").as_bytes()),
            "item {item}"
        );
    }
    // Replication was actually written: each item's bytes exist on k
    // servers.
    let copies: usize = (0..8).map(|s| fleet.store(s).len()).sum();
    assert_eq!(copies, 300 * 3);
    // Bundling happened: far fewer round-1 txns than items.
    let stats = client.stats();
    assert!(stats.round1_txns < request.len() as u64);
    assert_eq!(stats.planned_misses, 0);
    assert_eq!(stats.unavailable_items, 0);
}

#[test]
fn missing_items_come_back_as_none() {
    let fleet = Fleet::start(4, 1 << 20);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(2)).unwrap();
    client.set(1, b"one").unwrap();
    let values = client.multi_get(&[1, 2, 3]).unwrap();
    assert_eq!(values[0].as_deref(), Some(&b"one"[..]));
    assert!(values[1].is_none() && values[2].is_none());
    assert_eq!(client.stats().unavailable_items, 2);
}

#[test]
fn round2_fallback_recovers_evicted_replicas_and_writes_back() {
    let fleet = Fleet::start(4, 1 << 22);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(3)).unwrap();
    client.set(7, b"payload").unwrap();
    // Sabotage: delete item 7 from every server except its distinguished
    // copy (simulating LRU eviction under overbooking).
    let replicas = client.bundler().placement().replicas(7);
    for &server in &replicas[1..] {
        fleet.store(server as usize).delete(&item_key(7));
    }
    // A read bundled with other items may plan 7 on an evicted replica;
    // force that by requesting only item 7 plus items that pull the plan
    // away from the distinguished copy. Simplest deterministic check:
    // read repeatedly; the answer must always be correct.
    for _ in 0..3 {
        let values = client.multi_get(&[7]).unwrap();
        assert_eq!(values[0].as_deref(), Some(&b"payload"[..]));
    }
    // Single-item requests go straight to the distinguished copy, so no
    // misses are even incurred (§III-C1's rule, now over real TCP).
    assert_eq!(client.stats().planned_misses, 0);

    // Now a multi-item request that includes 7 — whatever the plan, the
    // item must arrive, and any round-1 miss must be written back.
    for batch in 0..10u64 {
        for item in 100 + batch * 10..110 + batch * 10 {
            client.set(item, b"x").unwrap();
        }
        let request: Vec<u64> = (100 + batch * 10..110 + batch * 10).chain([7]).collect();
        let values = client.multi_get(&request).unwrap();
        assert!(values.iter().all(Option::is_some));
    }
    let s = client.stats();
    assert_eq!(s.unavailable_items, 0);
    // If any plan hit the sabotaged replicas, recovery (round 2 or a
    // hitchhiker) plus write-back must have fired.
    if s.planned_misses > 0 {
        assert!(
            s.writebacks > 0 || s.rescued_by_hitchhikers > 0,
            "misses occurred but nothing recovered/wrote back: {s:?}"
        );
    }
}

#[test]
fn bundling_reduces_transactions_vs_no_replication_over_tcp() {
    let fleet = Fleet::start(8, 1 << 22);
    let addrs = fleet.addrs();
    let mut rnb = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
    let mut plain = RnbClient::connect(&addrs, RnbClientConfig::new(1)).unwrap();
    for item in 0..500u64 {
        rnb.set(item, b"v").unwrap();
        plain.set(item, b"v").unwrap();
    }
    for r in 0..40u64 {
        let request: Vec<u64> = (0..25).map(|i| (r * 41 + i * 19) % 500).collect();
        assert!(rnb.multi_get(&request).unwrap().iter().all(Option::is_some));
        assert!(plain
            .multi_get(&request)
            .unwrap()
            .iter()
            .all(Option::is_some));
    }
    assert!(
        rnb.stats().tpr() < 0.8 * plain.stats().tpr(),
        "bundling should cut TPR over real sockets: {} vs {}",
        rnb.stats().tpr(),
        plain.stats().tpr()
    );
}

#[test]
fn invalidate_then_write_policy_over_tcp() {
    let fleet = Fleet::start(6, 1 << 20);
    let config = RnbClientConfig::new(3).with_write_policy(WritePolicy::InvalidateThenWrite);
    let mut client = RnbClient::connect(&fleet.addrs(), config).unwrap();
    client.set(5, b"v1").unwrap();
    // Only the distinguished copy exists after an invalidate-then-write.
    let replicas = client.bundler().placement().replicas(5);
    assert!(fleet
        .store(replicas[0] as usize)
        .get(&item_key(5))
        .is_some());
    for &server in &replicas[1..] {
        assert!(
            fleet.store(server as usize).get(&item_key(5)).is_none(),
            "replica server {server} should hold nothing after invalidation"
        );
    }
    // Reads still work (distinguished fallback) and refill replicas via
    // write-back over time.
    let values = client.multi_get(&[5]).unwrap();
    assert_eq!(values[0].as_deref(), Some(&b"v1"[..]));
}

#[test]
fn atomic_counter_over_tcp_single_client() {
    let fleet = Fleet::start(4, 1 << 20);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(3)).unwrap();
    client.set(99, b"0").unwrap();
    for _ in 0..25 {
        client
            .atomic_update(99, |bytes| {
                let n: u64 = std::str::from_utf8(bytes).unwrap().parse().unwrap();
                (n + 2).to_string().into_bytes()
            })
            .unwrap();
    }
    let values = client.multi_get(&[99]).unwrap();
    assert_eq!(values[0].as_deref(), Some(&b"50"[..]));
}

#[test]
fn atomic_counter_over_tcp_concurrent_clients() {
    let fleet = Fleet::start(4, 1 << 20);
    let addrs = fleet.addrs();
    {
        let mut seed_client = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
        seed_client.set(123, b"0").unwrap();
    }
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let addrs = addrs.clone();
            std::thread::spawn(move || {
                let mut client = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
                for _ in 0..100 {
                    client
                        .atomic_update(123, |bytes| {
                            let n: u64 = std::str::from_utf8(bytes).unwrap().parse().unwrap();
                            (n + 1).to_string().into_bytes()
                        })
                        .unwrap();
                }
                client.stats().cas_retries
            })
        })
        .collect();
    let mut retries = 0;
    for t in threads {
        retries += t.join().unwrap();
    }
    let mut reader = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
    let values = reader.multi_get(&[123]).unwrap();
    assert_eq!(
        values[0].as_deref(),
        Some(&b"400"[..]),
        "lost increments (observed {retries} CAS retries)"
    );
}

#[test]
fn server_failure_is_survived_via_replicas() {
    // Failure injection: kill one of 6 servers; with 3 replicas every
    // item still has two live homes, so reads keep succeeding.
    let mut fleet = Fleet::start(6, 1 << 22);
    let addrs = fleet.addrs();
    let mut client = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
    for item in 0..400u64 {
        client.set(item, format!("v{item}").as_bytes()).unwrap();
    }

    // Crash server 2 (sever its live connections too).
    fleet.servers[2].shutdown();

    let mut served = 0usize;
    for r in 0..30u64 {
        let request: Vec<u64> = (0..20).map(|i| (r * 29 + i * 13) % 400).collect();
        let values = client
            .multi_get(&request)
            .expect("client must not error out");
        for (item, value) in request.iter().zip(&values) {
            assert_eq!(
                value.as_deref(),
                Some(format!("v{item}").as_bytes()),
                "item {item} lost after single-server failure"
            );
            served += 1;
        }
    }
    assert_eq!(served, 600);
    let s = client.stats();
    assert!(
        s.failed_txns > 0,
        "the dead server should have produced failed transactions"
    );
    assert_eq!(
        s.unavailable_items, 0,
        "replication must mask a single failure"
    );
}

#[test]
fn losing_all_replicas_reports_unavailable_not_error() {
    // Kill more servers than the replication level can mask: items whose
    // entire replica set is dead come back as None, the rest survive.
    let mut fleet = Fleet::start(4, 1 << 22);
    let addrs = fleet.addrs();
    let mut client = RnbClient::connect(&addrs, RnbClientConfig::new(2)).unwrap();
    for item in 0..100u64 {
        client.set(item, b"v").unwrap();
    }
    // Kill servers 0 and 1: any item with replicas ⊆ {0,1} is gone.
    fleet.servers[0].shutdown();
    fleet.servers[1].shutdown();

    let request: Vec<u64> = (0..100).collect();
    let values = client.multi_get(&request).expect("no hard error");
    let placement = client.bundler().placement();
    for (item, value) in request.iter().zip(&values) {
        let reps = placement.replicas(*item);
        let fully_dead = reps.iter().all(|&s| s <= 1);
        if fully_dead {
            assert!(
                value.is_none(),
                "item {item} has no live replica but returned data"
            );
        } else {
            assert!(
                value.is_some(),
                "item {item} has a live replica yet was not served"
            );
        }
    }
    assert!(client.stats().failed_txns > 0);
}

#[test]
fn killed_and_restarted_server_is_reconnected_lazily() {
    // Regression for the broken-connection bug: an I/O error used to
    // leave the dead/desynced StoreClient in place, so every later round
    // that planned a transaction on that server failed forever — even
    // after the server came back. Now the error marks the connection
    // broken and the next use redials.
    let mut fleet = Fleet::start(5, 1 << 22);
    let addrs = fleet.addrs();
    let mut client = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
    for item in 0..200u64 {
        client.set(item, format!("v{item}").as_bytes()).unwrap();
    }

    // Kill server 2 under the client's live connections: the next
    // multi_get discovers the breakage mid-request via I/O errors.
    let port = addrs[2].port();
    fleet.servers[2].shutdown();

    let request: Vec<u64> = (0..200).collect();
    for _ in 0..3 {
        let values = client
            .multi_get(&request)
            .expect("reads survive the outage");
        for (item, value) in request.iter().zip(&values) {
            assert_eq!(
                value.as_deref(),
                Some(format!("v{item}").as_bytes()),
                "item {item} lost while one server was down"
            );
        }
    }
    let mid = client.stats();
    assert!(mid.failed_txns > 0, "dead server must surface failed txns");
    assert!(
        mid.round3_txns > 0,
        "items whose distinguished copy lived on the dead server must \
         fall through to the survivor sweep: {mid:?}"
    );

    // Restart on the same port with a fresh (empty) store and
    // repopulate. The client must redial — not keep erroring on the
    // connections it marked broken during the outage.
    let mut revived = None;
    for _ in 0..10_000 {
        match StoreServer::start_on(Arc::new(Store::new(1 << 22)), port) {
            Ok(s) => {
                revived = Some(s);
                break;
            }
            Err(_) => std::thread::yield_now(),
        }
    }
    let _revived = revived.expect("rebind on the freed port");
    for item in 0..200u64 {
        client.set(item, format!("v{item}").as_bytes()).unwrap();
    }
    let values = client.multi_get(&request).expect("reads after restart");
    for (item, value) in request.iter().zip(&values) {
        assert_eq!(
            value.as_deref(),
            Some(format!("v{item}").as_bytes()),
            "item {item} wrong after server restart"
        );
    }
    let end = client.stats();
    assert!(
        end.reconnects > 0,
        "the revived server must have been redialed: {end:?}"
    );
    assert_eq!(end.unavailable_items, 0, "nothing may be lost end-to-end");
}

mod pipelined_equivalence {
    use super::*;
    use proptest::prelude::*;
    use std::sync::{Mutex, OnceLock};

    struct Env {
        _fleet: Fleet,
        pipelined: RnbClient,
        sequential: RnbClient,
    }

    // One fleet shared across proptest cases (starting servers per case
    // would dominate the run); the Mutex serializes cases.
    fn env() -> &'static Mutex<Env> {
        static ENV: OnceLock<Mutex<Env>> = OnceLock::new();
        ENV.get_or_init(|| {
            let fleet = Fleet::start(6, 1 << 22);
            let addrs = fleet.addrs();
            let mut pipelined = RnbClient::connect(&addrs, RnbClientConfig::new(3)).unwrap();
            let sequential =
                RnbClient::connect(&addrs, RnbClientConfig::new(3).with_pipeline(false)).unwrap();
            for item in 0..400u64 {
                pipelined.set(item, format!("eq{item}").as_bytes()).unwrap();
            }
            Mutex::new(Env {
                _fleet: fleet,
                pipelined,
                sequential,
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        /// Pipelining is a latency optimization, not a semantic change:
        /// for any request mix (dupes, absent items, empty) the
        /// pipelined client returns exactly what the sequential one
        /// does, and both match ground truth.
        #[test]
        fn pipelined_multi_get_equals_sequential(
            request in proptest::collection::vec(0u64..600, 0..40),
        ) {
            let mut guard = env().lock().unwrap();
            let env = &mut *guard;
            let piped = env.pipelined.multi_get(&request).unwrap();
            let seq = env.sequential.multi_get(&request).unwrap();
            prop_assert_eq!(&piped, &seq);
            for (item, value) in request.iter().zip(&piped) {
                if *item < 400 {
                    prop_assert_eq!(value.as_deref(), Some(format!("eq{item}").as_bytes()));
                } else {
                    prop_assert!(value.is_none());
                }
            }
        }
    }
}

#[test]
fn delete_removes_all_replicas() {
    let fleet = Fleet::start(5, 1 << 20);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(3)).unwrap();
    client.set(11, b"v").unwrap();
    assert!(client.delete(11).unwrap());
    assert!(!client.delete(11).unwrap());
    for s in 0..5 {
        assert!(fleet.store(s).get(&item_key(11)).is_none());
    }
    assert!(client.multi_get(&[11]).unwrap()[0].is_none());
}

#[test]
fn delete_counts_write_transactions() {
    // Regression: `delete` used to skip the write-side counters
    // entirely, so mixed workloads undercounted their transactions.
    let fleet = Fleet::start(5, 1 << 20);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(3)).unwrap();
    client.set(11, b"v").unwrap();
    let before = client.stats();
    client.delete(11).unwrap();
    let after = client.stats();
    assert_eq!(
        after.write_txns - before.write_txns,
        3,
        "one write txn per replica delete"
    );
    assert_eq!(after.writes - before.writes, 1, "one logical write op");
    // A delete of an absent item still pays the same transactions.
    client.delete(11).unwrap();
    let end = client.stats();
    assert_eq!(end.write_txns - after.write_txns, 3);
    assert_eq!(end.writes - after.writes, 1);
}

#[test]
fn multi_set_bursts_once_per_touched_server() {
    // The acceptance pin: a 200-item batch under 3-way WriteAll costs
    // 600 per-replica transactions sequentially, but multi_set must
    // issue exactly ONE pipelined burst per touched server.
    let fleet = Fleet::start(8, 1 << 22);
    let mut client = RnbClient::connect(&fleet.addrs(), RnbClientConfig::new(3)).unwrap();
    let entries: Vec<(u64, Vec<u8>)> = (0..200u64)
        .map(|i| (i, format!("mv{i}").into_bytes()))
        .collect();
    let touched: std::collections::HashSet<u32> = entries
        .iter()
        .flat_map(|&(item, _)| client.bundler().placement().replicas(item))
        .collect();
    let before = client.stats();
    client.multi_set(&entries).unwrap();
    let after = client.stats();
    assert_eq!(
        after.write_txns - before.write_txns,
        touched.len() as u64,
        "exactly one burst per touched server"
    );
    assert_eq!(after.writes - before.writes, 200);
    assert_eq!(after.failed_txns, before.failed_txns);
    // Every replica actually holds the bytes, and reads round-trip.
    let copies: usize = (0..8).map(|s| fleet.store(s).len()).sum();
    assert_eq!(copies, 200 * 3);
    let request: Vec<u64> = (0..200).collect();
    let values = client.multi_get(&request).unwrap();
    for (item, value) in request.iter().zip(&values) {
        assert_eq!(value.as_deref(), Some(format!("mv{item}").as_bytes()));
    }
}

#[test]
fn multi_set_invalidate_then_write_over_tcp() {
    let fleet = Fleet::start(6, 1 << 22);
    let config = RnbClientConfig::new(3).with_write_policy(WritePolicy::InvalidateThenWrite);
    let mut client = RnbClient::connect(&fleet.addrs(), config).unwrap();
    let entries: Vec<(u64, Vec<u8>)> = (0..150u64)
        .map(|i| (i, format!("iw{i}").into_bytes()))
        .collect();
    // Expected burst count: one per distinct server in the invalidation
    // phase plus one per distinct distinguished server in the write
    // phase (the §IV ordering means they cannot be merged).
    let mut inval_servers = std::collections::HashSet::new();
    let mut write_servers = std::collections::HashSet::new();
    for &(item, _) in &entries {
        let reps = client.bundler().placement().replicas(item);
        write_servers.insert(reps[0]);
        for &r in &reps[1..] {
            inval_servers.insert(r);
        }
    }
    let before = client.stats();
    client.multi_set(&entries).unwrap();
    let after = client.stats();
    assert_eq!(
        after.write_txns - before.write_txns,
        (inval_servers.len() + write_servers.len()) as u64
    );
    // Policy semantics batch-wide: only distinguished copies remain.
    for &(item, _) in &entries {
        let reps = client.bundler().placement().replicas(item);
        assert!(
            fleet.store(reps[0] as usize).get(&item_key(item)).is_some(),
            "item {item}: distinguished copy missing"
        );
        for &server in &reps[1..] {
            assert!(
                fleet.store(server as usize).get(&item_key(item)).is_none(),
                "item {item}: stale replica on server {server}"
            );
        }
    }
    // Duplicate items resolve in batch order: the later value wins.
    client
        .multi_set(&[(7u64, &b"first"[..]), (7, b"second")])
        .unwrap();
    let values = client.multi_get(&[7]).unwrap();
    assert_eq!(values[0].as_deref(), Some(&b"second"[..]));
}

mod bundled_write_equivalence {
    use super::*;
    use proptest::prelude::*;
    use std::sync::{Mutex, OnceLock};

    struct Env {
        fleet_piped: Fleet,
        fleet_seq: Fleet,
        pipelined: RnbClient,
        sequential: RnbClient,
    }

    // Two same-shaped fleets (placement depends only on fleet size and
    // config, so item→server maps are identical): the pipelined client
    // writes one, the sequential oracle the other, and the fleets must
    // stay byte-identical server by server.
    fn env() -> &'static Mutex<Env> {
        static ENV: OnceLock<Mutex<Env>> = OnceLock::new();
        ENV.get_or_init(|| {
            let fleet_piped = Fleet::start(6, 1 << 22);
            let fleet_seq = Fleet::start(6, 1 << 22);
            let pipelined =
                RnbClient::connect(&fleet_piped.addrs(), RnbClientConfig::new(3)).unwrap();
            let sequential = RnbClient::connect(
                &fleet_seq.addrs(),
                RnbClientConfig::new(3).with_pipeline(false),
            )
            .unwrap();
            Mutex::new(Env {
                fleet_piped,
                fleet_seq,
                pipelined,
                sequential,
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The bundled write path is a transaction-count optimization,
        /// not a semantic change: for any batch (dupes included, small
        /// item range to force them) the pipelined `multi_set` leaves
        /// every server's store byte-identical to a sequential `set`
        /// loop, each server receives exactly the same number of `set`
        /// commands, and a `multi_get` round-trips the last value
        /// written per item.
        #[test]
        fn pipelined_multi_set_equals_sequential_loop(
            batch in proptest::collection::vec((0u64..60, 0u32..1000), 1..50),
        ) {
            let mut guard = env().lock().unwrap();
            let env = &mut *guard;
            let entries: Vec<(u64, Vec<u8>)> = batch
                .iter()
                .map(|&(item, tok)| (item, format!("w{item}-{tok}").into_bytes()))
                .collect();
            let sets_before: Vec<u64> =
                (0..6).map(|s| env.fleet_piped.store(s).stats().sets).collect();
            let seq_before: Vec<u64> =
                (0..6).map(|s| env.fleet_seq.store(s).stats().sets).collect();

            env.pipelined.multi_set(&entries).unwrap();
            env.sequential.multi_set(&entries).unwrap(); // degrades to the set loop

            // Per-server op counts match: bundling regroups the same
            // per-replica writes, it never adds or drops one.
            for s in 0..6 {
                let piped = env.fleet_piped.store(s).stats().sets - sets_before[s];
                let seq = env.fleet_seq.store(s).stats().sets - seq_before[s];
                prop_assert_eq!(piped, seq, "server {} set-count diverged", s);
            }
            // Final state matches server by server, and the last write
            // per item wins on both paths.
            let mut last: std::collections::HashMap<u64, &[u8]> = std::collections::HashMap::new();
            for (item, value) in &entries {
                last.insert(*item, value);
            }
            for (&item, &value) in &last {
                let key = item_key(item);
                for &server in &env.pipelined.bundler().placement().replicas(item) {
                    let piped = env.fleet_piped.store(server as usize).get(&key);
                    let seq = env.fleet_seq.store(server as usize).get(&key);
                    prop_assert_eq!(
                        piped.as_ref().map(|v| &v.data[..]),
                        seq.as_ref().map(|v| &v.data[..]),
                        "server {} state diverged for item {}", server, item
                    );
                    prop_assert_eq!(
                        piped.as_ref().map(|v| &v.data[..]),
                        Some(value),
                        "item {} did not hold the last value", item
                    );
                }
            }
            // And the client's own read path sees the batch.
            let items: Vec<u64> = last.keys().copied().collect();
            let values = env.pipelined.multi_get(&items).unwrap();
            for (item, got) in items.iter().zip(&values) {
                prop_assert_eq!(got.as_deref(), Some(last[item]), "round-trip of item {}", item);
            }
        }
    }
}
