//! Client-side operation counters (mirror of the simulator's metrics,
//! measured against real servers).

/// Counters accumulated by an [`crate::RnbClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Multi-get requests served.
    pub requests: u64,
    /// Round-1 (planned) transactions issued.
    pub round1_txns: u64,
    /// Round-2 (distinguished fallback) transactions issued.
    pub round2_txns: u64,
    /// Round-3 (survivor sweep, failure path only) transactions issued.
    /// Counted separately from round 2 so failure-path traffic is not
    /// misattributed to the ordinary miss fallback.
    pub round3_txns: u64,
    /// Planned item fetches that missed in round 1.
    pub planned_misses: u64,
    /// Misses satisfied by a hitchhiker in the same round.
    pub rescued_by_hitchhikers: u64,
    /// Replica write-backs performed.
    pub writebacks: u64,
    /// Items the servers could not supply at all (not stored).
    pub unavailable_items: u64,
    /// Write operations issued (all policies).
    pub writes: u64,
    /// Server transactions spent on writes.
    pub write_txns: u64,
    /// CAS retries inside atomic updates.
    pub cas_retries: u64,
    /// Transactions that failed with an I/O error (server down); their
    /// items were recovered from other replicas where possible.
    pub failed_txns: u64,
    /// Connections re-established after an I/O error marked them broken
    /// (a desynced or dead stream is never reused; the next use of that
    /// server reconnects lazily).
    pub reconnects: u64,
}

impl ClientStats {
    /// Mean transactions per request (all read rounds).
    pub fn tpr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.round1_txns + self.round2_txns + self.round3_txns) as f64 / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpr_math() {
        let s = ClientStats {
            requests: 4,
            round1_txns: 10,
            round2_txns: 2,
            ..Default::default()
        };
        assert!((s.tpr() - 3.0).abs() < 1e-12);
        assert_eq!(ClientStats::default().tpr(), 0.0);
    }

    #[test]
    fn tpr_counts_survivor_round() {
        // Regression: round-3 traffic used to be folded into
        // `round2_txns`; it must both have its own counter and still
        // participate in transactions-per-request.
        let s = ClientStats {
            requests: 2,
            round1_txns: 4,
            round2_txns: 1,
            round3_txns: 3,
            ..Default::default()
        };
        assert!((s.tpr() - 4.0).abs() < 1e-12);
    }
}
