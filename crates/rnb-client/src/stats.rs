//! Client-side operation counters (mirror of the simulator's metrics,
//! measured against real servers).

/// Counters accumulated by an [`crate::RnbClient`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Multi-get requests served.
    pub requests: u64,
    /// Round-1 (planned) transactions issued.
    pub round1_txns: u64,
    /// Round-2 (distinguished fallback) transactions issued.
    pub round2_txns: u64,
    /// Round-3 (survivor sweep, failure path only) transactions issued.
    /// Counted separately from round 2 so failure-path traffic is not
    /// misattributed to the ordinary miss fallback.
    pub round3_txns: u64,
    /// Planned item fetches that missed in round 1.
    pub planned_misses: u64,
    /// Misses satisfied by a hitchhiker in the same round.
    pub rescued_by_hitchhikers: u64,
    /// Replica write-backs performed.
    pub writebacks: u64,
    /// Items the servers could not supply at all (not stored).
    pub unavailable_items: u64,
    /// Write operations issued (all policies).
    pub writes: u64,
    /// Server transactions spent on writes.
    pub write_txns: u64,
    /// CAS retries inside atomic updates.
    pub cas_retries: u64,
    /// Transactions that failed with an I/O error (server down); their
    /// items were recovered from other replicas where possible.
    pub failed_txns: u64,
    /// Connections re-established after an I/O error marked them broken
    /// (a desynced or dead stream is never reused; the next use of that
    /// server reconnects lazily).
    pub reconnects: u64,
}

impl ClientStats {
    /// Mean transactions per request (all read rounds).
    pub fn tpr(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            (self.round1_txns + self.round2_txns + self.round3_txns) as f64 / self.requests as f64
        }
    }

    /// Field-wise difference `self - earlier`, saturating at zero.
    ///
    /// [`crate::RnbClient::stats`] returns cumulative counters; scenario
    /// harnesses snapshot them between rounds and difference the
    /// snapshots to attribute traffic to one round:
    ///
    /// ```
    /// use rnb_client::ClientStats;
    /// let before = ClientStats { requests: 10, round1_txns: 20, ..Default::default() };
    /// let after = ClientStats { requests: 14, round1_txns: 30, ..Default::default() };
    /// let delta = after.since(&before);
    /// assert_eq!(delta.requests, 4);
    /// assert_eq!(delta.round1_txns, 10);
    /// ```
    pub fn since(&self, earlier: &ClientStats) -> ClientStats {
        ClientStats {
            requests: self.requests.saturating_sub(earlier.requests),
            round1_txns: self.round1_txns.saturating_sub(earlier.round1_txns),
            round2_txns: self.round2_txns.saturating_sub(earlier.round2_txns),
            round3_txns: self.round3_txns.saturating_sub(earlier.round3_txns),
            planned_misses: self.planned_misses.saturating_sub(earlier.planned_misses),
            rescued_by_hitchhikers: self
                .rescued_by_hitchhikers
                .saturating_sub(earlier.rescued_by_hitchhikers),
            writebacks: self.writebacks.saturating_sub(earlier.writebacks),
            unavailable_items: self
                .unavailable_items
                .saturating_sub(earlier.unavailable_items),
            writes: self.writes.saturating_sub(earlier.writes),
            write_txns: self.write_txns.saturating_sub(earlier.write_txns),
            cas_retries: self.cas_retries.saturating_sub(earlier.cas_retries),
            failed_txns: self.failed_txns.saturating_sub(earlier.failed_txns),
            reconnects: self.reconnects.saturating_sub(earlier.reconnects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpr_math() {
        let s = ClientStats {
            requests: 4,
            round1_txns: 10,
            round2_txns: 2,
            ..Default::default()
        };
        assert!((s.tpr() - 3.0).abs() < 1e-12);
        assert_eq!(ClientStats::default().tpr(), 0.0);
    }

    #[test]
    fn since_differences_every_field() {
        let earlier = ClientStats {
            requests: 1,
            round1_txns: 2,
            round2_txns: 3,
            round3_txns: 4,
            planned_misses: 5,
            rescued_by_hitchhikers: 6,
            writebacks: 7,
            unavailable_items: 8,
            writes: 9,
            write_txns: 10,
            cas_retries: 11,
            failed_txns: 12,
            reconnects: 13,
        };
        let later = ClientStats {
            requests: 11,
            round1_txns: 12,
            round2_txns: 13,
            round3_txns: 14,
            planned_misses: 15,
            rescued_by_hitchhikers: 16,
            writebacks: 17,
            unavailable_items: 18,
            writes: 19,
            write_txns: 20,
            cas_retries: 21,
            failed_txns: 22,
            reconnects: 23,
        };
        let delta = later.since(&earlier);
        let expect = ClientStats {
            requests: 10,
            round1_txns: 10,
            round2_txns: 10,
            round3_txns: 10,
            planned_misses: 10,
            rescued_by_hitchhikers: 10,
            writebacks: 10,
            unavailable_items: 10,
            writes: 10,
            write_txns: 10,
            cas_retries: 10,
            failed_txns: 10,
            reconnects: 10,
        };
        assert_eq!(delta, expect);
        // A stale (newer) snapshot saturates instead of wrapping.
        assert_eq!(earlier.since(&later), ClientStats::default());
    }

    #[test]
    fn tpr_counts_survivor_round() {
        // Regression: round-3 traffic used to be folded into
        // `round2_txns`; it must both have its own counter and still
        // participate in transactions-per-request.
        let s = ClientStats {
            requests: 2,
            round1_txns: 4,
            round2_txns: 1,
            round3_txns: 3,
            ..Default::default()
        };
        assert!((s.tpr() - 4.0).abs() < 1e-12);
    }
}
