//! The client proper.

use crate::keys::item_key;
use crate::stats::ClientStats;
use rnb_core::{Bundler, PlacementStrategy, PlanScratch, RnbConfig, WritePlanner, WritePolicy};
use rnb_hash::{ItemId, Placement, ServerId};
use rnb_store::StoreClient;
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;

/// Configuration of a deployed RnB client.
#[derive(Debug, Clone)]
pub struct RnbClientConfig {
    /// Placement and bundling configuration (server count must match the
    /// address list handed to [`RnbClient::connect`]).
    pub rnb: RnbConfig,
    /// Append hitchhikers to planned transactions (§III-C2).
    pub hitchhiking: bool,
    /// Write recovered misses back to the planned replica (§III-C2).
    pub writeback: bool,
    /// How `set` propagates to replicas (§III-G / §IV).
    pub write_policy: WritePolicy,
}

impl RnbClientConfig {
    /// Defaults matching the paper's evaluated configuration:
    /// 4-way logical replication is the paper's sweet spot; pass your own
    /// [`RnbConfig`] via the field for anything else.
    pub fn new(replication: usize) -> Self {
        RnbClientConfig {
            rnb: RnbConfig::new(1, replication), // server count fixed at connect()
            hitchhiking: true,
            writeback: true,
            write_policy: WritePolicy::WriteAll,
        }
    }

    /// Builder-style write-policy override.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Builder-style hitchhiking toggle.
    pub fn with_hitchhiking(mut self, on: bool) -> Self {
        self.hitchhiking = on;
        self
    }

    /// Builder-style write-back toggle.
    pub fn with_writeback(mut self, on: bool) -> Self {
        self.writeback = on;
        self
    }
}

/// A connected RnB deployment client.
pub struct RnbClient {
    conns: Vec<StoreClient>,
    bundler: Bundler<PlacementStrategy>,
    writer: WritePlanner<PlacementStrategy>,
    config: RnbClientConfig,
    stats: ClientStats,
    /// Pooled planning buffers, reused across `multi_get` calls so the
    /// per-request cover computation is allocation-free at steady state.
    scratch: PlanScratch,
}

impl RnbClient {
    /// Connect to the server fleet. The placement's server count is set
    /// to `addrs.len()`; every client of the deployment must list the
    /// servers in the same order (this list is RnB's entire shared
    /// configuration, §I-C).
    pub fn connect(addrs: &[SocketAddr], mut config: RnbClientConfig) -> io::Result<RnbClient> {
        assert!(!addrs.is_empty(), "need at least one server");
        config.rnb.servers = addrs.len();
        let conns = addrs
            .iter()
            .map(|&a| StoreClient::connect(a))
            .collect::<io::Result<_>>()?;
        let bundler = Bundler::from_config(&config.rnb);
        let writer = WritePlanner::new(
            PlacementStrategy::from_config(&config.rnb),
            config.write_policy,
        );
        Ok(RnbClient {
            conns,
            bundler,
            writer,
            config,
            stats: ClientStats::default(),
            scratch: PlanScratch::new(),
        })
    }

    /// Number of servers in the deployment.
    pub fn num_servers(&self) -> usize {
        self.conns.len()
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The planner (for tests and tooling).
    pub fn bundler(&self) -> &Bundler<PlacementStrategy> {
        &self.bundler
    }

    /// Fetch `items` with full RnB treatment. Returns one entry per input
    /// position; `None` means no server (including the distinguished
    /// copy) holds the item.
    pub fn multi_get(&mut self, items: &[ItemId]) -> io::Result<Vec<Option<Vec<u8>>>> {
        let plan = self.bundler.plan_with(&mut self.scratch, items);
        let placement = self.bundler.placement();

        // Hitchhikers per transaction.
        let txn_of_server: HashMap<ServerId, usize> = plan
            .transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.server, i))
            .collect();
        let mut extras: Vec<Vec<ItemId>> = vec![Vec::new(); plan.transactions.len()];
        if self.config.hitchhiking {
            let mut reps = Vec::new();
            for (ti, txn) in plan.transactions.iter().enumerate() {
                for &item in &txn.items {
                    placement.replicas_into(item, &mut reps);
                    for &s in &reps {
                        if let Some(&tj) = txn_of_server.get(&s) {
                            if tj != ti && !extras[tj].contains(&item) {
                                extras[tj].push(item);
                            }
                        }
                    }
                }
            }
        }

        // Round 1. An I/O error on a transaction (server down) is not
        // fatal: its planned items fall through to the fallback rounds —
        // RnB's replication doubles as availability (the paper's remark
        // that memcached-tier "data loss … is usually tolerable" becomes
        // "server loss is tolerable" once every item has k homes).
        let mut found: HashMap<ItemId, Vec<u8>> = HashMap::new();
        let mut missed: Vec<(ItemId, ServerId)> = Vec::new();
        for (ti, txn) in plan.transactions.iter().enumerate() {
            let all_items: Vec<ItemId> =
                txn.items.iter().chain(extras[ti].iter()).copied().collect();
            let keys: Vec<Vec<u8>> = all_items.iter().map(|&i| item_key(i)).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            self.stats.round1_txns += 1;
            match self.conns[txn.server as usize].get_multi(&refs) {
                Ok(values) => {
                    for (&item, value) in all_items.iter().zip(values) {
                        match value {
                            Some((data, _flags)) => {
                                found.entry(item).or_insert(data);
                            }
                            None => {
                                if txn.items.contains(&item) {
                                    missed.push((item, txn.server));
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    self.stats.failed_txns += 1;
                    for &item in &txn.items {
                        missed.push((item, txn.server));
                    }
                }
            }
        }

        // Misses not rescued by hitchhikers → bundled distinguished
        // fallback (§III-D).
        let mut second: HashMap<ServerId, Vec<ItemId>> = HashMap::new();
        for &(item, _) in &missed {
            if !found.contains_key(&item) {
                second
                    .entry(placement.distinguished(item))
                    .or_default()
                    .push(item);
            }
        }
        self.stats.planned_misses += missed.len() as u64;
        self.stats.rescued_by_hitchhikers +=
            missed.iter().filter(|(i, _)| found.contains_key(i)).count() as u64;
        let mut second: Vec<(ServerId, Vec<ItemId>)> = second.into_iter().collect();
        second.sort_unstable_by_key(|(s, _)| *s);
        let mut third: Vec<ItemId> = Vec::new();
        for (server, items) in &second {
            let keys: Vec<Vec<u8>> = items.iter().map(|&i| item_key(i)).collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            self.stats.round2_txns += 1;
            match self.conns[*server as usize].get_multi(&refs) {
                Ok(values) => {
                    for (&item, value) in items.iter().zip(values) {
                        if let Some((data, _)) = value {
                            found.insert(item, data);
                        } else {
                            self.stats.unavailable_items += 1;
                        }
                    }
                }
                Err(_) => {
                    // Even the distinguished server is down: survivor
                    // round over the remaining replicas.
                    self.stats.failed_txns += 1;
                    third.extend_from_slice(items);
                }
            }
        }

        // Round 3 (failure path only): per-item sweep over surviving
        // replicas.
        for item in third {
            let key = item_key(item);
            let mut got = None;
            for server in placement.replicas(item) {
                self.stats.round2_txns += 1;
                if let Ok(values) = self.conns[server as usize].get_multi(&[&key]) {
                    if let Some((data, _)) = values.into_iter().next().flatten() {
                        got = Some(data);
                        break;
                    }
                }
            }
            match got {
                Some(data) => {
                    found.insert(item, data);
                }
                None => self.stats.unavailable_items += 1,
            }
        }

        // Write-back recovered misses to their planned replica server
        // (ignore write errors — the server may be the dead one).
        if self.config.writeback {
            for (item, server) in missed {
                if let Some(data) = found.get(&item) {
                    if self.conns[server as usize]
                        .set(&item_key(item), data, 0)
                        .is_ok()
                    {
                        self.stats.writebacks += 1;
                    }
                }
            }
        }

        self.stats.requests += 1;
        Ok(items.iter().map(|i| found.get(i).cloned()).collect())
    }

    /// Store `item` on all of its replica servers per the write policy.
    /// The distinguished copy is written with `add`-then-`replace`
    /// fallback to plain `set` — rnb-store pins via its in-process API,
    /// so over the wire the distinguished copy is an ordinary entry.
    pub fn set(&mut self, item: ItemId, value: &[u8]) -> io::Result<()> {
        let plan = self.writer.plan_write(item);
        let key = item_key(item);
        for txn in &plan.invalidations {
            self.conns[txn.server as usize].delete(&key)?;
            self.stats.write_txns += 1;
        }
        for txn in &plan.writes {
            self.conns[txn.server as usize].set(&key, value, 0)?;
            self.stats.write_txns += 1;
        }
        self.stats.writes += 1;
        Ok(())
    }

    /// Delete `item` everywhere (all logical replicas).
    pub fn delete(&mut self, item: ItemId) -> io::Result<bool> {
        let key = item_key(item);
        let mut any = false;
        for server in self.bundler.placement().replicas(item) {
            any |= self.conns[server as usize].delete(&key)?;
        }
        Ok(any)
    }

    /// §IV atomic read-modify-write: invalidate the non-distinguished
    /// replicas, then CAS-loop `f` on the distinguished copy. Returns the
    /// final stored value; errors if the item does not exist.
    pub fn atomic_update(
        &mut self,
        item: ItemId,
        f: impl Fn(&[u8]) -> Vec<u8>,
    ) -> io::Result<Vec<u8>> {
        let key = item_key(item);
        let replicas = self.bundler.placement().replicas(item);
        for &server in &replicas[1..] {
            self.conns[server as usize].delete(&key)?;
            self.stats.write_txns += 1;
        }
        let d = replicas[0] as usize;
        loop {
            let got = self.conns[d].gets_multi(&[&key])?;
            let Some((data, flags, token)) = got.into_iter().next().flatten() else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("item {item} has no distinguished copy"),
                ));
            };
            let next = f(&data);
            self.stats.write_txns += 1;
            if self.conns[d].cas(&key, &next, flags, token)? {
                self.stats.writes += 1;
                return Ok(next);
            }
            self.stats.cas_retries += 1;
        }
    }
}

// Exercised end-to-end in `tests/client_over_tcp.rs` (needs running
// servers); unit tests cover config plumbing.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = RnbClientConfig::new(3)
            .with_write_policy(WritePolicy::InvalidateThenWrite)
            .with_hitchhiking(false)
            .with_writeback(false);
        assert_eq!(c.rnb.replication, 3);
        assert_eq!(c.write_policy, WritePolicy::InvalidateThenWrite);
        assert!(!c.hitchhiking);
        assert!(!c.writeback);
    }

    #[test]
    fn connect_rejects_empty_fleet() {
        let r = std::panic::catch_unwind(|| RnbClient::connect(&[], RnbClientConfig::new(1)));
        assert!(r.is_err());
    }

    #[test]
    fn cas_outcome_is_reexported_sanely() {
        // Compile-time guard that the store's CAS surface stays public.
        let _ = rnb_store::shard::CasOutcome::Stored;
    }
}
