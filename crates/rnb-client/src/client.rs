//! The client proper.

use crate::keys::item_key;
use crate::stats::ClientStats;
use rnb_core::{
    Bundler, PlacementStrategy, PlanScratch, RnbConfig, WriteBatchPlanner, WriteGroup,
    WritePlanner, WritePolicy,
};
use rnb_hash::{ItemId, Placement, ServerId};
use rnb_store::{StorageOp, StoreClient};
use std::collections::HashMap;
use std::io;
use std::net::SocketAddr;

/// Configuration of a deployed RnB client.
#[derive(Debug, Clone)]
pub struct RnbClientConfig {
    /// Placement and bundling configuration (server count must match the
    /// address list handed to [`RnbClient::connect`]).
    pub rnb: RnbConfig,
    /// Append hitchhikers to planned transactions (§III-C2).
    pub hitchhiking: bool,
    /// Write recovered misses back to the planned replica (§III-C2).
    pub writeback: bool,
    /// How `set` propagates to replicas (§III-G / §IV).
    pub write_policy: WritePolicy,
    /// Pipeline the bundled read rounds: issue every transaction of a
    /// round before reading any reply, so round latency is one RTT
    /// instead of the sum of per-server RTTs. Off = the sequential
    /// send-then-recv-per-server path (kept for differential testing).
    pub pipeline: bool,
}

impl RnbClientConfig {
    /// Defaults matching the paper's evaluated configuration:
    /// 4-way logical replication is the paper's sweet spot; pass your own
    /// [`RnbConfig`] via the field for anything else.
    pub fn new(replication: usize) -> Self {
        RnbClientConfig {
            rnb: RnbConfig::new(1, replication), // server count fixed at connect()
            hitchhiking: true,
            writeback: true,
            write_policy: WritePolicy::WriteAll,
            pipeline: true,
        }
    }

    /// Builder-style write-policy override.
    pub fn with_write_policy(mut self, policy: WritePolicy) -> Self {
        self.write_policy = policy;
        self
    }

    /// Builder-style hitchhiking toggle.
    pub fn with_hitchhiking(mut self, on: bool) -> Self {
        self.hitchhiking = on;
        self
    }

    /// Builder-style write-back toggle.
    pub fn with_writeback(mut self, on: bool) -> Self {
        self.writeback = on;
        self
    }

    /// Builder-style pipelining toggle.
    pub fn with_pipeline(mut self, on: bool) -> Self {
        self.pipeline = on;
        self
    }
}

/// One server endpoint with lazy reconnection. After an I/O error the
/// stream may be desynced (a reply of the failed request can still be
/// in flight) or dead — either way it must never be reused, so error
/// paths mark it broken and the next use dials a fresh connection.
struct ServerConn {
    addr: SocketAddr,
    conn: Option<StoreClient>,
}

impl ServerConn {
    fn connect(addr: SocketAddr) -> io::Result<ServerConn> {
        Ok(ServerConn {
            addr,
            conn: Some(StoreClient::connect(addr)?),
        })
    }

    /// The connection for the next operation, reconnecting lazily if a
    /// previous error marked it broken. The bool reports whether a
    /// reconnect happened (for [`ClientStats::reconnects`]).
    fn ready(&mut self) -> io::Result<(&mut StoreClient, bool)> {
        let reconnected = self.conn.is_none();
        if self.conn.is_none() {
            self.conn = Some(StoreClient::connect(self.addr)?);
        }
        match self.conn.as_mut() {
            Some(conn) => Ok((conn, reconnected)),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection unavailable",
            )),
        }
    }

    /// The live connection, if any — used by pipelined receive phases,
    /// which must read from the exact connection that sent (a reconnect
    /// there would wait for a reply that was never requested).
    fn active(&mut self) -> Option<&mut StoreClient> {
        self.conn.as_mut()
    }

    /// Never reuse this connection again; the next use reconnects.
    fn mark_broken(&mut self) {
        self.conn = None;
    }
}

/// Borrow-splitting helper: fetch (lazily reconnecting) the connection
/// for `server` while `stats` counts the reconnect. A free function so
/// `multi_get` can call it while holding borrows of the planner fields.
fn conn_for<'a>(
    conns: &'a mut [ServerConn],
    stats: &mut ClientStats,
    server: usize,
) -> io::Result<&'a mut StoreClient> {
    let (conn, reconnected) = conns[server].ready()?;
    if reconnected {
        stats.reconnects += 1;
    }
    Ok(conn)
}

/// Execute one phase of a bundled write batch: send every group's burst
/// before reading any reply (PR 8's read-pipelining shape replayed on
/// the write side, so a phase costs one RTT, not the sum of per-server
/// RTTs). A failed send or receive marks that connection broken, counts
/// a failed transaction, and records the first error; surviving bursts
/// still complete — desync on one server must not corrupt the others.
fn run_write_bursts(
    conns: &mut [ServerConn],
    stats: &mut ClientStats,
    groups: &[WriteGroup],
    ops: &[Vec<StorageOp<'_>>],
    first_err: &mut Option<io::Error>,
) {
    let mut sent = vec![false; groups.len()];
    for (gi, group) in groups.iter().enumerate() {
        let s = group.server as usize;
        stats.write_txns += 1;
        match conn_for(conns, stats, s).and_then(|c| c.send_storage_batch(&ops[gi])) {
            Ok(()) => sent[gi] = true,
            Err(e) => {
                conns[s].mark_broken();
                stats.failed_txns += 1;
                first_err.get_or_insert(e);
            }
        }
    }
    let mut acks = Vec::new();
    for (gi, group) in groups.iter().enumerate() {
        if !sent[gi] {
            continue; // already recorded as failed at send time
        }
        let s = group.server as usize;
        let outcome = match conns[s].active() {
            Some(c) => c.recv_storage_batch(&ops[gi], &mut acks),
            // A later send on the same server broke the conn; the
            // pending replies are lost.
            None => Err(io::Error::new(io::ErrorKind::NotConnected, "conn broken")),
        };
        if let Err(e) = outcome {
            conns[s].mark_broken();
            stats.failed_txns += 1;
            first_err.get_or_insert(e);
        }
    }
}

/// One read-round transaction materialized for the wire: target server,
/// planned-item prefix length, items (planned first, hitchhikers
/// after), and their encoded keys.
type WireTxn = (ServerId, usize, Vec<ItemId>, Vec<Vec<u8>>);

/// A connected RnB deployment client.
pub struct RnbClient {
    conns: Vec<ServerConn>,
    bundler: Bundler<PlacementStrategy>,
    writer: WritePlanner<PlacementStrategy>,
    config: RnbClientConfig,
    stats: ClientStats,
    /// Pooled planning buffers, reused across `multi_get` calls so the
    /// per-request cover computation is allocation-free at steady state.
    scratch: PlanScratch,
    /// Pooled write-batch planner, reused across `multi_set` calls
    /// (same steady-state discipline as `scratch`, on the write side).
    batcher: WriteBatchPlanner,
}

impl RnbClient {
    /// Connect to the server fleet. The placement's server count is set
    /// to `addrs.len()`; every client of the deployment must list the
    /// servers in the same order (this list is RnB's entire shared
    /// configuration, §I-C).
    pub fn connect(addrs: &[SocketAddr], mut config: RnbClientConfig) -> io::Result<RnbClient> {
        assert!(!addrs.is_empty(), "need at least one server");
        config.rnb.servers = addrs.len();
        let conns = addrs
            .iter()
            .map(|&a| ServerConn::connect(a))
            .collect::<io::Result<_>>()?;
        let bundler = Bundler::from_config(&config.rnb);
        let writer = WritePlanner::new(
            PlacementStrategy::from_config(&config.rnb),
            config.write_policy,
        );
        Ok(RnbClient {
            conns,
            bundler,
            writer,
            config,
            stats: ClientStats::default(),
            scratch: PlanScratch::new(),
            batcher: WriteBatchPlanner::new(),
        })
    }

    /// Number of servers in the deployment.
    pub fn num_servers(&self) -> usize {
        self.conns.len()
    }

    /// Repoint server slot `server` at a new address.
    ///
    /// Placement is keyed by server *index*, not address, so a node that
    /// was restarted on a different port keeps its logical identity: the
    /// deployment updates every client's address list and the slot
    /// reconnects lazily on next use (counted in
    /// [`ClientStats::reconnects`] like any other reconnect). The old
    /// connection, if any, is dropped as broken. Out-of-range indices are
    /// ignored: membership changes (resizing the fleet) require a new
    /// client because they change the placement itself.
    pub fn set_server_addr(&mut self, server: usize, addr: SocketAddr) {
        if let Some(slot) = self.conns.get_mut(server) {
            slot.addr = addr;
            slot.mark_broken();
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The planner (for tests and tooling).
    pub fn bundler(&self) -> &Bundler<PlacementStrategy> {
        &self.bundler
    }

    /// Fetch `items` with full RnB treatment. Returns one entry per input
    /// position; `None` means no server (including the distinguished
    /// copy) holds the item.
    pub fn multi_get(&mut self, items: &[ItemId]) -> io::Result<Vec<Option<Vec<u8>>>> {
        let plan = self.bundler.plan_with(&mut self.scratch, items);
        let placement = self.bundler.placement();

        // Hitchhikers per transaction.
        let txn_of_server: HashMap<ServerId, usize> = plan
            .transactions
            .iter()
            .enumerate()
            .map(|(i, t)| (t.server, i))
            .collect();
        let mut extras: Vec<Vec<ItemId>> = vec![Vec::new(); plan.transactions.len()];
        if self.config.hitchhiking {
            let mut reps = Vec::new();
            for (ti, txn) in plan.transactions.iter().enumerate() {
                for &item in &txn.items {
                    placement.replicas_into(item, &mut reps);
                    for &s in &reps {
                        if let Some(&tj) = txn_of_server.get(&s) {
                            if tj != ti && !extras[tj].contains(&item) {
                                extras[tj].push(item);
                            }
                        }
                    }
                }
            }
        }

        // Round 1. An I/O error on a transaction (server down) is not
        // fatal: its planned items fall through to the fallback rounds —
        // RnB's replication doubles as availability (the paper's remark
        // that memcached-tier "data loss … is usually tolerable" becomes
        // "server loss is tolerable" once every item has k homes). The
        // failing connection is marked broken: the stream may be
        // desynced, so later rounds must not reuse it.
        let mut found: HashMap<ItemId, Vec<u8>> = HashMap::new();
        let mut missed: Vec<(ItemId, ServerId)> = Vec::new();
        // Planned items first, hitchhikers after, so `planned` is a
        // prefix length.
        let round1: Vec<WireTxn> = plan
            .transactions
            .iter()
            .enumerate()
            .map(|(ti, txn)| {
                let all_items: Vec<ItemId> =
                    txn.items.iter().chain(extras[ti].iter()).copied().collect();
                let keys: Vec<Vec<u8>> = all_items.iter().map(|&i| item_key(i)).collect();
                (txn.server, txn.items.len(), all_items, keys)
            })
            .collect();
        let mut sent = vec![false; round1.len()];
        if self.config.pipeline {
            // Send every round-1 transaction before reading any reply:
            // round latency is one RTT, not the sum of per-server RTTs.
            for (ti, (server, planned, all_items, keys)) in round1.iter().enumerate() {
                let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
                self.stats.round1_txns += 1;
                let s = *server as usize;
                match conn_for(&mut self.conns, &mut self.stats, s)
                    .and_then(|c| c.send_get_multi(&refs))
                {
                    Ok(()) => sent[ti] = true,
                    Err(_) => {
                        self.conns[s].mark_broken();
                        self.stats.failed_txns += 1;
                        missed.extend(all_items[..*planned].iter().map(|&i| (i, *server)));
                    }
                }
            }
        }
        for (ti, (server, planned, all_items, keys)) in round1.iter().enumerate() {
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            let s = *server as usize;
            let values = if self.config.pipeline {
                if !sent[ti] {
                    continue; // already recorded as failed at send time
                }
                match self.conns[s].active() {
                    Some(c) => c.recv_get_multi(&refs),
                    // A later send on the same server broke the conn;
                    // treat this pending reply as lost.
                    None => Err(io::Error::new(io::ErrorKind::NotConnected, "conn broken")),
                }
            } else {
                self.stats.round1_txns += 1;
                conn_for(&mut self.conns, &mut self.stats, s).and_then(|c| c.get_multi(&refs))
            };
            match values {
                Ok(values) => {
                    for (idx, (&item, value)) in all_items.iter().zip(values).enumerate() {
                        match value {
                            Some((data, _flags)) => {
                                found.entry(item).or_insert(data);
                            }
                            None => {
                                if idx < *planned {
                                    missed.push((item, *server));
                                }
                            }
                        }
                    }
                }
                Err(_) => {
                    self.conns[s].mark_broken();
                    self.stats.failed_txns += 1;
                    missed.extend(all_items[..*planned].iter().map(|&i| (i, *server)));
                }
            }
        }

        // Misses not rescued by hitchhikers → bundled distinguished
        // fallback (§III-D), also pipelined (the distinguished servers
        // are distinct by construction).
        let mut second: HashMap<ServerId, Vec<ItemId>> = HashMap::new();
        for &(item, _) in &missed {
            if !found.contains_key(&item) {
                second
                    .entry(placement.distinguished(item))
                    .or_default()
                    .push(item);
            }
        }
        self.stats.planned_misses += missed.len() as u64;
        self.stats.rescued_by_hitchhikers +=
            missed.iter().filter(|(i, _)| found.contains_key(i)).count() as u64;
        let mut second: Vec<(ServerId, Vec<ItemId>)> = second.into_iter().collect();
        second.sort_unstable_by_key(|(s, _)| *s);
        let second_keys: Vec<Vec<Vec<u8>>> = second
            .iter()
            .map(|(_, items)| items.iter().map(|&i| item_key(i)).collect())
            .collect();
        let mut third: Vec<ItemId> = Vec::new();
        let mut second_sent = vec![false; second.len()];
        if self.config.pipeline {
            for (si, (server, items)) in second.iter().enumerate() {
                let refs: Vec<&[u8]> = second_keys[si].iter().map(|k| k.as_slice()).collect();
                self.stats.round2_txns += 1;
                let s = *server as usize;
                match conn_for(&mut self.conns, &mut self.stats, s)
                    .and_then(|c| c.send_get_multi(&refs))
                {
                    Ok(()) => second_sent[si] = true,
                    Err(_) => {
                        self.conns[s].mark_broken();
                        self.stats.failed_txns += 1;
                        third.extend_from_slice(items);
                    }
                }
            }
        }
        for (si, (server, items)) in second.iter().enumerate() {
            let refs: Vec<&[u8]> = second_keys[si].iter().map(|k| k.as_slice()).collect();
            let s = *server as usize;
            let values = if self.config.pipeline {
                if !second_sent[si] {
                    continue;
                }
                match self.conns[s].active() {
                    Some(c) => c.recv_get_multi(&refs),
                    None => Err(io::Error::new(io::ErrorKind::NotConnected, "conn broken")),
                }
            } else {
                self.stats.round2_txns += 1;
                conn_for(&mut self.conns, &mut self.stats, s).and_then(|c| c.get_multi(&refs))
            };
            match values {
                Ok(values) => {
                    for (&item, value) in items.iter().zip(values) {
                        if let Some((data, _)) = value {
                            found.insert(item, data);
                        } else {
                            self.stats.unavailable_items += 1;
                        }
                    }
                }
                Err(_) => {
                    // Even the distinguished server is down: survivor
                    // round over the remaining replicas.
                    self.conns[s].mark_broken();
                    self.stats.failed_txns += 1;
                    third.extend_from_slice(items);
                }
            }
        }

        // Round 3 (failure path only): per-item sweep over surviving
        // replicas. Lazy reconnection matters here — a restarted server
        // is dialed fresh instead of erroring forever on a dead stream.
        for item in third {
            let key = item_key(item);
            let mut got = None;
            for server in placement.replicas(item) {
                self.stats.round3_txns += 1;
                let s = server as usize;
                match conn_for(&mut self.conns, &mut self.stats, s)
                    .and_then(|c| c.get_multi(&[&key]))
                {
                    Ok(values) => {
                        if let Some((data, _)) = values.into_iter().next().flatten() {
                            got = Some(data);
                            break;
                        }
                    }
                    Err(_) => self.conns[s].mark_broken(),
                }
            }
            match got {
                Some(data) => {
                    found.insert(item, data);
                }
                None => self.stats.unavailable_items += 1,
            }
        }

        // Write-back recovered misses to their planned replica server.
        // A write error is tolerated (the server may be the dead one)
        // but still marks the connection broken — reusing it would
        // desync the next round's replies.
        if self.config.writeback {
            for (item, server) in missed {
                let s = server as usize;
                if let Some(data) = found.get(&item) {
                    match conn_for(&mut self.conns, &mut self.stats, s)
                        .and_then(|c| c.set(&item_key(item), data, 0))
                    {
                        Ok(()) => self.stats.writebacks += 1,
                        Err(_) => self.conns[s].mark_broken(),
                    }
                }
            }
        }

        self.stats.requests += 1;
        Ok(items.iter().map(|i| found.get(i).cloned()).collect())
    }

    /// Run `op` on the connection for `server` (reconnecting lazily
    /// first), marking the connection broken if the operation fails so
    /// the next use reconnects instead of reusing a desynced stream.
    fn with_conn<T>(
        &mut self,
        server: usize,
        op: impl FnOnce(&mut StoreClient) -> io::Result<T>,
    ) -> io::Result<T> {
        let out = conn_for(&mut self.conns, &mut self.stats, server).and_then(op);
        if out.is_err() {
            self.conns[server].mark_broken();
        }
        out
    }

    /// Store `item` on all of its replica servers per the write policy.
    /// The distinguished copy is written with `add`-then-`replace`
    /// fallback to plain `set` — rnb-store pins via its in-process API,
    /// so over the wire the distinguished copy is an ordinary entry.
    pub fn set(&mut self, item: ItemId, value: &[u8]) -> io::Result<()> {
        let plan = self.writer.plan_write(item);
        let key = item_key(item);
        for txn in &plan.invalidations {
            self.with_conn(txn.server as usize, |c| c.delete(&key))?;
            self.stats.write_txns += 1;
        }
        for txn in &plan.writes {
            self.with_conn(txn.server as usize, |c| c.set(&key, value, 0))?;
            self.stats.write_txns += 1;
        }
        self.stats.writes += 1;
        Ok(())
    }

    /// Store a whole batch of `(item, value)` pairs with bundled,
    /// pipelined write transactions.
    ///
    /// The pooled [`WriteBatchPlanner`] groups every per-replica
    /// transaction of the batch by server, then each touched server
    /// receives its whole op list as ONE pipelined burst
    /// ([`StoreClient::send_storage_batch`] /
    /// [`StoreClient::recv_storage_batch`]): per batch, a server costs
    /// one round-trip per phase instead of one per item-replica. Under
    /// [`WritePolicy::InvalidateThenWrite`] the invalidation bursts are
    /// fully received before any write burst is sent, so the §IV
    /// ordering invariant holds batch-wide: no stale replica outlives
    /// its item's distinguished write.
    ///
    /// Duplicate items keep batch order (later value wins), and with
    /// pipelining disabled this degrades to the sequential
    /// [`RnbClient::set`] loop — the differential oracle for the TCP
    /// equivalence proptest. I/O errors follow `multi_get`'s failure
    /// semantics (broken connections are marked and redialed lazily,
    /// failed bursts counted in [`ClientStats::failed_txns`]); the first
    /// error is returned after every burst has completed, so a partial
    /// failure never desyncs the surviving connections.
    pub fn multi_set<V: AsRef<[u8]>>(&mut self, entries: &[(ItemId, V)]) -> io::Result<()> {
        if !self.config.pipeline {
            for (item, value) in entries {
                self.set(*item, value.as_ref())?;
            }
            return Ok(());
        }
        let RnbClient {
            conns,
            writer,
            stats,
            batcher,
            ..
        } = self;
        let plan = batcher.plan_batch(writer, entries.iter().map(|&(item, _)| item));
        let mut first_err = None;

        // Phase 1: invalidation bursts (InvalidateThenWrite only; empty
        // under WriteAll). Fully flushed — sent AND acknowledged —
        // before phase 2 starts.
        let inval_keys: Vec<Vec<Vec<u8>>> = plan
            .invalidations
            .iter()
            .map(|g| g.ops.iter().map(|&(item, _)| item_key(item)).collect())
            .collect();
        let inval_ops: Vec<Vec<StorageOp<'_>>> = inval_keys
            .iter()
            .map(|keys| keys.iter().map(|key| StorageOp::Delete { key }).collect())
            .collect();
        run_write_bursts(conns, stats, plan.invalidations, &inval_ops, &mut first_err);

        // Phase 2: the distinguished writes (every replica's write under
        // WriteAll), one burst per touched server.
        let write_keys: Vec<Vec<Vec<u8>>> = plan
            .writes
            .iter()
            .map(|g| g.ops.iter().map(|&(item, _)| item_key(item)).collect())
            .collect();
        let write_ops: Vec<Vec<StorageOp<'_>>> = plan
            .writes
            .iter()
            .zip(&write_keys)
            .map(|(g, keys)| {
                g.ops
                    .iter()
                    .zip(keys)
                    .map(|(&(_, index), key)| StorageOp::Set {
                        key,
                        value: entries[index].1.as_ref(),
                        flags: 0,
                    })
                    .collect()
            })
            .collect();
        run_write_bursts(conns, stats, plan.writes, &write_ops, &mut first_err);

        self.stats.writes += entries.len() as u64;
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Delete `item` everywhere (all logical replicas).
    pub fn delete(&mut self, item: ItemId) -> io::Result<bool> {
        let key = item_key(item);
        let mut any = false;
        for server in self.bundler.placement().replicas(item) {
            any |= self.with_conn(server as usize, |c| c.delete(&key))?;
            // Each replica delete is a write-side transaction, counted
            // exactly like `set`'s invalidations (mixed-workload
            // accounting used to undercount here).
            self.stats.write_txns += 1;
        }
        self.stats.writes += 1;
        Ok(any)
    }

    /// §IV atomic read-modify-write: invalidate the non-distinguished
    /// replicas, then CAS-loop `f` on the distinguished copy. Returns the
    /// final stored value; errors if the item does not exist.
    pub fn atomic_update(
        &mut self,
        item: ItemId,
        f: impl Fn(&[u8]) -> Vec<u8>,
    ) -> io::Result<Vec<u8>> {
        let key = item_key(item);
        let replicas = self.bundler.placement().replicas(item);
        for &server in &replicas[1..] {
            self.with_conn(server as usize, |c| c.delete(&key))?;
            self.stats.write_txns += 1;
        }
        let d = replicas[0] as usize;
        loop {
            let got = self.with_conn(d, |c| c.gets_multi(&[&key]))?;
            let Some((data, flags, token)) = got.into_iter().next().flatten() else {
                return Err(io::Error::new(
                    io::ErrorKind::NotFound,
                    format!("item {item} has no distinguished copy"),
                ));
            };
            let next = f(&data);
            self.stats.write_txns += 1;
            if self.with_conn(d, |c| c.cas(&key, &next, flags, token))? {
                self.stats.writes += 1;
                return Ok(next);
            }
            self.stats.cas_retries += 1;
        }
    }
}

// Exercised end-to-end in `tests/client_over_tcp.rs` (needs running
// servers); unit tests cover config plumbing.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders() {
        let c = RnbClientConfig::new(3)
            .with_write_policy(WritePolicy::InvalidateThenWrite)
            .with_hitchhiking(false)
            .with_writeback(false);
        assert_eq!(c.rnb.replication, 3);
        assert_eq!(c.write_policy, WritePolicy::InvalidateThenWrite);
        assert!(!c.hitchhiking);
        assert!(!c.writeback);
    }

    #[test]
    fn connect_rejects_empty_fleet() {
        let r = std::panic::catch_unwind(|| RnbClient::connect(&[], RnbClientConfig::new(1)));
        assert!(r.is_err());
    }

    #[test]
    fn cas_outcome_is_reexported_sanely() {
        // Compile-time guard that the store's CAS surface stays public.
        let _ = rnb_store::shard::CasOutcome::Stored;
    }
}
