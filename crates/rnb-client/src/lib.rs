//! The deployable RnB client — the paper's §IV proof-of-concept, end to
//! end over real sockets.

// Serving-path crate: a panic in the client aborts the caller's request
// mid-flight, so unwrap/expect are denied outside tests (see the matching
// attribute in rnb-store and xtask lint rule R1).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//!
//! [`RnbClient`] connects to a fleet of `rnb-store` servers (or any
//! memcached-text-protocol servers) and implements the full RnB read and
//! write paths on top of `rnb-core`'s planner:
//!
//! * **Bundled multi-gets** (§III-A): one transaction per server chosen
//!   by the greedy cover.
//! * **Hitchhiking** (§III-C2): requested items with a replica on an
//!   already-planned server are appended to that transaction.
//! * **Miss fallback** (§III-D): items missing from round 1 are fetched
//!   from their distinguished copies in a bundled second round.
//! * **Write-back** (§III-C2): round-1 misses that round 2 recovered are
//!   re-installed on the planned replica server.
//! * **Writes** (§III-G / §IV): update-all-replicas, or the atomic
//!   invalidate-then-write scheme; [`RnbClient::atomic_update`] runs a
//!   CAS loop on the distinguished copy.
//!
//! ```no_run
//! use rnb_client::{RnbClient, RnbClientConfig};
//!
//! let addrs: Vec<std::net::SocketAddr> =
//!     vec!["127.0.0.1:11311".parse().unwrap(), "127.0.0.1:11312".parse().unwrap()];
//! let mut client = RnbClient::connect(&addrs, RnbClientConfig::new(2)).unwrap();
//! client.set(7, b"hello").unwrap();
//! let values = client.multi_get(&[7, 8, 9]).unwrap();
//! assert_eq!(values[0].as_deref(), Some(&b"hello"[..]));
//! ```

mod client;
mod keys;
mod stats;

pub use client::{RnbClient, RnbClientConfig};
pub use keys::{item_key, parse_item_key};
pub use stats::ClientStats;
