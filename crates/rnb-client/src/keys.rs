//! Item-id ↔ wire-key mapping.

use rnb_hash::ItemId;

/// The wire key of an item id (`item:<decimal>`).
pub fn item_key(item: ItemId) -> Vec<u8> {
    format!("item:{item}").into_bytes()
}

/// Parse a wire key back to an item id (for tooling and tests).
pub fn parse_item_key(key: &[u8]) -> Option<ItemId> {
    let text = std::str::from_utf8(key).ok()?;
    text.strip_prefix("item:")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for item in [0u64, 1, 42, u64::MAX] {
            assert_eq!(parse_item_key(&item_key(item)), Some(item));
        }
    }

    #[test]
    fn rejects_foreign_keys() {
        assert_eq!(parse_item_key(b"other:1"), None);
        assert_eq!(parse_item_key(b"item:abc"), None);
        assert_eq!(parse_item_key(&[0xff]), None);
    }
}
