//! Acceptance tests for the scenario grid: every quick-mode cell runs
//! against >= 3 real `rnb-stored` processes, meets its declared bounds,
//! and emits a syntactically valid `rnb-scenario-v1` JSON artifact.
//!
//! Synchronization is readiness-based end to end (process handshakes
//! and counter snapshots) — there is no `thread::sleep` anywhere in the
//! harness or these tests, which xtask rule R5 enforces statically.

use rnb_cluster::{default_artifact_dir, run_scenario, scenario_grid, write_artifact, Event};

/// Minimal JSON syntax checker (the workspace vendors no serde): it
/// validates the value grammar — objects, arrays, strings with
/// escapes, numbers, true/false/null — and that the top level is one
/// object with nothing trailing.
fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("top level is not an object".into());
    }
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while matches!(b.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at {pos}")),
                }
            }
        }
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *pos += 1;
            while matches!(
                b.get(*pos),
                Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                *pos += 1;
            }
            Ok(())
        }
        other => Err(format!("unexpected {other:?} at {pos}")),
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at {pos}"));
    }
    *pos += 1;
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(());
            }
            Some(b'\\') => *pos += 2,
            _ => *pos += 1,
        }
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at {pos}"))
    }
}

#[test]
fn grid_declares_the_three_headline_events() {
    let grid = scenario_grid(true);
    let names: Vec<&str> = grid.iter().map(|s| s.name).collect();
    for required in ["kill_restart", "elastic_scale", "hot_key_storm"] {
        assert!(names.contains(&required), "grid is missing {required}");
    }
    for s in &grid {
        assert!(
            s.topology.nodes >= 3,
            "{}: scenarios must run against >= 3 real processes",
            s.name
        );
        assert!(s.topology.replication >= 2, "{}: need replication", s.name);
    }
}

/// Run one named cell, assert its bounds held, and validate the emitted
/// artifact.
fn run_cell(name: &str) -> rnb_cluster::ScenarioReport {
    let grid = scenario_grid(true);
    let s = grid
        .iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("no scenario named {name}"));
    let report = run_scenario(s).expect("scenario runs");
    assert!(
        report.passed(),
        "{name} violated its bounds: {:?}",
        report.violations
    );
    let path = write_artifact(&report, &default_artifact_dir()).expect("artifact written");
    let text = std::fs::read_to_string(&path).expect("artifact readable");
    validate_json(&text).unwrap_or_else(|e| panic!("{name} artifact is not valid JSON: {e}"));
    for key in [
        "\"schema\": \"rnb-scenario-v1\"",
        "\"metrics\"",
        "\"recovery_rounds\"",
        "\"recovery_ms\"",
        "\"transition_miss_rate\"",
        "\"steady_miss_rate\"",
        "\"reconnects\"",
        "\"bounds\"",
        "\"rounds\"",
        "\"write_fraction\"",
        "\"passed\": true",
    ] {
        assert!(text.contains(key), "{name} artifact is missing {key}");
    }
    report
}

#[test]
fn kill_restart_recovers_within_bounds() {
    let report = run_cell("kill_restart");
    let m = &report.metrics;
    // The kill is real: transactions failed, the survivor sweep fired,
    // and the client re-dialed the restarted node.
    assert!(
        m.failed_txns > 0,
        "no transaction ever failed — was the node killed?"
    );
    assert!(m.round3_txns > 0, "survivor sweep never fired");
    assert!(m.reconnects >= 1, "client never reconnected");
    // And the availability claim: no item was ever lost (k=2 survives a
    // single crash), bounded by the scenario at ~0 transition miss rate.
    assert!(m.recovery_rounds.is_some(), "never recovered");
    assert!(
        report
            .rounds
            .iter()
            .any(|r| r.phase == "transition" && r.failed_txns > 0),
        "no degraded round observed during the transition window"
    );
}

#[test]
fn elastic_scale_rebalances_and_recovers() {
    let report = run_cell("elastic_scale");
    assert!(matches!(report.scenario.event, Event::Elastic { .. }));
    // The un-repaired post-grow round honestly measures remapping: some
    // planned misses must occur (items moved to the empty new node).
    assert!(
        report
            .rounds
            .iter()
            .any(|r| r.phase == "transition" && r.planned_misses > 0),
        "scale-out produced no planned misses — placement never changed?"
    );
    assert!(report.metrics.recovery_rounds.is_some(), "never recovered");
    assert_eq!(report.metrics.steady_miss_rate, 0.0, "post-recovery misses");
}

#[test]
fn hot_key_storm_stays_available() {
    let report = run_cell("hot_key_storm");
    // A skew storm on a healthy fleet must not lose items or melt TPR.
    assert_eq!(report.metrics.transition_miss_rate, 0.0);
    assert!(
        report.metrics.failed_txns == 0,
        "storms must not fail transactions"
    );
}

#[test]
fn mixed_write_survives_kill() {
    let report = run_cell("mixed_write");
    let m = &report.metrics;
    // The cell actually drove bundled writes: every round carries
    // multi_set bursts, and each burst costs at most one write txn per
    // touched server (write_txns stays well under one-per-item).
    assert!(
        report.rounds.iter().all(|r| r.writes > 0),
        "a 0.3 write fraction must write in every round"
    );
    // Only baseline rounds are pure bursts: the restart round's delta
    // also contains the sequential per-item repair repopulation.
    for r in report.rounds.iter().filter(|r| r.phase == "baseline") {
        assert!(
            r.write_txns <= r.writes,
            "round {}: {} write txns for {} written items — bursts were not bundled",
            r.round,
            r.write_txns,
            r.writes
        );
    }
    // The kill degraded writes (dead server) without losing reads: the
    // transition window shows failed transactions but ~zero miss rate,
    // and the client recovered after restart + repair.
    assert!(
        report
            .rounds
            .iter()
            .any(|r| r.phase == "transition" && r.failed_txns > 0),
        "no failed write observed while a node was down"
    );
    assert!(m.recovery_rounds.is_some(), "never recovered");
    assert!(m.reconnects >= 1, "client never reconnected");
}

#[test]
fn flash_crowd_absorbs_rate_spike() {
    let report = run_cell("flash_crowd");
    // Crowd rounds really drove multiplied request counts.
    let baseline = report.rounds[0].requests;
    let peak = report.rounds.iter().map(|r| r.requests).max().unwrap_or(0);
    assert!(
        peak >= 3 * baseline,
        "crowd rounds did not multiply the request rate ({peak} vs {baseline})"
    );
    assert_eq!(report.metrics.transition_miss_rate, 0.0);
}
