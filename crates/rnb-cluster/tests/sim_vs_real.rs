//! Differential test: the same (topology, workload, seed) cell run
//! through `rnb-sim` and through a real process fleet must agree on
//! transactions-per-request.
//!
//! Both sides share the planner (`rnb_core::Bundler`) and the placement
//! config, and both run with ample memory and a fully resident universe,
//! so neither should see planned misses — TPR reduces to the mean greedy
//! cover size on an identical request sequence and the two numbers
//! should match to within rounding. The declared tolerance (2% relative)
//! leaves room for benign divergence (e.g. a future sim-side policy
//! default) while still catching real sim/real drift permanently.

use rnb_client::{RnbClient, RnbClientConfig};
use rnb_cluster::{Cluster, NodeConfig};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::{RequestStream, UniformRequests};

const SERVERS: usize = 4;
const REPLICATION: usize = 2;
const UNIVERSE: u64 = 512;
const REQUEST_SIZE: usize = 8;
const SEED: u64 = 0xD1FF;
const REQUESTS: usize = 256;
/// Declared sim-vs-real TPR tolerance (relative).
const TOLERANCE: f64 = 0.02;

#[test]
fn sim_and_real_cluster_agree_on_tpr() {
    // Simulator side.
    let sim = SimConfig::basic(SERVERS, REPLICATION);
    let rnb = sim.client_config();
    let mut stream = UniformRequests::new(UNIVERSE, REQUEST_SIZE, SEED);
    let metrics = run_experiment(
        &ExperimentConfig::new(sim, 0, REQUESTS),
        UNIVERSE as usize,
        &mut stream,
    );
    let sim_tpr = metrics.tpr();
    assert_eq!(metrics.planned_misses, 0, "unlimited sim memory");

    // Real side: same placement config (server count, hash, seed), same
    // request stream reconstructed from the same seed.
    let mut cluster = Cluster::launch(SERVERS, NodeConfig::default()).expect("fleet up");
    let mut config = RnbClientConfig::new(REPLICATION);
    config.rnb = rnb;
    let mut client = RnbClient::connect(&cluster.addrs(), config).expect("client connects");
    for item in 0..UNIVERSE {
        client.set(item, b"payload").expect("populate");
    }
    let before = client.stats();
    let mut stream = UniformRequests::new(UNIVERSE, REQUEST_SIZE, SEED);
    for _ in 0..REQUESTS {
        client.multi_get(&stream.next_request()).expect("multi_get");
    }
    let d = client.stats().since(&before);
    // Close our connections before the graceful shutdown: a drain waits
    // (bounded) for clients to hang up.
    drop(client);
    cluster.shutdown_all().expect("graceful shutdown");

    assert_eq!(d.requests, REQUESTS as u64);
    assert_eq!(d.unavailable_items, 0, "fully populated fleet");
    assert_eq!(d.failed_txns, 0, "healthy fleet");
    let real_tpr = d.tpr();
    assert!(
        (real_tpr - sim_tpr).abs() <= TOLERANCE * sim_tpr,
        "sim/real TPR drift: sim {sim_tpr:.4} vs real {real_tpr:.4} \
         (tolerance {TOLERANCE})"
    );
}
