//! End-to-end pin of distinguished-copy failover over real TCP
//! (paper §IV): kill the primary replica holder mid-workload and assert
//! the client completes the multi-get from the distinguished copies and
//! the survivor sweep, with `ClientStats` counters moving exactly as
//! documented in `rnb-client`.
//!
//! The request is *constructed* so the greedy cover must plan every
//! item on the victim node: all items carry the victim in their replica
//! set (so the victim covers all of them), while the other replicas are
//! split across both remaining servers (so no other server ties the
//! victim's cover). Killing the victim then forces, deterministically:
//!
//! * round 1: the single planned transaction fails (`failed_txns`);
//! * round 2: misses regroup by distinguished copy — items whose
//!   distinguished copy is alive are served there, the group whose
//!   distinguished copy IS the victim fails again (`failed_txns`);
//! * round 3: the survivor sweep walks each remaining item's replica
//!   list and recovers it from the surviving copy (`round3_txns`).

use rnb_client::{RnbClient, RnbClientConfig};
use rnb_cluster::{Cluster, NodeConfig};
use rnb_hash::Placement;

const VICTIM: u32 = 1;
const UNIVERSE: u64 = 512;

fn value_for(item: u64) -> Vec<u8> {
    format!("data-{item:04}").into_bytes()
}

#[test]
fn kill_primary_replica_holder_mid_round() {
    let mut cluster = Cluster::launch(3, NodeConfig::default()).expect("fleet up");
    let mut client =
        RnbClient::connect(&cluster.addrs(), RnbClientConfig::new(2)).expect("client connects");
    for item in 0..UNIVERSE {
        client.set(item, &value_for(item)).expect("populate");
    }

    // Two items per (distinguished, secondary) combination involving the
    // victim: (v,0), (v,2) — distinguished ON the victim — and (0,v),
    // (2,v) — victim as secondary. The victim covers all 8; servers 0
    // and 2 cover 4 each, so the greedy cover's first (and only) pick is
    // the victim.
    let mut buckets: std::collections::HashMap<(u32, u32), Vec<u64>> =
        std::collections::HashMap::new();
    for item in 0..UNIVERSE {
        let reps = client.bundler().placement().replicas(item);
        assert_eq!(reps.len(), 2);
        if reps.contains(&VICTIM) {
            let other = if reps[0] == VICTIM { reps[1] } else { reps[0] };
            let key = if reps[0] == VICTIM {
                (VICTIM, other)
            } else {
                (other, VICTIM)
            };
            buckets.entry(key).or_default().push(item);
        }
    }
    let mut request: Vec<u64> = Vec::new();
    for key in [(VICTIM, 0), (VICTIM, 2), (0, VICTIM), (2, VICTIM)] {
        let bucket = buckets.get(&key).map(Vec::as_slice).unwrap_or(&[]);
        assert!(
            bucket.len() >= 2,
            "universe too small to find 2 items for replica pattern {key:?}"
        );
        request.extend_from_slice(&bucket[..2]);
    }
    let expect: Vec<Option<Vec<u8>>> = request.iter().map(|&i| Some(value_for(i))).collect();

    // Sanity round with the fleet healthy.
    let values = client.multi_get(&request).expect("healthy multi_get");
    assert_eq!(values, expect);

    // Mid-workload crash of the node every item is planned on.
    cluster.kill(VICTIM as usize).expect("kill victim");
    let before = client.stats();
    let values = client.multi_get(&request).expect("degraded multi_get");
    assert_eq!(values, expect, "failover must still serve every item");
    let d = client.stats().since(&before);
    assert_eq!(d.requests, 1);
    // One planned transaction (the victim covers the whole request)...
    assert_eq!(d.round1_txns, 1, "cover should plan exactly the victim");
    assert_eq!(d.planned_misses, 8, "every planned item missed");
    // ...three distinguished-copy groups (victim, server 0, server 2),
    // of which the victim's fails too...
    assert_eq!(
        d.round2_txns, 3,
        "one fallback txn per distinguished server"
    );
    assert_eq!(
        d.failed_txns, 2,
        "round-1 txn and the victim's round-2 txn both fail"
    );
    // ...and the survivor sweep recovers the 4 victim-distinguished
    // items, trying the dead replica then the live one for each.
    assert_eq!(d.round3_txns, 8, "4 items x (dead replica, live replica)");
    assert_eq!(d.unavailable_items, 0, "k=2 loses nothing on one crash");
    assert_eq!(d.reconnects, 0, "failed dials are not reconnects");

    // Restart on a fresh port; the client follows by slot index. The
    // node comes back empty, so re-install the request's items (the
    // deployment's repair step) before reading through it again.
    let addr = cluster.restart(VICTIM as usize).expect("restart victim");
    client.set_server_addr(VICTIM as usize, addr);
    let before = client.stats();
    for &item in &request {
        client.set(item, &value_for(item)).expect("repair");
    }
    let values = client.multi_get(&request).expect("post-restart multi_get");
    assert_eq!(values, expect);
    let d = client.stats().since(&before);
    assert!(
        d.reconnects >= 1,
        "the restarted node must have been re-dialed lazily"
    );
    assert_eq!(d.failed_txns, 0, "fleet is healthy again");
    assert_eq!(d.round3_txns, 0, "no survivor sweep after recovery");

    // Close our connections before the graceful shutdown: a drain waits
    // (bounded) for clients to hang up.
    drop(client);
    cluster.shutdown_all().expect("graceful shutdown");
}
