//! One `rnb-stored` process under harness control.
//!
//! The daemon side of the contract lives in
//! `crates/rnb-store/src/bin/rnb-stored.rs` (`--control` mode): the
//! process prints `READY <addr>` on stdout once its listener is bound,
//! then blocks on stdin until a `shutdown` line (or EOF) triggers a
//! graceful drain and a final `BYE`. Every synchronization point is a
//! blocking pipe read or a `wait(2)` — the harness never sleeps and
//! never polls, which keeps scenario timings deterministic and the
//! xtask R5 (no `thread::sleep`) rule clean.

use std::io::{self, BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::OnceLock;

/// Per-node launch configuration, mapped 1:1 onto `rnb-stored` flags.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// TCP port to bind; 0 (the default) asks the OS for a free port,
    /// which the harness learns from the `READY` line.
    pub port: u16,
    /// Store memory budget in MB.
    pub mem_mb: usize,
    /// Shard-count override (`None` = the store's default).
    pub shards: Option<usize>,
    /// Worker-thread override (`None` = the server's default).
    pub workers: Option<usize>,
}

impl Default for NodeConfig {
    fn default() -> Self {
        NodeConfig {
            port: 0,
            mem_mb: 64,
            shards: None,
            workers: None,
        }
    }
}

/// Locate (building if necessary) the `rnb-stored` binary.
///
/// Resolution order: the `RNB_STORED_BIN` environment variable; a
/// `rnb-stored` binary next to the current executable (test binaries
/// live in `target/<profile>/deps/`, so the parent directory is
/// checked too); finally a `cargo build -p rnb-store --bin rnb-stored`
/// fallback so `cargo test -p rnb-cluster` works from a cold target
/// directory (cargo's own file locking makes the nested invocation
/// safe). The result is cached for the process lifetime.
pub fn stored_binary() -> io::Result<PathBuf> {
    static BIN: OnceLock<Option<PathBuf>> = OnceLock::new();
    let cached = BIN.get_or_init(|| locate_or_build().ok());
    match cached {
        Some(p) => Ok(p.clone()),
        None => Err(io::Error::other(
            "cannot locate or build the rnb-stored binary \
             (set RNB_STORED_BIN to override)",
        )),
    }
}

fn locate_or_build() -> io::Result<PathBuf> {
    if let Some(p) = std::env::var_os("RNB_STORED_BIN") {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(io::Error::other(format!(
            "RNB_STORED_BIN points at a non-file: {}",
            p.display()
        )));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe
        .parent()
        .ok_or_else(|| io::Error::other("current_exe has no parent directory"))?
        .to_path_buf();
    // Test binaries run from target/<profile>/deps; the bin target of a
    // sibling crate lands one level up.
    if dir.file_name().and_then(|n| n.to_str()) == Some("deps") {
        dir.pop();
    }
    let candidate = dir.join(format!("rnb-stored{}", std::env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        return Ok(candidate);
    }
    let release = dir.file_name().and_then(|n| n.to_str()) == Some("release");
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let mut build = Command::new(cargo);
    build.args(["build", "-p", "rnb-store", "--bin", "rnb-stored"]);
    if release {
        build.arg("--release");
    }
    let status = build.stdout(Stdio::null()).stderr(Stdio::null()).status()?;
    if status.success() && candidate.is_file() {
        Ok(candidate)
    } else {
        Err(io::Error::other(format!(
            "cargo build for rnb-stored failed (expected {})",
            candidate.display()
        )))
    }
}

/// A live `rnb-stored` child process in `--control` mode.
///
/// Dropping a node kills the process outright (the crash path used by
/// kill/restart scenarios); [`StoredNode::shutdown_graceful`] is the
/// orderly exit. Either way the child is reaped — the harness never
/// leaks zombies.
pub struct StoredNode {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    addr: SocketAddr,
    reaped: bool,
}

impl StoredNode {
    /// Launch a daemon and block until its `READY <addr>` line arrives.
    pub fn spawn(config: &NodeConfig) -> io::Result<StoredNode> {
        let bin = stored_binary()?;
        let mut cmd = Command::new(bin);
        cmd.arg("--control")
            .args(["--port", &config.port.to_string()])
            .args(["--mem", &config.mem_mb.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(s) = config.shards {
            cmd.args(["--shards", &s.to_string()]);
        }
        if let Some(w) = config.workers {
            cmd.args(["--workers", &w.to_string()]);
        }
        let mut child = cmd.spawn()?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::other("child stdin not piped"))?;
        let mut stdout = BufReader::new(
            child
                .stdout
                .take()
                .ok_or_else(|| io::Error::other("child stdout not piped"))?,
        );
        match read_ready(&mut stdout) {
            Ok(addr) => Ok(StoredNode {
                child,
                stdin,
                stdout,
                addr,
                reaped: false,
            }),
            Err(e) => {
                // The daemon exited (port collision, bad flag) before
                // announcing readiness: reap it and surface the error.
                let _ = child.kill();
                let _ = child.wait();
                Err(e)
            }
        }
    }

    /// The address the daemon is serving on (OS-chosen under `--port 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the process is still running (non-blocking check).
    pub fn is_running(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }

    /// Kill the process abruptly (models a node crash) and reap it.
    pub fn kill(mut self) -> io::Result<()> {
        self.child.kill()?;
        self.child.wait()?;
        self.reaped = true;
        Ok(())
    }

    /// Ask the daemon to drain and exit, then wait for its `BYE` and
    /// process exit. Errors if the daemon died before acknowledging.
    pub fn shutdown_graceful(mut self) -> io::Result<()> {
        self.stdin.write_all(b"shutdown\n")?;
        self.stdin.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.stdout.read_line(&mut line)? == 0 {
                self.child.wait()?;
                self.reaped = true;
                return Err(io::Error::other("daemon exited without BYE"));
            }
            if line.trim() == "BYE" {
                break;
            }
        }
        let status = self.child.wait()?;
        self.reaped = true;
        if status.success() {
            Ok(())
        } else {
            Err(io::Error::other(format!(
                "daemon exited with status {status}"
            )))
        }
    }
}

impl Drop for StoredNode {
    fn drop(&mut self) {
        if !self.reaped {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Parse the `READY <addr>` handshake line from a daemon's stdout.
fn read_ready(stdout: &mut BufReader<ChildStdout>) -> io::Result<SocketAddr> {
    let mut line = String::new();
    loop {
        line.clear();
        if stdout.read_line(&mut line)? == 0 {
            return Err(io::Error::other("daemon exited before READY"));
        }
        if let Some(rest) = line.trim().strip_prefix("READY ") {
            return rest
                .parse()
                .map_err(|e| io::Error::other(format!("bad READY address {rest:?}: {e}")));
        }
    }
}
