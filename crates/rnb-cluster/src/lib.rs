//! Multi-process cluster scenario harness for RnB.
//!
//! ROADMAP item 3: everything the paper promises at the system level —
//! bundling across servers, distinguished-copy fallback when a replica
//! holder dies (§IV), elasticity under ranged consistent hashing — is
//! exercised here against *real* `rnb-stored` processes over real
//! sockets, not in-process servers or the simulator. A scenario is one
//! (topology, workload, event) cell: the harness launches the fleet,
//! pre-populates the universe, drives seeded multi-get rounds through
//! [`rnb_client::RnbClient`], injects the event (kill/restart, elastic
//! scale-out/scale-in, hot-key storm, flash crowd), and emits one
//! reproducible JSON artifact with recovery-time, reconnect-count, and
//! miss-rate-during-transition metrics, checked against declared
//! regression bounds.
//!
//! Design constraints the layers below uphold:
//!
//! * **No sleeps, no polling** (xtask rule R5): every synchronization
//!   point is a pipe handshake (`READY <addr>` / `shutdown` / `BYE`),
//!   a blocking read, or a `wait(2)` — see [`stored`].
//! * **Stable logical identities**: placement is keyed by server index,
//!   so restarts land on fresh ports and clients follow via
//!   `RnbClient::set_server_addr`; elasticity touches only the tail
//!   slot — see [`cluster`].
//! * **Attributable counters**: every metric is a [`rnb_client::ClientStats`]
//!   delta between round snapshots — see [`scenario`].
//!
//! Run the grid with `cargo run -p rnb-cluster -- --quick` (CI smoke)
//! or assert it under test with `cargo test -p rnb-cluster`.

pub mod cluster;
pub mod report;
pub mod scenario;
pub mod stored;

pub use cluster::Cluster;
pub use report::{default_artifact_dir, render_json, write_artifact};
pub use scenario::{
    run_scenario, scenario_grid, Bounds, Event, RoundStats, Scenario, ScenarioMetrics,
    ScenarioReport, Topology, WorkloadSpec,
};
pub use stored::{stored_binary, NodeConfig, StoredNode};
