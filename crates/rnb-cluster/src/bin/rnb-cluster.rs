//! Scenario grid runner.
//!
//! ```text
//! cargo run -p rnb-cluster --                  # full grid
//! cargo run -p rnb-cluster -- --quick          # CI smoke sizes
//! cargo run -p rnb-cluster -- --scenario kill_restart
//! cargo run -p rnb-cluster -- --list
//! cargo run -p rnb-cluster -- --out /tmp/artifacts
//! ```
//!
//! Each scenario writes `SCENARIO_<name>.json` (schema
//! `rnb-scenario-v1`, see EXPERIMENTS.md) into the artifact directory
//! and the process exits non-zero if any scenario violates its bounds —
//! artifacts are still written for failed scenarios so CI can upload
//! them unconditionally.

use rnb_cluster::{default_artifact_dir, run_scenario, scenario_grid, write_artifact};
use std::path::PathBuf;

fn main() {
    let mut quick = false;
    let mut only: Option<String> = None;
    let mut list = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--scenario" => {
                only = Some(
                    args.next()
                        .unwrap_or_else(|| die("--scenario needs a name")),
                );
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--out needs a directory")),
                ));
            }
            "--list" => list = true,
            "--help" | "-h" => {
                println!("usage: rnb-cluster [--quick] [--scenario NAME] [--out DIR] [--list]");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let grid = scenario_grid(quick);
    if list {
        for s in &grid {
            println!("{:<16} {}", s.name, s.event.describe());
        }
        return;
    }
    let dir = out.unwrap_or_else(default_artifact_dir);
    let mut failures = 0usize;
    let mut ran = 0usize;
    for s in &grid {
        if let Some(name) = &only {
            if s.name != name {
                continue;
            }
        }
        ran += 1;
        println!("[scenario] {} ({})", s.name, s.event.describe());
        match run_scenario(s) {
            Ok(report) => {
                let path = match write_artifact(&report, &dir) {
                    Ok(p) => p.display().to_string(),
                    Err(e) => {
                        failures += 1;
                        format!("<write failed: {e}>")
                    }
                };
                let m = &report.metrics;
                println!(
                    "[scenario] {}: tpr {:.3}, transition miss {:.4}, \
                     recovery {:?} rounds / {:?} ms, {} reconnects -> {}",
                    s.name,
                    m.overall_tpr,
                    m.transition_miss_rate,
                    m.recovery_rounds,
                    m.recovery_ms.map(|ms| ms.round()),
                    m.reconnects,
                    path
                );
                if !report.passed() {
                    failures += 1;
                    for v in &report.violations {
                        eprintln!("[scenario] {} VIOLATION: {v}", s.name);
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("[scenario] {} failed to run: {e}", s.name);
            }
        }
    }
    if ran == 0 {
        die("no scenario matched (try --list)");
    }
    if failures > 0 {
        die(&format!("{failures} scenario failure(s)"));
    }
}

// CLI errors exit the process by design; the workspace-wide
// `clippy::exit` deny targets library code.
#[allow(clippy::exit)]
fn die(msg: &str) -> ! {
    eprintln!("rnb-cluster: {msg}");
    std::process::exit(2)
}
