//! A fleet of [`StoredNode`] processes with stable logical identities.
//!
//! RnB placement is keyed by *server index* (the position in the address
//! list every client shares), so the fleet keeps one slot per logical
//! server. Killing a node leaves its slot empty but remembered; a
//! restart fills the slot with a fresh process — on a fresh OS-chosen
//! port, because rebinding the exact old port can collide with
//! `TIME_WAIT` remnants of the dead process's connections and the
//! harness refuses to sleep-and-retry around that. Clients follow the
//! move via `RnbClient::set_server_addr` (index-keyed placement makes
//! the address irrelevant).
//!
//! Elasticity appends and removes slots at the *end* only: under ranged
//! consistent hashing the server index participates in placement, so
//! removing a middle slot would shift every later index and remap most
//! of the key space, while growing/shrinking at the tail is the minimal
//! remap the paper's §IV deployment story assumes.

use crate::stored::{NodeConfig, StoredNode};
use std::io;
use std::net::SocketAddr;

/// A launched fleet of `rnb-stored` processes.
pub struct Cluster {
    /// One entry per logical server slot; `None` = currently dead.
    nodes: Vec<Option<StoredNode>>,
    /// Last-known address per slot (survives a kill so diagnostics and
    /// restarts can refer to it).
    addrs: Vec<SocketAddr>,
    template: NodeConfig,
}

impl Cluster {
    /// Launch `n` nodes from a shared template (ports always OS-chosen).
    pub fn launch(n: usize, template: NodeConfig) -> io::Result<Cluster> {
        assert!(n > 0, "need at least one node");
        let mut cluster = Cluster {
            nodes: Vec::with_capacity(n),
            addrs: Vec::with_capacity(n),
            template,
        };
        for _ in 0..n {
            cluster.push_node()?;
        }
        Ok(cluster)
    }

    fn push_node(&mut self) -> io::Result<SocketAddr> {
        let mut config = self.template.clone();
        config.port = 0;
        let node = StoredNode::spawn(&config)?;
        let addr = node.addr();
        self.nodes.push(Some(node));
        self.addrs.push(addr);
        Ok(addr)
    }

    /// Number of logical server slots (dead or alive).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet has no slots.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of slots with a live process.
    pub fn live(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Last-known address of slot `i`.
    pub fn addr(&self, i: usize) -> SocketAddr {
        self.addrs[i]
    }

    /// The address list clients connect with (order = placement order).
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.addrs.clone()
    }

    /// Whether slot `i` currently has a live process.
    pub fn is_up(&self, i: usize) -> bool {
        self.nodes[i].is_some()
    }

    /// Crash slot `i` (SIGKILL, no drain). No-op if already dead.
    pub fn kill(&mut self, i: usize) -> io::Result<()> {
        match self.nodes[i].take() {
            Some(node) => node.kill(),
            None => Ok(()),
        }
    }

    /// Restart a dead slot on a fresh OS-chosen port; returns the new
    /// address (callers repoint their clients with `set_server_addr`).
    pub fn restart(&mut self, i: usize) -> io::Result<SocketAddr> {
        assert!(self.nodes[i].is_none(), "slot {i} is already running");
        let mut config = self.template.clone();
        config.port = 0;
        let node = StoredNode::spawn(&config)?;
        let addr = node.addr();
        self.nodes[i] = Some(node);
        self.addrs[i] = addr;
        Ok(addr)
    }

    /// Scale out: append one node slot; returns its address.
    pub fn add_node(&mut self) -> io::Result<SocketAddr> {
        self.push_node()
    }

    /// Scale in: gracefully retire the *last* slot (see the module docs
    /// for why only the tail may shrink). The slot must be alive.
    pub fn remove_last(&mut self) -> io::Result<()> {
        assert!(self.nodes.len() > 1, "cannot shrink below one node");
        let node = self
            .nodes
            .pop()
            .flatten()
            .ok_or_else(|| io::Error::other("last slot is dead; kill+shrink is unsupported"))?;
        self.addrs.pop();
        node.shutdown_graceful()
    }

    /// Gracefully shut down every live node (kept slots stay, emptied).
    pub fn shutdown_all(&mut self) -> io::Result<()> {
        let mut first_err = None;
        for slot in &mut self.nodes {
            if let Some(node) = slot.take() {
                if let Err(e) = node.shutdown_graceful() {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}
