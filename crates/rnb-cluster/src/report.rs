//! Scenario artifact rendering: one JSON file per scenario run.
//!
//! Schema `rnb-scenario-v1`, documented in EXPERIMENTS.md ("Cluster
//! scenario artifacts") and mirroring the hand-rolled, dependency-free
//! style of `BENCH_store.json`: stable key order, floats with fixed
//! precision, arrays one element per line, so artifact diffs between CI
//! runs are line-oriented and reviewable.

use crate::scenario::ScenarioReport;
use std::io;
use std::path::{Path, PathBuf};

/// Default artifact directory: `target/scenarios/` at the workspace
/// root (gitignored alongside the rest of `target/`).
pub fn default_artifact_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/scenarios"
    ))
}

/// Render a report as schema-`rnb-scenario-v1` JSON.
pub fn render_json(report: &ScenarioReport) -> String {
    let s = &report.scenario;
    let m = &report.metrics;
    let b = &s.bounds;
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"rnb-scenario-v1\",\n");
    out.push_str(&format!("  \"scenario\": \"{}\",\n", s.name));
    out.push_str(&format!(
        "  \"event\": \"{}\",\n",
        s.event.describe().replace('"', "'")
    ));
    out.push_str(&format!(
        "  \"topology\": {{ \"nodes\": {}, \"replication\": {}, \"mem_mb\": {} }},\n",
        s.topology.nodes, s.topology.replication, s.topology.mem_mb
    ));
    out.push_str(&format!(
        "  \"workload\": {{ \"universe\": {}, \"request_size\": {}, \
         \"requests_per_round\": {}, \"rounds\": {}, \"seed\": {}, \
         \"write_fraction\": {:.2} }},\n",
        s.workload.universe,
        s.workload.request_size,
        s.workload.requests_per_round,
        s.workload.rounds,
        s.workload.seed,
        s.workload.write_fraction
    ));
    out.push_str(&format!(
        "  \"metrics\": {{ \"recovery_rounds\": {}, \"recovery_ms\": {}, \
         \"transition_miss_rate\": {:.6}, \"steady_miss_rate\": {:.6}, \
         \"overall_tpr\": {:.4}, \"reconnects\": {}, \"failed_txns\": {}, \
         \"round3_txns\": {} }},\n",
        opt_usize(m.recovery_rounds),
        opt_ms(m.recovery_ms),
        m.transition_miss_rate,
        m.steady_miss_rate,
        m.overall_tpr,
        m.reconnects,
        m.failed_txns,
        m.round3_txns
    ));
    out.push_str(&format!(
        "  \"bounds\": {{ \"max_recovery_rounds\": {}, \"max_transition_miss_rate\": {:.6}, \
         \"max_steady_miss_rate\": {:.6}, \"max_tpr\": {:.4}, \"min_reconnects\": {} }},\n",
        b.max_recovery_rounds,
        b.max_transition_miss_rate,
        b.max_steady_miss_rate,
        b.max_tpr,
        b.min_reconnects
    ));
    out.push_str("  \"rounds\": [\n");
    for (i, r) in report.rounds.iter().enumerate() {
        let sep = if i + 1 == report.rounds.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{ \"round\": {}, \"phase\": \"{}\", \"requests\": {}, \"items\": {}, \
             \"round1_txns\": {}, \"round2_txns\": {}, \"round3_txns\": {}, \
             \"failed_txns\": {}, \"reconnects\": {}, \"planned_misses\": {}, \
             \"writebacks\": {}, \"writes\": {}, \"write_txns\": {}, \
             \"unavailable\": {}, \"miss_rate\": {:.6}, \
             \"tpr\": {:.4} }}{sep}\n",
            r.round,
            r.phase,
            r.requests,
            r.items,
            r.round1_txns,
            r.round2_txns,
            r.round3_txns,
            r.failed_txns,
            r.reconnects,
            r.planned_misses,
            r.writebacks,
            r.writes,
            r.write_txns,
            r.unavailable,
            r.miss_rate,
            r.tpr
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        let sep = if i + 1 == report.violations.len() {
            ""
        } else {
            ", "
        };
        out.push_str(&format!("\"{}\"{sep}", v.replace('"', "'")));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"passed\": {}\n", report.passed()));
    out.push_str("}\n");
    out
}

fn opt_usize(v: Option<usize>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".into(),
    }
}

fn opt_ms(v: Option<f64>) -> String {
    match v {
        Some(v) => format!("{v:.3}"),
        None => "null".into(),
    }
}

/// Write a report's artifact as `SCENARIO_<name>.json` under `dir`
/// (created if missing); returns the path written.
pub fn write_artifact(report: &ScenarioReport, dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("SCENARIO_{}.json", report.scenario.name));
    std::fs::write(&path, render_json(report))?;
    Ok(path)
}
