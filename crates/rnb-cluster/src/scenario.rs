//! Scenario cells: (topology, workload, event) driven against a real
//! process fleet, with recovery and miss-rate metrics.
//!
//! A scenario runs a fixed number of *rounds*. Each round drives a batch
//! of multi-get requests from a seeded workload stream through one
//! [`RnbClient`] and snapshots [`ClientStats`] deltas, so every counter
//! (fallback rounds, failed transactions, reconnects, unavailable
//! items) is attributable to exactly one round. Events — node kill and
//! restart, elastic scale-out/scale-in, hot-key storms, flash crowds —
//! fire at declared round boundaries. The harness then derives the
//! three regression-gated numbers the Harmonia framing asks for
//! (PAPERS.md): *miss rate during the transition*, *recovery time*
//! (rounds and wall milliseconds), and *reconnect count*, and checks
//! them against per-scenario [`Bounds`].
//!
//! Synchronization is entirely readiness-based (process handshakes and
//! blocking reads; see [`crate::stored`]); the only wall-clock use is
//! the recovery stopwatch, which is why `crates/rnb-cluster/` is on the
//! xtask R2 time allowlist.

use crate::cluster::Cluster;
use crate::stored::NodeConfig;
use rnb_client::{ClientStats, RnbClient, RnbClientConfig};
use rnb_workload::{RequestStream, ScriptedRequests, UniformRequests, ZipfRequests};
use std::io;
use std::time::Instant;

/// Fleet shape for a scenario.
#[derive(Debug, Clone)]
pub struct Topology {
    /// Number of `rnb-stored` processes at launch.
    pub nodes: usize,
    /// Declared replication level k.
    pub replication: usize,
    /// Per-node memory budget (MB).
    pub mem_mb: usize,
}

/// Read workload for a scenario (uniform multi-gets; events may splice
/// in skewed phases).
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Item universe size; items `0..universe` are pre-populated.
    pub universe: u64,
    /// Items per multi-get request.
    pub request_size: usize,
    /// Requests driven per round.
    pub requests_per_round: usize,
    /// Total rounds in the scenario.
    pub rounds: usize,
    /// Workload RNG seed (placement seed is the deployment default).
    pub seed: u64,
    /// Fraction of driven ops that are `multi_set` write bursts (of
    /// `request_size` items) instead of multi-gets. Writes are spread
    /// evenly among the reads of a round; write failures during an
    /// event (e.g. a killed distinguished server) are data — they land
    /// in `failed_txns` — not harness errors.
    pub write_fraction: f64,
}

/// The mid-run event a scenario injects.
#[derive(Debug, Clone)]
pub enum Event {
    /// No event: pure steady-state baseline.
    None,
    /// SIGKILL `node` at the start of round `kill_at`; restart it (on a
    /// fresh port, repointing the client) and repair at the start of
    /// round `restart_at`.
    KillRestart {
        /// Server slot to crash.
        node: usize,
        /// Round at whose start the kill fires.
        kill_at: usize,
        /// Round at whose start the restart + repair fires.
        restart_at: usize,
    },
    /// Append a node at the start of round `grow_at` (repair one round
    /// later), then gracefully retire it at the start of round
    /// `shrink_at` (repair one round later). The un-repaired round after
    /// each membership change measures the honest transition miss rate.
    Elastic {
        /// Round at whose start the fleet grows by one node.
        grow_at: usize,
        /// Round at whose start the fleet shrinks back.
        shrink_at: usize,
    },
    /// Replace the uniform stream with a Zipf-skewed stream over the
    /// same universe for `storm_rounds` rounds starting at `at`.
    HotKeyStorm {
        /// First storm round.
        at: usize,
        /// Storm duration in rounds.
        storm_rounds: usize,
        /// Zipf exponent (higher = hotter head).
        exponent: f64,
    },
    /// Multiply the per-round request count by `multiplier` for
    /// `crowd_rounds` rounds starting at `at`.
    FlashCrowd {
        /// First crowd round.
        at: usize,
        /// Crowd duration in rounds.
        crowd_rounds: usize,
        /// Request-rate multiplier during the crowd.
        multiplier: usize,
    },
}

impl Event {
    /// Round at whose start the first disturbance fires (`None` for the
    /// baseline event).
    fn first_action_round(&self) -> Option<usize> {
        match *self {
            Event::None => None,
            Event::KillRestart { kill_at, .. } => Some(kill_at),
            Event::Elastic { grow_at, .. } => Some(grow_at),
            Event::HotKeyStorm { at, .. } => Some(at),
            Event::FlashCrowd { at, .. } => Some(at),
        }
    }

    /// Round at whose start the system is left alone to recover.
    fn last_action_round(&self) -> Option<usize> {
        match *self {
            Event::None => None,
            Event::KillRestart { restart_at, .. } => Some(restart_at),
            Event::Elastic { shrink_at, .. } => Some(shrink_at + 1),
            Event::HotKeyStorm {
                at, storm_rounds, ..
            } => Some(at + storm_rounds),
            Event::FlashCrowd {
                at, crowd_rounds, ..
            } => Some(at + crowd_rounds),
        }
    }

    /// Human-readable event description for reports.
    pub fn describe(&self) -> String {
        match *self {
            Event::None => "none".into(),
            Event::KillRestart {
                node,
                kill_at,
                restart_at,
            } => format!("kill node {node} @r{kill_at}, restart+repair @r{restart_at}"),
            Event::Elastic { grow_at, shrink_at } => {
                format!("scale-out @r{grow_at}, scale-in @r{shrink_at} (repair 1 round after each)")
            }
            Event::HotKeyStorm {
                at,
                storm_rounds,
                exponent,
            } => format!("zipf({exponent}) storm @r{at} for {storm_rounds} rounds"),
            Event::FlashCrowd {
                at,
                crowd_rounds,
                multiplier,
            } => format!("{multiplier}x flash crowd @r{at} for {crowd_rounds} rounds"),
        }
    }
}

/// Regression bounds a scenario's metrics are checked against.
#[derive(Debug, Clone)]
pub struct Bounds {
    /// Max rounds from the last event action to confirmed recovery.
    pub max_recovery_rounds: usize,
    /// Max per-round unavailable-item rate while the event is in flight.
    pub max_transition_miss_rate: f64,
    /// Max per-round unavailable-item rate after recovery.
    pub max_steady_miss_rate: f64,
    /// Max transactions-per-request over the whole run.
    pub max_tpr: f64,
    /// Min reconnects the client must have performed (kill scenarios
    /// assert the lazy-reconnect path actually fired; 0 elsewhere).
    pub min_reconnects: u64,
}

/// One declared scenario cell.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Unique scenario name (also the artifact file stem).
    pub name: &'static str,
    /// Fleet shape.
    pub topology: Topology,
    /// Request workload.
    pub workload: WorkloadSpec,
    /// Injected event.
    pub event: Event,
    /// Pass/fail bounds.
    pub bounds: Bounds,
}

/// Per-round observed counters (a [`ClientStats`] delta plus derived
/// rates).
#[derive(Debug, Clone)]
pub struct RoundStats {
    /// Round index (0-based).
    pub round: usize,
    /// Post-hoc phase label: `baseline`, `transition`, or `steady`.
    pub phase: &'static str,
    /// Requests driven this round.
    pub requests: u64,
    /// Item fetches requested this round.
    pub items: u64,
    /// Round-1 transactions.
    pub round1_txns: u64,
    /// Round-2 (distinguished fallback) transactions.
    pub round2_txns: u64,
    /// Round-3 (survivor sweep) transactions.
    pub round3_txns: u64,
    /// Transactions that failed with I/O errors.
    pub failed_txns: u64,
    /// Reconnects performed.
    pub reconnects: u64,
    /// Round-1 planned misses.
    pub planned_misses: u64,
    /// Write-backs performed.
    pub writebacks: u64,
    /// Items written via `multi_set` bursts this round.
    pub writes: u64,
    /// Write-side transactions (one per pipelined burst per touched
    /// server) this round.
    pub write_txns: u64,
    /// Items no server could supply.
    pub unavailable: u64,
    /// `unavailable / items`.
    pub miss_rate: f64,
    /// Transactions per request this round.
    pub tpr: f64,
}

/// Derived scenario metrics (the regression-gated numbers).
#[derive(Debug, Clone)]
pub struct ScenarioMetrics {
    /// Rounds from the last event action to the first of two
    /// consecutive clean rounds (`None` = never recovered).
    pub recovery_rounds: Option<usize>,
    /// Wall milliseconds from the last event action to the end of the
    /// first clean round.
    pub recovery_ms: Option<f64>,
    /// Max per-round miss rate during the transition window.
    pub transition_miss_rate: f64,
    /// Max per-round miss rate after recovery.
    pub steady_miss_rate: f64,
    /// Transactions per request over the whole run.
    pub overall_tpr: f64,
    /// Total reconnects over the whole run.
    pub reconnects: u64,
    /// Total transactions that failed with I/O errors.
    pub failed_txns: u64,
    /// Total round-3 survivor-sweep transactions.
    pub round3_txns: u64,
}

/// The full result of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The scenario that produced this report.
    pub scenario: Scenario,
    /// Per-round observations.
    pub rounds: Vec<RoundStats>,
    /// Derived metrics.
    pub metrics: ScenarioMetrics,
    /// Bound violations (empty = passed).
    pub violations: Vec<String>,
}

impl ScenarioReport {
    /// Whether every bound held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Deterministic value for a populated item.
fn value_for(item: u64) -> Vec<u8> {
    format!("val-{item:08}").into_bytes()
}

/// Write every universe item through the client (initial population and
/// post-membership-change repair: a real deployment would migrate, the
/// harness re-installs).
fn repopulate(client: &mut RnbClient, universe: u64) -> io::Result<()> {
    for item in 0..universe {
        client.set(item, &value_for(item))?;
    }
    Ok(())
}

/// Build the scenario's request stream (events may splice phases).
fn build_stream(s: &Scenario) -> Box<dyn RequestStream> {
    let w = &s.workload;
    let base = || UniformRequests::new(w.universe, w.request_size, w.seed);
    match s.event {
        Event::HotKeyStorm {
            at,
            storm_rounds,
            exponent,
        } => {
            let rpr = w.requests_per_round;
            Box::new(
                ScriptedRequests::new()
                    .phase(at * rpr, base())
                    .phase(
                        storm_rounds * rpr,
                        ZipfRequests::new(w.universe, w.request_size, exponent, w.seed ^ 0x5a5a),
                    )
                    .phase(0, base()),
            )
        }
        _ => Box::new(base()),
    }
}

/// Run one scenario against a real fleet. Every node is a separate
/// `rnb-stored` process; the call blocks until all rounds complete and
/// the fleet is shut down.
pub fn run_scenario(s: &Scenario) -> io::Result<ScenarioReport> {
    assert!(
        s.topology.nodes >= 2,
        "scenarios need at least two nodes for replication to mean anything"
    );
    let template = NodeConfig {
        mem_mb: s.topology.mem_mb,
        ..NodeConfig::default()
    };
    let mut cluster = Cluster::launch(s.topology.nodes, template)?;
    let connect = |cluster: &Cluster| -> io::Result<RnbClient> {
        RnbClient::connect(
            &cluster.addrs(),
            RnbClientConfig::new(s.topology.replication),
        )
    };
    let mut client = Some(connect(&cluster)?);
    if let Some(c) = client.as_mut() {
        repopulate(c, s.workload.universe)?;
    }

    let mut stream = build_stream(s);
    let w = s.workload.clone();
    let mut rounds: Vec<RoundStats> = Vec::with_capacity(w.rounds);
    let mut totals = ClientStats::default();
    let mut prev = client.as_ref().map(|c| c.stats()).unwrap_or_default();

    // Recovery bookkeeping: the stopwatch starts at the last event
    // action; recovery is confirmed by two consecutive clean rounds.
    let last_action = s.event.last_action_round();
    let mut stopwatch: Option<Instant> = None;
    let mut clean_streak = 0usize;
    let mut pending: Option<(usize, f64)> = None; // (round, ms at round end)
    let mut recovered: Option<(usize, f64)> = None;
    // Deterministic write cursor: mixed-write cells cycle the universe
    // so repeated bursts re-store `value_for(item)` and reads stay
    // consistent with the populated values.
    let mut next_write_item = 0u64;
    let mut entries: Vec<(u64, Vec<u8>)> = Vec::with_capacity(w.request_size);

    for round in 0..w.rounds {
        // --- apply event actions scheduled at this round boundary ---
        match s.event {
            Event::KillRestart {
                node,
                kill_at,
                restart_at,
            } => {
                if round == kill_at {
                    cluster.kill(node)?;
                }
                if round == restart_at {
                    let addr = cluster.restart(node)?;
                    if let Some(c) = client.as_mut() {
                        c.set_server_addr(node, addr);
                        // Repair: the restarted node is empty; re-install
                        // so its planned reads hit again.
                        repopulate(c, w.universe)?;
                    }
                    stopwatch = Some(Instant::now());
                }
            }
            Event::Elastic { grow_at, shrink_at } => {
                if round == grow_at {
                    cluster.add_node()?;
                    // Membership changed: placement is a function of the
                    // server count, so the client is rebuilt. Per-round
                    // deltas already flowed into the running totals.
                    client = Some(connect(&cluster)?);
                    prev = ClientStats::default();
                } else if round == grow_at + 1 || round == shrink_at + 1 {
                    if let Some(c) = client.as_mut() {
                        repopulate(c, w.universe)?;
                    }
                    if round == shrink_at + 1 {
                        stopwatch = Some(Instant::now());
                    }
                } else if round == shrink_at {
                    // Drop the client first: a graceful shutdown drains,
                    // and it should not have to wait out our own open
                    // connections.
                    drop(client.take());
                    cluster.remove_last()?;
                    client = Some(connect(&cluster)?);
                    prev = ClientStats::default();
                }
            }
            Event::HotKeyStorm {
                at, storm_rounds, ..
            } => {
                if round == at + storm_rounds {
                    stopwatch = Some(Instant::now());
                }
            }
            Event::FlashCrowd {
                at, crowd_rounds, ..
            } => {
                if round == at + crowd_rounds {
                    stopwatch = Some(Instant::now());
                }
            }
            Event::None => {}
        }
        if stopwatch.is_none() && last_action == Some(round) {
            // Events whose last action carries no explicit work (e.g. a
            // kill-only cell) still start the stopwatch here.
            stopwatch = Some(Instant::now());
        }

        // --- drive the round ---
        let multiplier = match s.event {
            Event::FlashCrowd {
                at,
                crowd_rounds,
                multiplier,
            } if round >= at && round < at + crowd_rounds => multiplier,
            _ => 1,
        };
        let c = client
            .as_mut()
            .ok_or_else(|| io::Error::other("client missing outside a membership change"))?;
        let mut items_requested = 0u64;
        let ops = w.requests_per_round * multiplier;
        let write_ops = (ops as f64 * w.write_fraction).round() as usize;
        for i in 0..ops {
            // Bresenham spread: `write_ops` of the round's `ops` slots
            // are multi_set bursts, interleaved evenly among the reads.
            let is_write = write_ops > 0 && ((i + 1) * write_ops) / ops > (i * write_ops) / ops;
            if is_write {
                entries.clear();
                for _ in 0..w.request_size {
                    let item = next_write_item % w.universe;
                    next_write_item += 1;
                    entries.push((item, value_for(item)));
                }
                // Degraded writes (e.g. a killed distinguished server
                // mid-burst) are data, not an error: the failure is
                // already recorded in failed_txns.
                let _ = c.multi_set(&entries);
            } else {
                let request = stream.next_request();
                items_requested += request.len() as u64;
                // Degraded service (failed transactions, misses) is data,
                // not an error: multi_get only fails on client-side bugs.
                let _values = c.multi_get(&request)?;
            }
        }
        let now = c.stats();
        let delta = now.since(&prev);
        prev = now;
        totals = add(totals, &delta);

        let txns = delta.round1_txns + delta.round2_txns + delta.round3_txns;
        rounds.push(RoundStats {
            round,
            phase: "baseline", // relabeled post-hoc below
            requests: delta.requests,
            items: items_requested,
            round1_txns: delta.round1_txns,
            round2_txns: delta.round2_txns,
            round3_txns: delta.round3_txns,
            failed_txns: delta.failed_txns,
            reconnects: delta.reconnects,
            planned_misses: delta.planned_misses,
            writebacks: delta.writebacks,
            writes: delta.writes,
            write_txns: delta.write_txns,
            unavailable: delta.unavailable_items,
            miss_rate: if items_requested == 0 {
                0.0
            } else {
                delta.unavailable_items as f64 / items_requested as f64
            },
            tpr: if delta.requests == 0 {
                0.0
            } else {
                txns as f64 / delta.requests as f64
            },
        });

        // --- recovery detection ---
        if let (Some(last), Some(started)) = (last_action, stopwatch.as_ref()) {
            if round >= last && recovered.is_none() {
                let clean = delta.unavailable_items == 0 && delta.failed_txns == 0;
                if clean {
                    clean_streak += 1;
                    if clean_streak == 1 {
                        pending = Some((round, started.elapsed().as_secs_f64() * 1e3));
                    }
                    if clean_streak >= 2 {
                        recovered = pending.take();
                    }
                } else {
                    clean_streak = 0;
                    pending = None;
                }
            }
        }
    }

    drop(client);
    cluster.shutdown_all()?;

    // --- post-hoc phase labels and aggregate metrics ---
    let first_action = s.event.first_action_round();
    let steady_from = recovered.map(|(r, _)| r);
    for r in rounds.iter_mut() {
        r.phase = match (first_action, steady_from) {
            (None, _) => "baseline",
            (Some(f), _) if r.round < f => "baseline",
            (_, Some(sf)) if r.round >= sf => "steady",
            _ => "transition",
        };
    }
    let phase_max_miss = |phase: &str| {
        rounds
            .iter()
            .filter(|r| r.phase == phase)
            .map(|r| r.miss_rate)
            .fold(0.0f64, f64::max)
    };
    let metrics = ScenarioMetrics {
        recovery_rounds: match (recovered, last_action) {
            (Some((r, _)), Some(last)) => Some(r - last + 1),
            _ => None,
        },
        recovery_ms: recovered.map(|(_, ms)| ms),
        transition_miss_rate: phase_max_miss("transition"),
        steady_miss_rate: phase_max_miss("steady"),
        overall_tpr: totals.tpr(),
        reconnects: totals.reconnects,
        failed_txns: totals.failed_txns,
        round3_txns: totals.round3_txns,
    };

    // --- bounds ---
    let b = &s.bounds;
    let mut violations = Vec::new();
    if !matches!(s.event, Event::None) {
        match metrics.recovery_rounds {
            None => violations.push("never recovered (no two consecutive clean rounds)".into()),
            Some(rr) if rr > b.max_recovery_rounds => violations.push(format!(
                "recovery took {rr} rounds (bound {})",
                b.max_recovery_rounds
            )),
            Some(_) => {}
        }
    }
    if metrics.transition_miss_rate > b.max_transition_miss_rate {
        violations.push(format!(
            "transition miss rate {:.4} exceeds bound {:.4}",
            metrics.transition_miss_rate, b.max_transition_miss_rate
        ));
    }
    if metrics.steady_miss_rate > b.max_steady_miss_rate {
        violations.push(format!(
            "steady miss rate {:.4} exceeds bound {:.4}",
            metrics.steady_miss_rate, b.max_steady_miss_rate
        ));
    }
    if metrics.overall_tpr > b.max_tpr {
        violations.push(format!(
            "overall TPR {:.3} exceeds bound {:.3}",
            metrics.overall_tpr, b.max_tpr
        ));
    }
    if metrics.reconnects < b.min_reconnects {
        violations.push(format!(
            "only {} reconnects observed (expected >= {})",
            metrics.reconnects, b.min_reconnects
        ));
    }

    Ok(ScenarioReport {
        scenario: s.clone(),
        rounds,
        metrics,
        violations,
    })
}

/// Field-wise sum of two counter snapshots (totals across client
/// rebuilds, where the cumulative counters reset).
fn add(a: ClientStats, d: &ClientStats) -> ClientStats {
    ClientStats {
        requests: a.requests + d.requests,
        round1_txns: a.round1_txns + d.round1_txns,
        round2_txns: a.round2_txns + d.round2_txns,
        round3_txns: a.round3_txns + d.round3_txns,
        planned_misses: a.planned_misses + d.planned_misses,
        rescued_by_hitchhikers: a.rescued_by_hitchhikers + d.rescued_by_hitchhikers,
        writebacks: a.writebacks + d.writebacks,
        unavailable_items: a.unavailable_items + d.unavailable_items,
        writes: a.writes + d.writes,
        write_txns: a.write_txns + d.write_txns,
        cas_retries: a.cas_retries + d.cas_retries,
        failed_txns: a.failed_txns + d.failed_txns,
        reconnects: a.reconnects + d.reconnects,
    }
}

/// The declared scenario grid. `quick` shrinks universes and round
/// counts for CI smoke runs; the cell structure is identical.
pub fn scenario_grid(quick: bool) -> Vec<Scenario> {
    let (universe, rpr) = if quick { (384, 32) } else { (2048, 128) };
    let topology = Topology {
        nodes: 3,
        replication: 2,
        mem_mb: 64,
    };
    let workload = |rounds: usize, seed: u64| WorkloadSpec {
        universe,
        request_size: 8,
        requests_per_round: rpr,
        rounds,
        seed,
        write_fraction: 0.0,
    };
    vec![
        Scenario {
            name: "kill_restart",
            topology: topology.clone(),
            workload: workload(8, 0xA11CE),
            event: Event::KillRestart {
                node: 1,
                kill_at: 2,
                restart_at: 4,
            },
            bounds: Bounds {
                max_recovery_rounds: 3,
                // k=2 means a single crash loses no items: the survivor
                // sweep keeps serving, so even mid-transition the miss
                // rate must stay (near) zero. This IS the paper's
                // availability claim, regression-gated.
                max_transition_miss_rate: 0.01,
                max_steady_miss_rate: 0.001,
                max_tpr: 5.0,
                min_reconnects: 1,
            },
        },
        Scenario {
            name: "elastic_scale",
            topology: topology.clone(),
            workload: workload(10, 0xB0B),
            event: Event::Elastic {
                grow_at: 2,
                shrink_at: 6,
            },
            bounds: Bounds {
                max_recovery_rounds: 3,
                // The un-repaired round after a membership change honestly
                // measures RCH remapping: a minority of items move, so
                // misses spike but must stay a minority.
                max_transition_miss_rate: 0.6,
                max_steady_miss_rate: 0.001,
                max_tpr: 5.0,
                min_reconnects: 0,
            },
        },
        Scenario {
            name: "hot_key_storm",
            topology: topology.clone(),
            workload: workload(8, 0xC0FFEE),
            event: Event::HotKeyStorm {
                at: 2,
                storm_rounds: 3,
                exponent: 1.2,
            },
            bounds: Bounds {
                max_recovery_rounds: 2,
                max_transition_miss_rate: 0.01,
                max_steady_miss_rate: 0.001,
                max_tpr: 5.0,
                min_reconnects: 0,
            },
        },
        Scenario {
            name: "mixed_write",
            topology: topology.clone(),
            workload: WorkloadSpec {
                write_fraction: 0.3,
                ..workload(8, 0xD00D)
            },
            event: Event::KillRestart {
                node: 1,
                kill_at: 2,
                restart_at: 4,
            },
            bounds: Bounds {
                max_recovery_rounds: 3,
                // Reads keep serving through the crash (k=2), and write
                // failures land in failed_txns rather than losing items:
                // the bundled write path must not turn a dead server
                // into read unavailability.
                max_transition_miss_rate: 0.01,
                max_steady_miss_rate: 0.001,
                max_tpr: 5.0,
                min_reconnects: 1,
            },
        },
        Scenario {
            name: "flash_crowd",
            topology,
            workload: workload(8, 0xF1A54),
            event: Event::FlashCrowd {
                at: 2,
                crowd_rounds: 2,
                multiplier: 3,
            },
            bounds: Bounds {
                max_recovery_rounds: 2,
                max_transition_miss_rate: 0.01,
                max_steady_miss_rate: 0.001,
                max_tpr: 5.0,
                min_reconnects: 0,
            },
        },
    ]
}
