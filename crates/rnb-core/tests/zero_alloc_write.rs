//! Proof of the batch write planner's zero-steady-state-allocation
//! guarantee (the write-side analogue of `rnb-cover`'s
//! `tests/zero_alloc.rs`): after one warm-up batch per shape, planning a
//! write batch through [`rnb_core::WriteBatchPlanner`] performs zero
//! allocator calls, for both write policies, including smaller follow-up
//! batches (pools shrink logically, never physically).
//!
//! Kept to a single `#[test]` so no sibling test thread muddies the
//! warm-up ordering.

use alloc_counter::{count_alloc, AllocCounterSystem};
use rnb_core::{PlacementStrategy, RnbConfig, WriteBatchPlanner, WritePlanner, WritePolicy};

#[global_allocator]
static ALLOC: AllocCounterSystem = AllocCounterSystem;

#[test]
fn steady_state_write_planning_does_not_allocate() {
    let config = RnbConfig::new(16, 4);
    for policy in [WritePolicy::WriteAll, WritePolicy::InvalidateThenWrite] {
        let writer = WritePlanner::new(PlacementStrategy::from_config(&config), policy);
        let mut batcher = WriteBatchPlanner::new();

        // Warm-up: first batch grows every pool to this shape.
        let warm = batcher.plan_batch(&writer, (0..200u64).map(|i| i * 7 % 331));
        assert!(warm.total_ops() > 0);

        // Steady state: identical-shape batches must not touch the
        // allocator. (A batch with a *different* item mix may still grow
        // a pooled group's op vector once — pools converge, they are not
        // preallocated to the worst case.)
        for round in 0..20 {
            let ((allocs, reallocs, deallocs), ops) = count_alloc(|| {
                batcher
                    .plan_batch(&writer, (0..200u64).map(|i| i * 7 % 331))
                    .total_ops()
            });
            assert_eq!(ops, 200 * 4);
            assert_eq!(
                (allocs, reallocs, deallocs),
                (0, 0, 0),
                "round {round} under {policy:?} touched the allocator"
            );
        }

        // A smaller batch after warm-up also stays allocation-free.
        let ((a, r, d), ops) = count_alloc(|| batcher.plan_batch(&writer, 0..10u64).total_ops());
        assert_eq!(ops, 10 * 4);
        assert_eq!((a, r, d), (0, 0, 0), "shrunken batch allocated");
    }
}
