//! RnB deployment configuration.

use rnb_hash::HashKind;

/// Which replica-placement scheme the deployment uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementKind {
    /// Ranged Consistent Hashing (paper §IV) — walk the continuum
    /// gathering distinct servers. The default; what a production
    /// deployment would run.
    Rch,
    /// `k` independent hash functions (paper §III-B) — what the paper's
    /// simulator used.
    MultiHash,
    /// Rendezvous / highest-random-weight — ablation baseline.
    Rendezvous,
    /// Jump consistent hashing (Lamping–Veach) — the modern zero-memory
    /// alternative, for the placement ablation.
    Jump,
}

/// Configuration of an RnB deployment.
///
/// `replication` is the *logical* (declared) replication level; with
/// overbooking (§III-C1) the physically resident copies may be fewer —
/// that is the storage layer's business (see `rnb-sim` / `rnb-store`), not
/// the client's: "when the client is handling a request, it is practically
/// oblivious to the overbooking".
#[derive(Debug, Clone)]
pub struct RnbConfig {
    /// Number of storage servers.
    pub servers: usize,
    /// Declared replicas per item (≥ 1; 1 disables bundling gains).
    pub replication: usize,
    /// Placement scheme.
    pub placement: PlacementKind,
    /// Hash family used by the placement scheme.
    pub hash: HashKind,
    /// Seed for all hashing; every client must share it (it is the entire
    /// "configuration information" RnB needs beyond memcached's).
    pub seed: u64,
    /// Route single-item transactions to the item's distinguished copy
    /// ("whenever an item is not bundled, we access its distinguished copy
    /// in order not to pollute other server caches", §III-C1).
    pub single_item_to_distinguished: bool,
}

impl RnbConfig {
    /// A default-policy config: RCH placement, xxHash64, seed 0x52_6e_42
    /// ("RnB"), distinguished-copy routing on.
    ///
    /// ```
    /// use rnb_core::{PlacementKind, RnbConfig};
    /// let config = RnbConfig::new(16, 4);
    /// assert_eq!(config.servers, 16);
    /// assert_eq!(config.replication, 4);
    /// assert_eq!(config.placement, PlacementKind::Rch);
    /// ```
    pub fn new(servers: usize, replication: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        assert!(replication >= 1, "replication must be >= 1");
        RnbConfig {
            servers,
            replication,
            placement: PlacementKind::Rch,
            hash: HashKind::XxHash64,
            seed: 0x52_6e_42,
            single_item_to_distinguished: true,
        }
    }

    /// Builder-style: set the placement kind.
    ///
    /// ```
    /// use rnb_core::{PlacementKind, RnbConfig};
    /// let config = RnbConfig::new(8, 3).with_placement(PlacementKind::MultiHash);
    /// assert_eq!(config.placement, PlacementKind::MultiHash);
    /// ```
    pub fn with_placement(mut self, kind: PlacementKind) -> Self {
        self.placement = kind;
        self
    }

    /// Builder-style: set the hash family.
    ///
    /// ```
    /// use rnb_core::RnbConfig;
    /// use rnb_hash::HashKind;
    /// let config = RnbConfig::new(8, 3).with_hash(HashKind::Murmur3);
    /// assert_eq!(config.hash, HashKind::Murmur3);
    /// ```
    pub fn with_hash(mut self, hash: HashKind) -> Self {
        self.hash = hash;
        self
    }

    /// Builder-style: set the seed.
    ///
    /// ```
    /// use rnb_core::RnbConfig;
    /// let config = RnbConfig::new(8, 3).with_seed(99);
    /// assert_eq!(config.seed, 99);
    /// ```
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: toggle distinguished-copy routing of single-item
    /// transactions.
    ///
    /// ```
    /// use rnb_core::RnbConfig;
    /// let config = RnbConfig::new(8, 3).with_single_item_to_distinguished(false);
    /// assert!(!config.single_item_to_distinguished);
    /// ```
    pub fn with_single_item_to_distinguished(mut self, on: bool) -> Self {
        self.single_item_to_distinguished = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = RnbConfig::new(8, 3)
            .with_placement(PlacementKind::MultiHash)
            .with_hash(HashKind::Murmur3)
            .with_seed(99)
            .with_single_item_to_distinguished(false);
        assert_eq!(c.servers, 8);
        assert_eq!(c.replication, 3);
        assert_eq!(c.placement, PlacementKind::MultiHash);
        assert_eq!(c.hash, HashKind::Murmur3);
        assert_eq!(c.seed, 99);
        assert!(!c.single_item_to_distinguished);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        RnbConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "replication must be >= 1")]
    fn zero_replication_rejected() {
        RnbConfig::new(4, 0);
    }
}
