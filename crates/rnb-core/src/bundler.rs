//! The bundling planner: request → minimal set of per-server transactions.

use crate::config::RnbConfig;
use crate::placement::PlacementStrategy;
use crate::plan::{FetchPlan, Transaction};
use rnb_cover::{CoverTarget, Planner};
use rnb_hash::{ItemId, Placement, ServerId};

/// Reusable per-caller planning state: every buffer the bundler needs to
/// turn a raw request into a [`FetchPlan`] — the dedup'd item list, the
/// flat candidate table, and the cover [`Planner`]'s pooled scratch.
///
/// Hold one per planning thread (the simulator keeps one per
/// `SimCluster`, the client one per `RnbClient`) and pass it to the
/// `*_into`/`*_with` planning entry points; after the first request of a
/// given shape, planning performs no steady-state allocations (see
/// `rnb-cover/tests/zero_alloc.rs` and the `planner` bench).
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Sorted, dedup'd request items; cover item index `i` = `items[i]`.
    items: Vec<ItemId>,
    /// Per-item replica lookup buffer.
    replicas: Vec<ServerId>,
    /// Flat candidate table: item `i`'s candidate servers are
    /// `cand_flat[cand_off[i]..cand_off[i + 1]]`.
    cand_flat: Vec<u32>,
    cand_off: Vec<u32>,
    /// The pooled cover solver.
    planner: Planner,
}

impl PlanScratch {
    /// Empty pools; the first planned request grows them.
    ///
    /// ```
    /// use rnb_core::{Bundler, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 4));
    /// let mut scratch = PlanScratch::new();
    /// // Later requests of similar shape reuse the warmed buffers.
    /// let plan = bundler.plan_with(&mut scratch, &[1, 2, 3]);
    /// assert_eq!(plan.planned_items(), 3);
    /// ```
    pub fn new() -> Self {
        Self::default()
    }
}

/// Plans multi-get requests over a replica placement.
///
/// Owns the placement (placements are cheap, stateless tables) and is
/// itself stateless across requests — RnB is "a stateless, distributed
/// algorithm" (§I-C); two bundlers with the same config produce identical
/// plans.
pub struct Bundler<P: Placement = PlacementStrategy> {
    placement: P,
    single_item_to_distinguished: bool,
}

impl Bundler<PlacementStrategy> {
    /// Build a bundler for the deployment described by `config`.
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 4));
    /// assert!(bundler.plan(&[1, 2, 3]).tpr() <= 3);
    /// ```
    pub fn from_config(config: &RnbConfig) -> Self {
        Bundler {
            placement: PlacementStrategy::from_config(config),
            single_item_to_distinguished: config.single_item_to_distinguished,
        }
    }
}

impl<P: Placement> Bundler<P> {
    /// Build over an explicit placement with default policies.
    ///
    /// ```
    /// use rnb_core::{Bundler, PlacementStrategy};
    /// let bundler = Bundler::new(PlacementStrategy::no_replication(8, 0));
    /// assert_eq!(bundler.placement().name(), "rch");
    /// ```
    pub fn new(placement: P) -> Self {
        Bundler {
            placement,
            single_item_to_distinguished: true,
        }
    }

    /// Toggle routing of single-item transactions to the distinguished
    /// copy (§III-C1).
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 4))
    ///     .with_single_item_to_distinguished(false);
    /// // A lone item is now fetched from whichever replica the cover picks.
    /// assert_eq!(bundler.plan(&[7]).tpr(), 1);
    /// ```
    pub fn with_single_item_to_distinguished(mut self, on: bool) -> Self {
        self.single_item_to_distinguished = on;
        self
    }

    /// The placement in use.
    pub fn placement(&self) -> &P {
        &self.placement
    }

    /// Plan a full fetch of `request` (duplicates ignored).
    ///
    /// One-shot convenience over a throwaway [`PlanScratch`]; hot loops
    /// should hold a scratch and use [`Bundler::plan_into`] /
    /// [`Bundler::plan_with`] so pooled buffers are reused.
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 4));
    /// let plan = bundler.plan(&[10, 20, 30, 40]);
    /// assert_eq!(plan.planned_items(), 4); // every distinct item fetched
    /// assert!(plan.tpr() <= 4);            // bundling never adds round-trips
    /// ```
    pub fn plan(&self, request: &[ItemId]) -> FetchPlan {
        self.plan_with(&mut PlanScratch::new(), request)
    }

    /// Plan a LIMIT fetch: at least `min_items` of `request` (§III-F).
    /// `min_items` is clamped to the number of distinct requested items.
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 2));
    /// let request: Vec<u64> = (0..40).collect();
    /// let plan = bundler.plan_limit(&request, 20);
    /// assert!(plan.planned_items() >= 20);
    /// assert!(plan.tpr() <= bundler.plan(&request).tpr());
    /// ```
    pub fn plan_limit(&self, request: &[ItemId], min_items: usize) -> FetchPlan {
        self.plan_limit_with(&mut PlanScratch::new(), request, min_items)
    }

    /// Plan a deadline fetch: as many of `request`'s items as at most
    /// `max_transactions` server round-trips can carry — the paper's
    /// second LIMIT form, "fetch as many items as possible out of the
    /// following list within X milliseconds" (§III-F): per-transaction
    /// latency dominates, so a deadline is a transaction budget.
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    /// let request: Vec<u64> = (0..60).collect();
    /// let plan = bundler.plan_budget(&request, 2);
    /// assert!(plan.tpr() <= 2);            // the cap is honoured…
    /// assert!(plan.planned_items() > 2);   // …and each round-trip bundles
    /// ```
    pub fn plan_budget(&self, request: &[ItemId], max_transactions: usize) -> FetchPlan {
        self.plan_budget_with(&mut PlanScratch::new(), request, max_transactions)
    }

    /// [`Bundler::plan`] reusing `scratch`'s pooled buffers.
    ///
    /// ```
    /// use rnb_core::{Bundler, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    /// let mut scratch = PlanScratch::new();
    /// // A reused scratch is invisible in the output.
    /// let pooled = bundler.plan_with(&mut scratch, &[1, 2, 3]);
    /// assert_eq!(pooled.transactions, bundler.plan(&[1, 2, 3]).transactions);
    /// ```
    pub fn plan_with(&self, scratch: &mut PlanScratch, request: &[ItemId]) -> FetchPlan {
        let mut out = FetchPlan::default();
        self.plan_into(scratch, request, &mut out);
        out
    }

    /// [`Bundler::plan_limit`] reusing `scratch`'s pooled buffers.
    ///
    /// ```
    /// use rnb_core::{Bundler, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 2));
    /// let mut scratch = PlanScratch::new();
    /// let request: Vec<u64> = (0..30).collect();
    /// let plan = bundler.plan_limit_with(&mut scratch, &request, 10);
    /// assert!(plan.planned_items() >= 10);
    /// ```
    pub fn plan_limit_with(
        &self,
        scratch: &mut PlanScratch,
        request: &[ItemId],
        min_items: usize,
    ) -> FetchPlan {
        let mut out = FetchPlan::default();
        self.plan_limit_into(scratch, request, min_items, &mut out);
        out
    }

    /// [`Bundler::plan_budget`] reusing `scratch`'s pooled buffers.
    ///
    /// ```
    /// use rnb_core::{Bundler, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    /// let mut scratch = PlanScratch::new();
    /// let request: Vec<u64> = (0..30).collect();
    /// let plan = bundler.plan_budget_with(&mut scratch, &request, 3);
    /// assert!(plan.tpr() <= 3);
    /// ```
    pub fn plan_budget_with(
        &self,
        scratch: &mut PlanScratch,
        request: &[ItemId],
        max_transactions: usize,
    ) -> FetchPlan {
        let mut out = FetchPlan::default();
        self.plan_budget_into(scratch, request, max_transactions, &mut out);
        out
    }

    /// Fully pooled [`Bundler::plan`]: overwrites `out` in place, reusing
    /// its transaction buffers. With a warmed `scratch` and an `out` of
    /// stable shape, planning makes zero allocator calls.
    ///
    /// ```
    /// use rnb_core::{Bundler, FetchPlan, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    /// let mut scratch = PlanScratch::new();
    /// let mut out = FetchPlan::default();
    /// for round in 0..3u64 {
    ///     // Same buffers every round; `out` is overwritten in place.
    ///     bundler.plan_into(&mut scratch, &[round, round + 1], &mut out);
    ///     assert_eq!(out.planned_items(), 2);
    /// }
    /// ```
    pub fn plan_into(&self, scratch: &mut PlanScratch, request: &[ItemId], out: &mut FetchPlan) {
        self.plan_target_into(scratch, request, Target::Full, out);
    }

    /// Fully pooled [`Bundler::plan_limit`]; see [`Bundler::plan_into`].
    ///
    /// ```
    /// use rnb_core::{Bundler, FetchPlan, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 2));
    /// let (mut scratch, mut out) = (PlanScratch::new(), FetchPlan::default());
    /// let request: Vec<u64> = (0..30).collect();
    /// bundler.plan_limit_into(&mut scratch, &request, 10, &mut out);
    /// assert!(out.planned_items() >= 10);
    /// ```
    pub fn plan_limit_into(
        &self,
        scratch: &mut PlanScratch,
        request: &[ItemId],
        min_items: usize,
        out: &mut FetchPlan,
    ) {
        self.plan_target_into(scratch, request, Target::AtLeast(min_items), out);
    }

    /// Fully pooled [`Bundler::plan_budget`]; see [`Bundler::plan_into`].
    ///
    /// ```
    /// use rnb_core::{Bundler, FetchPlan, PlanScratch, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    /// let (mut scratch, mut out) = (PlanScratch::new(), FetchPlan::default());
    /// let request: Vec<u64> = (0..30).collect();
    /// bundler.plan_budget_into(&mut scratch, &request, 3, &mut out);
    /// assert!(out.tpr() <= 3);
    /// ```
    pub fn plan_budget_into(
        &self,
        scratch: &mut PlanScratch,
        request: &[ItemId],
        max_transactions: usize,
        out: &mut FetchPlan,
    ) {
        self.plan_target_into(scratch, request, Target::MaxTxns(max_transactions), out);
    }

    fn plan_target_into(
        &self,
        scratch: &mut PlanScratch,
        request: &[ItemId],
        target: Target,
        out: &mut FetchPlan,
    ) {
        let PlanScratch {
            items,
            replicas,
            cand_flat,
            cand_off,
            planner,
        } = scratch;
        items.clear();
        items.extend_from_slice(request);
        items.sort_unstable();
        items.dedup();
        let requested = items.len();
        out.requested = requested;

        if items.is_empty() {
            out.transactions.clear();
            return;
        }

        // Fast path: one item → its distinguished copy, no cover needed.
        if requested == 1 {
            if matches!(target, Target::AtLeast(0) | Target::MaxTxns(0)) {
                out.transactions.clear();
                return;
            }
            let server = if self.single_item_to_distinguished {
                self.placement.distinguished(items[0])
            } else {
                self.placement.replicas_into(items[0], replicas);
                replicas[0]
            };
            let slot = txn_slot(&mut out.transactions, 0, server);
            slot.push(items[0]);
            out.transactions.truncate(1);
            return;
        }

        // Flat candidate table: cand_flat[cand_off[i]..cand_off[i+1]] =
        // replica servers of items[i]. Fed straight to the planner — no
        // CoverInstance, no per-item Vec.
        cand_flat.clear();
        cand_off.clear();
        cand_off.push(0);
        for &item in items.iter() {
            self.placement.replicas_into(item, replicas);
            cand_flat.extend_from_slice(replicas);
            cand_off.push(cand_flat.len() as u32);
        }
        let cover_target = match target {
            Target::Full => CoverTarget::Full,
            Target::AtLeast(k) => CoverTarget::AtLeast(k.min(requested)),
            Target::MaxTxns(t) => CoverTarget::MaxPicks(t),
        };
        let cover = planner.solve_flat_candidates(cand_off, cand_flat, cover_target);

        let mut n = 0usize;
        for pick in cover.picks() {
            let slot = txn_slot(&mut out.transactions, n, pick.label);
            slot.extend(pick.items.iter().map(|&idx| items[idx as usize]));
            n += 1;
        }
        out.transactions.truncate(n);

        // §III-C1: a transaction that ended up with a single item is
        // redirected to that item's distinguished copy, then transactions
        // to the same server are re-merged (redirection may create pairs).
        if self.single_item_to_distinguished {
            let mut changed = false;
            for t in out.transactions.iter_mut() {
                if t.items.len() == 1 {
                    let d = self.placement.distinguished(t.items[0]);
                    if d != t.server {
                        t.server = d;
                        changed = true;
                    }
                }
            }
            if changed {
                merge_by_server(&mut out.transactions);
            }
        }
    }
}

/// Reuse (or create) transaction slot `idx` of `transactions` for
/// `server`, returning its cleared item buffer — the pooled counterpart of
/// pushing a fresh `Transaction`.
fn txn_slot(transactions: &mut Vec<Transaction>, idx: usize, server: ServerId) -> &mut Vec<ItemId> {
    if idx == transactions.len() {
        transactions.push(Transaction {
            server,
            items: Vec::new(),
        });
    } else {
        transactions[idx].server = server;
        transactions[idx].items.clear();
    }
    &mut transactions[idx].items
}

/// Internal planning target (maps onto [`CoverTarget`]).
#[derive(Clone, Copy, Debug)]
enum Target {
    Full,
    AtLeast(usize),
    MaxTxns(usize),
}

/// Merge transactions targeting the same server in place, preserving
/// first-seen order of servers. Items of a merged-away transaction are
/// appended (moved, not copied) onto the first transaction for that
/// server.
fn merge_by_server(transactions: &mut Vec<Transaction>) {
    let mut kept = 0usize;
    for i in 0..transactions.len() {
        let server = transactions[i].server;
        if let Some(m) = transactions[..kept].iter().position(|m| m.server == server) {
            let (head, tail) = transactions.split_at_mut(i);
            head[m].items.append(&mut tail[0].items);
        } else {
            transactions.swap(kept, i);
            kept += 1;
        }
    }
    transactions.truncate(kept);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementKind;
    use proptest::prelude::*;

    fn bundler(servers: usize, replication: usize) -> Bundler {
        Bundler::from_config(&RnbConfig::new(servers, replication))
    }

    #[test]
    fn plan_covers_all_items_once() {
        let b = bundler(16, 4);
        let request: Vec<ItemId> = (0..50).collect();
        let plan = b.plan(&request);
        let mut fetched: Vec<ItemId> = plan.assignment().map(|(i, _)| i).collect();
        fetched.sort_unstable();
        assert_eq!(fetched, request, "every item fetched exactly once");
        assert_eq!(plan.distinct_servers(), plan.tpr());
    }

    #[test]
    fn items_fetched_from_their_replicas() {
        let b = bundler(16, 3);
        let request: Vec<ItemId> = (100..160).collect();
        let plan = b.plan(&request);
        for (item, server) in plan.assignment() {
            let reps = b.placement().replicas(item);
            assert!(
                reps.contains(&server) || b.placement().distinguished(item) == server,
                "item {item} fetched from non-replica server {server}"
            );
        }
    }

    #[test]
    fn duplicates_deduped() {
        let b = bundler(8, 2);
        let plan = b.plan(&[5, 5, 5, 7, 7]);
        assert_eq!(plan.requested, 2);
        assert_eq!(plan.planned_items(), 2);
    }

    #[test]
    fn empty_request() {
        let b = bundler(8, 2);
        let plan = b.plan(&[]);
        assert_eq!(plan.tpr(), 0);
        assert_eq!(plan.requested, 0);
    }

    #[test]
    fn single_item_goes_to_distinguished() {
        let b = bundler(16, 4);
        for item in 0..200u64 {
            let plan = b.plan(&[item]);
            assert_eq!(plan.tpr(), 1);
            assert_eq!(
                plan.transactions[0].server,
                b.placement().distinguished(item)
            );
        }
    }

    #[test]
    fn replication_reduces_tpr_on_average() {
        // The core RnB claim (Fig 6 direction): more replicas → fewer
        // transactions for the same requests.
        let b1 = Bundler::new(PlacementStrategy::no_replication(16, 7));
        let b4 = Bundler::from_config(&RnbConfig::new(16, 4).with_seed(7));
        let mut tpr1 = 0usize;
        let mut tpr4 = 0usize;
        for r in 0..200u64 {
            let request: Vec<ItemId> = (0..30).map(|i| r * 1000 + i * 13).collect();
            tpr1 += b1.plan(&request).tpr();
            tpr4 += b4.plan(&request).tpr();
        }
        assert!(
            (tpr4 as f64) < 0.7 * tpr1 as f64,
            "4 replicas should cut TPR well below no-replication: {tpr4} vs {tpr1}"
        );
    }

    #[test]
    fn limit_plans_fetch_enough_but_not_necessarily_all() {
        let b = bundler(16, 1);
        let request: Vec<ItemId> = (0..40).collect();
        let full = b.plan(&request);
        let limited = b.plan_limit(&request, 20);
        assert!(limited.planned_items() >= 20);
        assert!(limited.tpr() <= full.tpr());
        // With no replication on 16 servers, dropping half the items must
        // save transactions (greedy drops the most expensive singletons).
        assert!(
            limited.tpr() < full.tpr(),
            "LIMIT did not save transactions"
        );
    }

    #[test]
    fn limit_clamped_to_request_size() {
        let b = bundler(8, 2);
        let request: Vec<ItemId> = (0..10).collect();
        let plan = b.plan_limit(&request, 1000);
        assert_eq!(plan.planned_items(), 10);
    }

    #[test]
    fn limit_zero_is_empty_plan() {
        let b = bundler(8, 2);
        assert_eq!(b.plan_limit(&[1, 2, 3], 0).tpr(), 0);
        assert_eq!(b.plan_limit(&[1], 0).tpr(), 0);
    }

    #[test]
    fn budget_plans_respect_transaction_cap() {
        let b = bundler(16, 3);
        let request: Vec<ItemId> = (0..60).collect();
        let full = b.plan(&request);
        for budget in 0..=full.tpr() + 2 {
            let plan = b.plan_budget(&request, budget);
            assert!(
                plan.tpr() <= budget,
                "budget {budget} exceeded: {}",
                plan.tpr()
            );
            if budget >= full.tpr() {
                assert_eq!(
                    plan.planned_items(),
                    60,
                    "ample budget must fetch everything"
                );
            }
        }
        // A budget of 1 still fetches the single best bundle.
        let one = b.plan_budget(&request, 1);
        assert_eq!(one.tpr(), 1);
        assert!(
            one.planned_items() > 1,
            "one transaction should still bundle"
        );
    }

    #[test]
    fn budget_items_monotone_in_budget() {
        let b = bundler(16, 2);
        let request: Vec<ItemId> = (1000..1050).collect();
        let mut last = 0;
        for budget in 0..10 {
            let got = b.plan_budget(&request, budget).planned_items();
            assert!(
                got >= last,
                "items fetched should not drop as the budget grows"
            );
            last = got;
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let a = bundler(16, 3);
        let b = bundler(16, 3);
        let request: Vec<ItemId> = (0..64).map(|i| i * 7).collect();
        assert_eq!(a.plan(&request).transactions, b.plan(&request).transactions);
    }

    #[test]
    fn large_instances_plan_correctly() {
        // A 256-server cluster with a 300-item request exercises the
        // planner's multi-word dense path and the exhausted-set skip list
        // at scale (this used to be the lazy-greedy switchover regime).
        let b = bundler(256, 3);
        let request: Vec<ItemId> = (0..300).map(|i| i * 31).collect();
        let plan = b.plan(&request);
        assert_eq!(plan.planned_items(), 300);
        let mut items: Vec<ItemId> = plan.assignment().map(|(i, _)| i).collect();
        items.sort_unstable();
        let mut expect = request.clone();
        expect.sort_unstable();
        assert_eq!(items, expect);
        // Identical plans across calls (determinism through the planner).
        assert_eq!(plan.transactions, b.plan(&request).transactions);
    }

    /// A reused scratch must be invisible in the output: `plan_with` on a
    /// warm scratch equals a fresh one-shot `plan`, for every target kind,
    /// across interleaved shapes.
    #[test]
    fn scratch_reuse_matches_one_shot_plans() {
        let b = bundler(16, 3);
        let mut scratch = PlanScratch::new();
        let requests: Vec<Vec<ItemId>> = vec![
            (0..40).collect(),
            vec![7],
            (100..103).collect(),
            vec![],
            (0..40).map(|i| i * 9).collect(),
        ];
        for request in &requests {
            let full = b.plan_with(&mut scratch, request);
            assert_eq!(full.transactions, b.plan(request).transactions);
            let lim = b.plan_limit_with(&mut scratch, request, 10);
            assert_eq!(lim.transactions, b.plan_limit(request, 10).transactions);
            let bud = b.plan_budget_with(&mut scratch, request, 3);
            assert_eq!(bud.transactions, b.plan_budget(request, 3).transactions);
        }
        // plan_into reuses the output plan's transaction buffers too.
        let mut out = FetchPlan::default();
        for request in &requests {
            b.plan_into(&mut scratch, request, &mut out);
            let fresh = b.plan(request);
            assert_eq!(out.transactions, fresh.transactions);
            assert_eq!(out.requested, fresh.requested);
        }
    }

    #[test]
    fn merge_by_server_preserves_order_and_items() {
        let mut ts = vec![
            Transaction {
                server: 2,
                items: vec![1],
            },
            Transaction {
                server: 5,
                items: vec![2],
            },
            Transaction {
                server: 2,
                items: vec![3],
            },
        ];
        merge_by_server(&mut ts);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].server, 2);
        assert_eq!(ts[0].items, vec![1, 3]);
        assert_eq!(ts[1].server, 5);
    }

    #[test]
    fn all_placement_kinds_plan_correctly() {
        for kind in [
            PlacementKind::Rch,
            PlacementKind::MultiHash,
            PlacementKind::Rendezvous,
        ] {
            let b = Bundler::from_config(&RnbConfig::new(12, 3).with_placement(kind));
            let request: Vec<ItemId> = (0..25).collect();
            let plan = b.plan(&request);
            assert_eq!(plan.planned_items(), 25, "{kind:?}");
            assert!(plan.tpr() <= 12);
        }
    }

    proptest! {
        /// Full plans fetch each distinct item exactly once, from a valid
        /// replica, using at most min(M, N) transactions.
        #[test]
        fn plan_invariants(
            request in proptest::collection::vec(0u64..10_000, 0..80),
            replication in 1usize..5,
        ) {
            let b = bundler(16, replication);
            let plan = b.plan(&request);
            let mut distinct = request.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(plan.requested, distinct.len());
            prop_assert_eq!(plan.planned_items(), distinct.len());
            prop_assert!(plan.tpr() <= distinct.len().min(16));
            prop_assert_eq!(plan.distinct_servers(), plan.tpr());
        }

        /// LIMIT plans never use more transactions than the full plan and
        /// always reach the (clamped) limit.
        #[test]
        fn limit_invariants(
            request in proptest::collection::vec(0u64..10_000, 1..60),
            limit in 0usize..70,
            replication in 1usize..4,
        ) {
            let b = bundler(16, replication);
            let full = b.plan(&request);
            let lim = b.plan_limit(&request, limit);
            prop_assert!(lim.tpr() <= full.tpr());
            prop_assert!(lim.planned_items() >= limit.min(full.requested));
        }
    }
}
