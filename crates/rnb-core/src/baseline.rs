//! Full-system replication — the industry baseline the paper compares
//! against (§II-C, solution 3, reported by Facebook):
//!
//! > "replication of every memcached in its entirety — both hardware and
//! > data, with the clients randomly picking one of the server replicas
//! > for each transaction."
//!
//! We model it at *equal total hardware*: `servers` machines are split
//! into `copies` groups; every group stores the whole data set (so memory
//! per item is `copies`×), and each request is served entirely by one
//! group chosen by the caller (round-robin or random — a `selector` value
//! the caller supplies keeps this crate rng-free and deterministic).
//! Within a group, plain consistent hashing applies. This is the "you get
//! exactly what you pay for" scheme: `k` copies → `k`-fold throughput,
//! never more.

use crate::plan::{FetchPlan, Transaction};
use rnb_hash::rch::RangedConsistentHash;
use rnb_hash::{HashKind, ItemId, Placement, ServerId};

/// Full-system replication planner over `copies` complete copies of the
/// data set.
pub struct FullSystemReplication {
    /// One single-copy ring per group; group `g` occupies global server
    /// ids `g * group_size .. (g+1) * group_size`.
    groups: Vec<RangedConsistentHash>,
    group_size: usize,
}

impl FullSystemReplication {
    /// Split `servers` machines into `copies` equal groups. `servers` must
    /// be divisible by `copies` (the scheme "only permits system
    /// enlargement in relatively large strides" — the paper's words).
    ///
    /// ```
    /// use rnb_core::FullSystemReplication;
    /// let fsr = FullSystemReplication::new(16, 4, 1);
    /// assert_eq!(fsr.copies(), 4);
    /// assert_eq!(fsr.servers(), 16);
    /// ```
    pub fn new(servers: usize, copies: usize, seed: u64) -> Self {
        assert!(copies >= 1, "need at least one copy");
        assert!(
            servers.is_multiple_of(copies) && servers >= copies,
            "full-system replication needs servers ({servers}) divisible by copies ({copies})"
        );
        let group_size = servers / copies;
        let groups = (0..copies)
            .map(|g| {
                // Every group hashes identically (same seed): a group is a
                // byte-for-byte copy of the original system.
                let _ = g;
                RangedConsistentHash::new(group_size, 1, HashKind::XxHash64, seed)
            })
            .collect();
        FullSystemReplication { groups, group_size }
    }

    /// Number of complete data copies.
    pub fn copies(&self) -> usize {
        self.groups.len()
    }

    /// Total servers across all groups.
    pub fn servers(&self) -> usize {
        self.group_size * self.groups.len()
    }

    /// Plan `request` against the group selected by `selector` (callers
    /// pass a request counter for round-robin or a random draw; taken
    /// modulo the number of copies).
    ///
    /// ```
    /// use rnb_core::FullSystemReplication;
    /// let fsr = FullSystemReplication::new(8, 2, 1);
    /// let request: Vec<u64> = (0..20).collect();
    /// let plan = fsr.plan(&request, 0);
    /// assert_eq!(plan.planned_items(), 20);
    /// // Selector 0 picks group 0, which owns servers 0..4.
    /// assert!(plan.transactions.iter().all(|t| t.server < 4));
    /// ```
    pub fn plan(&self, request: &[ItemId], selector: u64) -> FetchPlan {
        let g = (selector % self.groups.len() as u64) as usize;
        let ring = &self.groups[g];
        let base = (g * self.group_size) as ServerId;

        let mut items: Vec<ItemId> = request.to_vec();
        items.sort_unstable();
        items.dedup();
        let requested = items.len();

        // Group items by owning server within the chosen copy.
        let mut transactions: Vec<Transaction> = Vec::new();
        for item in items {
            let server = base + ring.distinguished(item);
            match transactions.iter_mut().find(|t| t.server == server) {
                Some(t) => t.items.push(item),
                None => transactions.push(Transaction {
                    server,
                    items: vec![item],
                }),
            }
        }
        FetchPlan {
            transactions,
            requested,
        }
    }

    /// All replica locations of `item` (one per group) — what a write
    /// must update.
    ///
    /// ```
    /// use rnb_core::FullSystemReplication;
    /// let fsr = FullSystemReplication::new(12, 3, 5);
    /// let ws = fsr.write_set(42);
    /// // One location per complete copy, one inside each group of 4.
    /// assert_eq!(ws.len(), 3);
    /// for (group, &server) in ws.iter().enumerate() {
    ///     assert_eq!(server / 4, group as u32);
    /// }
    /// ```
    pub fn write_set(&self, item: ItemId) -> Vec<ServerId> {
        self.groups
            .iter()
            .enumerate()
            .map(|(g, ring)| (g * self.group_size) as ServerId + ring.distinguished(item))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_servers() {
        let fsr = FullSystemReplication::new(16, 4, 1);
        assert_eq!(fsr.copies(), 4);
        assert_eq!(fsr.servers(), 16);
        for sel in 0..4u64 {
            let plan = fsr.plan(&(0..50).collect::<Vec<_>>(), sel);
            let lo = (sel as u32) * 4;
            for t in &plan.transactions {
                assert!((lo..lo + 4).contains(&t.server), "txn escaped its group");
            }
        }
    }

    #[test]
    fn same_request_same_group_is_deterministic() {
        let fsr = FullSystemReplication::new(8, 2, 3);
        let req: Vec<ItemId> = (0..20).collect();
        assert_eq!(
            fsr.plan(&req, 0).transactions,
            fsr.plan(&req, 2).transactions
        );
    }

    #[test]
    fn groups_are_identical_copies() {
        // The same item maps to the same within-group server in every
        // group.
        let fsr = FullSystemReplication::new(12, 3, 5);
        for item in 0..100u64 {
            let ws = fsr.write_set(item);
            assert_eq!(ws.len(), 3);
            let within: Vec<u32> = ws
                .iter()
                .enumerate()
                .map(|(g, &s)| s - (g as u32) * 4)
                .collect();
            assert!(
                within.windows(2).all(|w| w[0] == w[1]),
                "copies diverge for {item}"
            );
        }
    }

    #[test]
    fn tpr_unaffected_by_copies() {
        // The defining weakness: each request still scatters over a whole
        // group, so TPR is that of an N/k-server system — copies buy
        // capacity, not bundling.
        let single = FullSystemReplication::new(4, 1, 9);
        let quad = FullSystemReplication::new(16, 4, 9);
        let req: Vec<ItemId> = (0..100).collect();
        assert_eq!(single.plan(&req, 0).tpr(), quad.plan(&req, 1).tpr());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn indivisible_split_rejected() {
        FullSystemReplication::new(10, 3, 0);
    }

    #[test]
    fn plan_fetches_every_item_once() {
        let fsr = FullSystemReplication::new(8, 2, 7);
        let req: Vec<ItemId> = (0..33).collect();
        let plan = fsr.plan(&req, 1);
        let mut got: Vec<ItemId> = plan.assignment().map(|(i, _)| i).collect();
        got.sort_unstable();
        assert_eq!(got, req);
    }
}
