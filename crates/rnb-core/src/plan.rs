//! Fetch plans: the output of bundling.

use rnb_hash::{ItemId, ServerId};

/// One server round-trip: a multi-get of `items` sent to `server`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transaction {
    /// Target server.
    pub server: ServerId,
    /// Items fetched in this transaction (the items the planner *assigned*
    /// here; hitchhikers are added later by the execution layer).
    pub items: Vec<ItemId>,
}

/// A plan for satisfying one request: the set of transactions to issue.
#[derive(Debug, Clone, Default)]
pub struct FetchPlan {
    /// Transactions in pick order (greedy order: largest bundle first,
    /// modulo post-processing).
    pub transactions: Vec<Transaction>,
    /// Number of distinct items in the original request.
    pub requested: usize,
}

impl FetchPlan {
    /// Transactions Per Request contributed by this plan — the paper's
    /// central metric (before miss handling adds second-round
    /// transactions).
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 4));
    /// let plan = bundler.plan(&[1, 2, 3, 4, 5]);
    /// assert_eq!(plan.tpr(), plan.transactions.len());
    /// assert!(plan.tpr() <= 5);
    /// ```
    pub fn tpr(&self) -> usize {
        self.transactions.len()
    }

    /// Total items the plan fetches (≤ `requested` for LIMIT plans).
    ///
    /// ```
    /// use rnb_core::{FetchPlan, Transaction};
    /// let plan = FetchPlan {
    ///     transactions: vec![
    ///         Transaction { server: 3, items: vec![10, 11, 12] },
    ///         Transaction { server: 0, items: vec![13] },
    ///     ],
    ///     requested: 4,
    /// };
    /// assert_eq!(plan.planned_items(), 4);
    /// ```
    pub fn planned_items(&self) -> usize {
        self.transactions.iter().map(|t| t.items.len()).sum()
    }

    /// Distinct servers contacted (equals `tpr()` by construction; kept as
    /// an invariant check for tests).
    ///
    /// ```
    /// use rnb_core::{Bundler, RnbConfig};
    /// let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    /// let plan = bundler.plan(&[7, 8, 9]);
    /// assert_eq!(plan.distinct_servers(), plan.tpr());
    /// ```
    pub fn distinct_servers(&self) -> usize {
        let mut s: Vec<ServerId> = self.transactions.iter().map(|t| t.server).collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// Histogram of items-per-transaction; index `i` counts transactions
    /// carrying exactly `i` items. Used by the calibration layer to turn
    /// plans into throughput estimates (paper Appendix).
    ///
    /// ```
    /// use rnb_core::{FetchPlan, Transaction};
    /// let plan = FetchPlan {
    ///     transactions: vec![
    ///         Transaction { server: 3, items: vec![10, 11, 12] },
    ///         Transaction { server: 0, items: vec![13] },
    ///     ],
    ///     requested: 4,
    /// };
    /// // One 1-item transaction, one 3-item transaction.
    /// assert_eq!(plan.txn_size_histogram(), vec![0, 1, 0, 1]);
    /// ```
    pub fn txn_size_histogram(&self) -> Vec<usize> {
        let max = self
            .transactions
            .iter()
            .map(|t| t.items.len())
            .max()
            .unwrap_or(0);
        let mut hist = vec![0usize; max + 1];
        for t in &self.transactions {
            hist[t.items.len()] += 1;
        }
        hist
    }

    /// The server each planned item was assigned to.
    ///
    /// ```
    /// use rnb_core::{FetchPlan, Transaction};
    /// let plan = FetchPlan {
    ///     transactions: vec![
    ///         Transaction { server: 3, items: vec![10, 11] },
    ///         Transaction { server: 0, items: vec![13] },
    ///     ],
    ///     requested: 3,
    /// };
    /// let pairs: Vec<_> = plan.assignment().collect();
    /// assert_eq!(pairs, vec![(10, 3), (11, 3), (13, 0)]);
    /// ```
    pub fn assignment(&self) -> impl Iterator<Item = (ItemId, ServerId)> + '_ {
        self.transactions
            .iter()
            .flat_map(|t| t.items.iter().map(move |&i| (i, t.server)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FetchPlan {
        FetchPlan {
            transactions: vec![
                Transaction {
                    server: 3,
                    items: vec![10, 11, 12],
                },
                Transaction {
                    server: 0,
                    items: vec![13],
                },
            ],
            requested: 4,
        }
    }

    #[test]
    fn metrics() {
        let p = plan();
        assert_eq!(p.tpr(), 2);
        assert_eq!(p.planned_items(), 4);
        assert_eq!(p.distinct_servers(), 2);
        assert_eq!(p.txn_size_histogram(), vec![0, 1, 0, 1]);
    }

    #[test]
    fn assignment_pairs() {
        let p = plan();
        let pairs: Vec<_> = p.assignment().collect();
        assert_eq!(pairs, vec![(10, 3), (11, 3), (12, 3), (13, 0)]);
    }

    #[test]
    fn empty_plan() {
        let p = FetchPlan::default();
        assert_eq!(p.tpr(), 0);
        assert_eq!(p.planned_items(), 0);
        assert_eq!(p.txn_size_histogram(), vec![0]);
    }
}
