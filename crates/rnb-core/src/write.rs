//! Write-path planning: replica updates, invalidation, and the paper's
//! atomic-operation scheme (§IV).
//!
//! Reads are RnB's fast path; writes must deal with the replicas:
//!
//! * §III-G: "During write access, RnB requires updating multiple
//!   replicas. However, when replication is required for reasons such as
//!   reliability, RnB does not further increase the write complexity."
//! * §IV: "we proposed schemes for atomic operations in an RnB enabled
//!   memcached system. For example, remove all but the distinguished
//!   copies of an item before modifying it, then let RnB-memcached create
//!   the new copies on demand, after the atomic operation completes."

use crate::plan::Transaction;
use rnb_hash::{ItemId, Placement, ServerId};

/// How a write propagates to an item's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Update every logical replica in place — one `set` per replica
    /// server. Simple, keeps replicas warm, but a concurrent multi-server
    /// update is not atomic.
    WriteAll,
    /// The §IV atomic scheme: first *delete* the non-distinguished
    /// copies, then update the distinguished copy. Readers can never see
    /// a stale replica (it is gone before the new value lands); the
    /// bundler's miss path recreates replicas on demand via write-back.
    InvalidateThenWrite,
}

/// The server operations one write expands to, in issue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// The written item.
    pub item: ItemId,
    /// `delete` transactions to issue first (empty for
    /// [`WritePolicy::WriteAll`]).
    pub invalidations: Vec<Transaction>,
    /// `set` transactions to issue after the invalidations complete.
    pub writes: Vec<Transaction>,
}

impl WritePlan {
    /// Total server transactions this write costs.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::WriteAll,
    /// );
    /// // Four replicas → four `set` transactions, no invalidations.
    /// assert_eq!(planner.plan_write(7).total_txns(), 4);
    /// ```
    pub fn total_txns(&self) -> usize {
        self.invalidations.len() + self.writes.len()
    }
}

/// Plans writes over a placement. Stateless, like the read-side
/// [`crate::Bundler`].
///
/// ```
/// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
/// let config = RnbConfig::new(16, 4);
/// let planner = WritePlanner::new(
///     PlacementStrategy::from_config(&config),
///     WritePolicy::InvalidateThenWrite,
/// );
/// let plan = planner.plan_write(7);
/// // The §IV atomic scheme: delete the 3 extra replicas, then write the
/// // distinguished copy.
/// assert_eq!(plan.invalidations.len(), 3);
/// assert_eq!(plan.writes.len(), 1);
/// ```
pub struct WritePlanner<P: Placement> {
    placement: P,
    policy: WritePolicy,
}

impl<P: Placement> WritePlanner<P> {
    /// A planner with the given policy.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(8, 2)),
    ///     WritePolicy::WriteAll,
    /// );
    /// assert_eq!(planner.policy(), WritePolicy::WriteAll);
    /// ```
    pub fn new(placement: P, policy: WritePolicy) -> Self {
        WritePlanner { placement, policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The placement in use.
    pub fn placement(&self) -> &P {
        &self.placement
    }

    /// Plan one item write.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::InvalidateThenWrite,
    /// );
    /// // §IV atomic scheme: delete the 3 extra replicas, then write the
    /// // distinguished copy.
    /// let plan = planner.plan_write(7);
    /// assert_eq!(plan.invalidations.len(), 3);
    /// assert_eq!(plan.writes.len(), 1);
    /// ```
    pub fn plan_write(&self, item: ItemId) -> WritePlan {
        let replicas = self.placement.replicas(item);
        match self.policy {
            WritePolicy::WriteAll => WritePlan {
                item,
                invalidations: Vec::new(),
                writes: replicas
                    .into_iter()
                    .map(|server| Transaction {
                        server,
                        items: vec![item],
                    })
                    .collect(),
            },
            WritePolicy::InvalidateThenWrite => WritePlan {
                item,
                invalidations: replicas[1..]
                    .iter()
                    .map(|&server| Transaction {
                        server,
                        items: vec![item],
                    })
                    .collect(),
                writes: vec![Transaction {
                    server: replicas[0],
                    items: vec![item],
                }],
            },
        }
    }

    /// Plan a batch of writes, bundling same-server operations of the
    /// same kind into one transaction each (memcached pipelining; the
    /// delete→write ordering barrier is preserved per batch).
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::WriteAll,
    /// );
    /// let items: Vec<u64> = (0..50).collect();
    /// let batch = planner.plan_write_batch(&items);
    /// // Bundled: at most one write transaction per server, far fewer
    /// // than the 200 unbatched per-replica sets.
    /// assert!(batch.writes.len() <= 16);
    /// ```
    pub fn plan_write_batch(&self, items: &[ItemId]) -> WritePlan {
        let mut distinct: Vec<ItemId> = items.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut invalidations: Vec<Transaction> = Vec::new();
        let mut writes: Vec<Transaction> = Vec::new();
        let push = |list: &mut Vec<Transaction>, server: ServerId, item: ItemId| match list
            .iter_mut()
            .find(|t| t.server == server)
        {
            Some(t) => t.items.push(item),
            None => list.push(Transaction {
                server,
                items: vec![item],
            }),
        };
        for &item in &distinct {
            let single = self.plan_write(item);
            for t in single.invalidations {
                push(&mut invalidations, t.server, item);
            }
            for t in single.writes {
                push(&mut writes, t.server, item);
            }
        }
        WritePlan {
            item: *distinct.first().unwrap_or(&0),
            invalidations,
            writes,
        }
    }
}

/// One server's bundled operations within a [`BatchWritePlan`].
///
/// `ops` holds `(item, batch index)` pairs in batch order; the batch
/// index points back into the caller's `(item, value)` slice so a client
/// can recover each op's payload without the planner ever touching
/// values. Duplicate items keep one op per occurrence, still in batch
/// order, so executing a group front to back matches a per-item write
/// loop exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteGroup {
    /// The server every op in this group targets.
    pub server: ServerId,
    /// `(item, index into the planned batch)` pairs in issue order.
    pub ops: Vec<(ItemId, usize)>,
}

/// A borrowed view of one planned write batch, grouped by server — the
/// pooled counterpart of [`WritePlan`], produced by
/// [`WriteBatchPlanner::plan_batch`].
///
/// Ordering invariant (§IV): a client executing this plan must flush
/// every `invalidations` group — send *and* confirm — before issuing any
/// `writes` group. Replicas are gone before any distinguished copy
/// changes, so no reader can observe a stale replica mid-batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchWritePlan<'a> {
    /// `delete` bursts to flush first (empty under
    /// [`WritePolicy::WriteAll`]).
    pub invalidations: &'a [WriteGroup],
    /// `set` bursts to issue after every invalidation group completes.
    pub writes: &'a [WriteGroup],
}

impl BatchWritePlan<'_> {
    /// Total server transactions the batch costs: one pipelined burst
    /// per group.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WriteBatchPlanner, WritePlanner, WritePolicy};
    /// let writer = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::WriteAll,
    /// );
    /// let mut batcher = WriteBatchPlanner::new();
    /// let plan = batcher.plan_batch(&writer, 0..50);
    /// // Bundled: at most one burst per server, never one per replica op.
    /// assert!(plan.total_txns() <= 16);
    /// assert_eq!(plan.total_ops(), 50 * 4);
    /// ```
    pub fn total_txns(&self) -> usize {
        self.invalidations.len() + self.writes.len()
    }

    /// Total per-item server operations across all groups (what an
    /// unbundled client would pay one transaction each for).
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WriteBatchPlanner, WritePlanner, WritePolicy};
    /// let writer = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::InvalidateThenWrite,
    /// );
    /// let mut batcher = WriteBatchPlanner::new();
    /// // 3 invalidations + 1 distinguished write per item.
    /// assert_eq!(batcher.plan_batch(&writer, 0..10).total_ops(), 40);
    /// ```
    pub fn total_ops(&self) -> usize {
        let ops = |gs: &[WriteGroup]| gs.iter().map(|g| g.ops.len()).sum::<usize>();
        ops(self.invalidations) + ops(self.writes)
    }
}

/// Epoch-stamped per-server group accumulator — the `LabelInterner`
/// discipline from `rnb-cover` applied to server ids. `begin` is an O(1)
/// logical reset; groups and their op vectors keep their capacity across
/// batches, so steady-state planning never allocates.
#[derive(Debug, Default)]
struct GroupSet {
    epoch: u32,
    /// `stamp[server] == epoch` ⇔ the server has a group this batch.
    stamp: Vec<u32>,
    /// Valid when stamped: index into `groups` for the server.
    slot: Vec<u32>,
    groups: Vec<WriteGroup>,
    /// Groups live this batch: `groups[..used]`.
    used: usize,
}

impl GroupSet {
    fn begin(&mut self, epoch: u32, wrapped: bool) {
        if wrapped {
            self.stamp.fill(0);
        }
        self.epoch = epoch;
        self.used = 0;
    }

    fn push(&mut self, server: ServerId, item: ItemId, index: usize) {
        let s = server as usize;
        if s >= self.stamp.len() {
            self.stamp.resize(s + 1, 0);
            self.slot.resize(s + 1, 0);
        }
        let g = if self.stamp[s] == self.epoch {
            self.slot[s] as usize
        } else {
            self.stamp[s] = self.epoch;
            self.slot[s] = self.used as u32;
            if self.used == self.groups.len() {
                self.groups.push(WriteGroup {
                    server,
                    ops: Vec::new(),
                });
            } else {
                self.groups[self.used].server = server;
                self.groups[self.used].ops.clear();
            }
            self.used += 1;
            self.used - 1
        };
        self.groups[g].ops.push((item, index));
    }
}

/// Pooled batch write planner: expands each item of a batch through a
/// [`WritePlanner`] and groups the resulting operations by server, so a
/// client can execute the whole batch as one pipelined burst per touched
/// server instead of one blocking round-trip per replica op.
///
/// All scratch (per-server stamps, group lists, the replica buffer) is
/// owned and reused; after the first batch of a given shape, planning is
/// allocation-free at steady state — the write-side analogue of
/// `rnb-cover`'s pooled read planner.
///
/// ```
/// use rnb_core::{PlacementStrategy, RnbConfig, WriteBatchPlanner, WritePlanner, WritePolicy};
/// let writer = WritePlanner::new(
///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
///     WritePolicy::WriteAll,
/// );
/// let mut batcher = WriteBatchPlanner::new();
/// let plan = batcher.plan_batch(&writer, 0..50u64);
/// assert!(plan.invalidations.is_empty());
/// // Every (item, replica) pair appears exactly once, bundled by server.
/// assert_eq!(plan.total_ops(), 200);
/// assert!(plan.writes.len() <= 16);
/// ```
#[derive(Debug, Default)]
pub struct WriteBatchPlanner {
    epoch: u32,
    invalidations: GroupSet,
    writes: GroupSet,
    replica_buf: Vec<ServerId>,
}

impl WriteBatchPlanner {
    /// An empty planner; pools grow on first use and are reused for
    /// every later batch.
    ///
    /// ```
    /// use rnb_core::WriteBatchPlanner;
    /// let mut batcher = WriteBatchPlanner::new();
    /// # let _ = &mut batcher;
    /// ```
    pub fn new() -> Self {
        Self::default()
    }

    /// Plan one batch: item `i` of the iterator is batch index `i`
    /// (pointing back into the caller's value slice). Items are *not*
    /// deduplicated — each occurrence becomes one op, in batch order, so
    /// a batch with repeated items leaves exactly the state a sequential
    /// per-item write loop would.
    ///
    /// ```
    /// use rnb_core::{Placement, PlacementStrategy, RnbConfig, WriteBatchPlanner,
    ///                WritePlanner, WritePolicy};
    /// let writer = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::InvalidateThenWrite,
    /// );
    /// let mut batcher = WriteBatchPlanner::new();
    /// let plan = batcher.plan_batch(&writer, [7u64, 9]);
    /// // Per item: 3 replica invalidations, then 1 distinguished write.
    /// let inval_ops: usize = plan.invalidations.iter().map(|g| g.ops.len()).sum();
    /// assert_eq!(inval_ops, 6);
    /// let write_servers: Vec<_> = plan.writes.iter().map(|g| g.server).collect();
    /// assert!(write_servers.contains(&writer.placement().replicas(7)[0]));
    /// ```
    pub fn plan_batch<P: Placement>(
        &mut self,
        writer: &WritePlanner<P>,
        items: impl IntoIterator<Item = ItemId>,
    ) -> BatchWritePlan<'_> {
        self.epoch = self.epoch.wrapping_add(1);
        let wrapped = self.epoch == 0;
        if wrapped {
            self.epoch = 1;
        }
        self.invalidations.begin(self.epoch, wrapped);
        self.writes.begin(self.epoch, wrapped);
        for (index, item) in items.into_iter().enumerate() {
            writer
                .placement()
                .replicas_into(item, &mut self.replica_buf);
            match writer.policy() {
                WritePolicy::WriteAll => {
                    for &server in &self.replica_buf {
                        self.writes.push(server, item, index);
                    }
                }
                WritePolicy::InvalidateThenWrite => {
                    for &server in &self.replica_buf[1..] {
                        self.invalidations.push(server, item, index);
                    }
                    self.writes.push(self.replica_buf[0], item, index);
                }
            }
        }
        BatchWritePlan {
            invalidations: &self.invalidations.groups[..self.invalidations.used],
            writes: &self.writes.groups[..self.writes.used],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlacementStrategy, RnbConfig};

    fn planner(policy: WritePolicy) -> WritePlanner<PlacementStrategy> {
        let config = RnbConfig::new(16, 4);
        WritePlanner::new(PlacementStrategy::from_config(&config), policy)
    }

    #[test]
    fn write_all_touches_every_replica() {
        let p = planner(WritePolicy::WriteAll);
        for item in 0..200u64 {
            let plan = p.plan_write(item);
            assert!(plan.invalidations.is_empty());
            assert_eq!(plan.writes.len(), 4);
            assert_eq!(plan.total_txns(), 4);
            let servers: Vec<_> = plan.writes.iter().map(|t| t.server).collect();
            assert_eq!(servers, p.placement().replicas(item));
        }
    }

    #[test]
    fn invalidate_then_write_preserves_distinguished_copy() {
        let p = planner(WritePolicy::InvalidateThenWrite);
        for item in 0..200u64 {
            let plan = p.plan_write(item);
            let replicas = p.placement().replicas(item);
            // Deletes target exactly the non-distinguished replicas…
            let del: Vec<_> = plan.invalidations.iter().map(|t| t.server).collect();
            assert_eq!(del, replicas[1..].to_vec());
            // …and the single write goes to the distinguished copy.
            assert_eq!(plan.writes.len(), 1);
            assert_eq!(plan.writes[0].server, replicas[0]);
            assert_eq!(plan.total_txns(), 4);
        }
    }

    #[test]
    fn replication_one_writes_once_either_way() {
        for policy in [WritePolicy::WriteAll, WritePolicy::InvalidateThenWrite] {
            let config = RnbConfig::new(16, 1);
            let p = WritePlanner::new(PlacementStrategy::from_config(&config), policy);
            let plan = p.plan_write(42);
            assert_eq!(plan.total_txns(), 1, "{policy:?}");
            assert!(plan.invalidations.is_empty());
        }
    }

    #[test]
    fn batch_bundles_same_server_ops() {
        let p = planner(WritePolicy::WriteAll);
        let items: Vec<u64> = (0..50).collect();
        let batch = p.plan_write_batch(&items);
        // Bundled: at most one write transaction per server.
        assert!(batch.writes.len() <= 16);
        // Every (item, replica) pair appears exactly once.
        let mut pairs = 0;
        for t in &batch.writes {
            for &item in &t.items {
                assert!(p.placement().replicas(item).contains(&t.server));
                pairs += 1;
            }
        }
        assert_eq!(pairs, 50 * 4);
        // Far fewer transactions than unbatched 50 × 4.
        assert!(batch.total_txns() < 200 / 4);
    }

    #[test]
    fn batch_dedupes_items() {
        let p = planner(WritePolicy::InvalidateThenWrite);
        let batch = p.plan_write_batch(&[7, 7, 7]);
        let write_items: usize = batch.writes.iter().map(|t| t.items.len()).sum();
        assert_eq!(write_items, 1);
        let inval_items: usize = batch.invalidations.iter().map(|t| t.items.len()).sum();
        assert_eq!(inval_items, 3);
    }

    #[test]
    fn empty_batch() {
        let p = planner(WritePolicy::WriteAll);
        let batch = p.plan_write_batch(&[]);
        assert_eq!(batch.total_txns(), 0);
    }

    /// The pooled batch planner expands to exactly the per-item
    /// `plan_write` ops, grouped by server, for both policies.
    #[test]
    fn pooled_batch_matches_per_item_plans() {
        for policy in [WritePolicy::WriteAll, WritePolicy::InvalidateThenWrite] {
            let p = planner(policy);
            let mut batcher = WriteBatchPlanner::new();
            let items: Vec<u64> = (0..60).map(|i| i * 13 % 47).collect();
            let plan = batcher.plan_batch(&p, items.iter().copied());

            // Collect (server, item) pairs from the pooled plan.
            let pairs = |groups: &[WriteGroup]| {
                let mut v: Vec<(u32, u64)> = groups
                    .iter()
                    .flat_map(|g| g.ops.iter().map(move |&(item, _)| (g.server, item)))
                    .collect();
                v.sort_unstable();
                v
            };
            let (mut want_inval, mut want_writes) = (Vec::new(), Vec::new());
            for &item in &items {
                let single = p.plan_write(item);
                for t in &single.invalidations {
                    want_inval.push((t.server, item));
                }
                for t in &single.writes {
                    want_writes.push((t.server, item));
                }
            }
            want_inval.sort_unstable();
            want_writes.sort_unstable();
            assert_eq!(pairs(plan.invalidations), want_inval, "{policy:?}");
            assert_eq!(pairs(plan.writes), want_writes, "{policy:?}");
            // Each server appears at most once per group list.
            for groups in [plan.invalidations, plan.writes] {
                let mut servers: Vec<u32> = groups.iter().map(|g| g.server).collect();
                servers.sort_unstable();
                servers.dedup();
                assert_eq!(servers.len(), groups.len(), "{policy:?}: duplicate group");
            }
        }
    }

    /// Batch indices point back at the caller's slice, and duplicate
    /// items keep one op per occurrence in batch order (sequential-loop
    /// semantics — the *later* value must win).
    #[test]
    fn pooled_batch_keeps_duplicate_occurrences_in_order() {
        let p = planner(WritePolicy::WriteAll);
        let mut batcher = WriteBatchPlanner::new();
        let plan = batcher.plan_batch(&p, [7u64, 9, 7]);
        assert_eq!(plan.total_ops(), 3 * 4);
        let mut groups_with_dup = 0;
        for g in plan.writes {
            let dup_indices: Vec<usize> = g
                .ops
                .iter()
                .filter(|&&(item, _)| item == 7)
                .map(|&(_, idx)| idx)
                .collect();
            if !dup_indices.is_empty() {
                groups_with_dup += 1;
                assert_eq!(dup_indices, vec![0, 2], "occurrences must stay ordered");
            }
        }
        assert_eq!(groups_with_dup, 4, "item 7 lives on 4 replica servers");
    }

    /// The pooled planner is reusable across batches of different shapes
    /// (epoch reset, no stale groups), including empty ones.
    #[test]
    fn pooled_batch_reuse_across_shapes() {
        let p = planner(WritePolicy::InvalidateThenWrite);
        let mut batcher = WriteBatchPlanner::new();
        let first = batcher.plan_batch(&p, 0..40u64).total_ops();
        assert_eq!(first, 40 * 4);
        assert_eq!(batcher.plan_batch(&p, std::iter::empty()).total_txns(), 0);
        let small = batcher.plan_batch(&p, [3u64]);
        assert_eq!(small.total_ops(), 4);
        assert_eq!(small.writes.len(), 1);
        let big = batcher.plan_batch(&p, 0..40u64);
        assert_eq!(big.total_ops(), first);
    }
}
