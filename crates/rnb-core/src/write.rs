//! Write-path planning: replica updates, invalidation, and the paper's
//! atomic-operation scheme (§IV).
//!
//! Reads are RnB's fast path; writes must deal with the replicas:
//!
//! * §III-G: "During write access, RnB requires updating multiple
//!   replicas. However, when replication is required for reasons such as
//!   reliability, RnB does not further increase the write complexity."
//! * §IV: "we proposed schemes for atomic operations in an RnB enabled
//!   memcached system. For example, remove all but the distinguished
//!   copies of an item before modifying it, then let RnB-memcached create
//!   the new copies on demand, after the atomic operation completes."

use crate::plan::Transaction;
use rnb_hash::{ItemId, Placement, ServerId};

/// How a write propagates to an item's replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Update every logical replica in place — one `set` per replica
    /// server. Simple, keeps replicas warm, but a concurrent multi-server
    /// update is not atomic.
    WriteAll,
    /// The §IV atomic scheme: first *delete* the non-distinguished
    /// copies, then update the distinguished copy. Readers can never see
    /// a stale replica (it is gone before the new value lands); the
    /// bundler's miss path recreates replicas on demand via write-back.
    InvalidateThenWrite,
}

/// The server operations one write expands to, in issue order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WritePlan {
    /// The written item.
    pub item: ItemId,
    /// `delete` transactions to issue first (empty for
    /// [`WritePolicy::WriteAll`]).
    pub invalidations: Vec<Transaction>,
    /// `set` transactions to issue after the invalidations complete.
    pub writes: Vec<Transaction>,
}

impl WritePlan {
    /// Total server transactions this write costs.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::WriteAll,
    /// );
    /// // Four replicas → four `set` transactions, no invalidations.
    /// assert_eq!(planner.plan_write(7).total_txns(), 4);
    /// ```
    pub fn total_txns(&self) -> usize {
        self.invalidations.len() + self.writes.len()
    }
}

/// Plans writes over a placement. Stateless, like the read-side
/// [`crate::Bundler`].
///
/// ```
/// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
/// let config = RnbConfig::new(16, 4);
/// let planner = WritePlanner::new(
///     PlacementStrategy::from_config(&config),
///     WritePolicy::InvalidateThenWrite,
/// );
/// let plan = planner.plan_write(7);
/// // The §IV atomic scheme: delete the 3 extra replicas, then write the
/// // distinguished copy.
/// assert_eq!(plan.invalidations.len(), 3);
/// assert_eq!(plan.writes.len(), 1);
/// ```
pub struct WritePlanner<P: Placement> {
    placement: P,
    policy: WritePolicy,
}

impl<P: Placement> WritePlanner<P> {
    /// A planner with the given policy.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(8, 2)),
    ///     WritePolicy::WriteAll,
    /// );
    /// assert_eq!(planner.policy(), WritePolicy::WriteAll);
    /// ```
    pub fn new(placement: P, policy: WritePolicy) -> Self {
        WritePlanner { placement, policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> WritePolicy {
        self.policy
    }

    /// The placement in use.
    pub fn placement(&self) -> &P {
        &self.placement
    }

    /// Plan one item write.
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::InvalidateThenWrite,
    /// );
    /// // §IV atomic scheme: delete the 3 extra replicas, then write the
    /// // distinguished copy.
    /// let plan = planner.plan_write(7);
    /// assert_eq!(plan.invalidations.len(), 3);
    /// assert_eq!(plan.writes.len(), 1);
    /// ```
    pub fn plan_write(&self, item: ItemId) -> WritePlan {
        let replicas = self.placement.replicas(item);
        match self.policy {
            WritePolicy::WriteAll => WritePlan {
                item,
                invalidations: Vec::new(),
                writes: replicas
                    .into_iter()
                    .map(|server| Transaction {
                        server,
                        items: vec![item],
                    })
                    .collect(),
            },
            WritePolicy::InvalidateThenWrite => WritePlan {
                item,
                invalidations: replicas[1..]
                    .iter()
                    .map(|&server| Transaction {
                        server,
                        items: vec![item],
                    })
                    .collect(),
                writes: vec![Transaction {
                    server: replicas[0],
                    items: vec![item],
                }],
            },
        }
    }

    /// Plan a batch of writes, bundling same-server operations of the
    /// same kind into one transaction each (memcached pipelining; the
    /// delete→write ordering barrier is preserved per batch).
    ///
    /// ```
    /// use rnb_core::{PlacementStrategy, RnbConfig, WritePlanner, WritePolicy};
    /// let planner = WritePlanner::new(
    ///     PlacementStrategy::from_config(&RnbConfig::new(16, 4)),
    ///     WritePolicy::WriteAll,
    /// );
    /// let items: Vec<u64> = (0..50).collect();
    /// let batch = planner.plan_write_batch(&items);
    /// // Bundled: at most one write transaction per server, far fewer
    /// // than the 200 unbatched per-replica sets.
    /// assert!(batch.writes.len() <= 16);
    /// ```
    pub fn plan_write_batch(&self, items: &[ItemId]) -> WritePlan {
        let mut distinct: Vec<ItemId> = items.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut invalidations: Vec<Transaction> = Vec::new();
        let mut writes: Vec<Transaction> = Vec::new();
        let push = |list: &mut Vec<Transaction>, server: ServerId, item: ItemId| match list
            .iter_mut()
            .find(|t| t.server == server)
        {
            Some(t) => t.items.push(item),
            None => list.push(Transaction {
                server,
                items: vec![item],
            }),
        };
        for &item in &distinct {
            let single = self.plan_write(item);
            for t in single.invalidations {
                push(&mut invalidations, t.server, item);
            }
            for t in single.writes {
                push(&mut writes, t.server, item);
            }
        }
        WritePlan {
            item: *distinct.first().unwrap_or(&0),
            invalidations,
            writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlacementStrategy, RnbConfig};

    fn planner(policy: WritePolicy) -> WritePlanner<PlacementStrategy> {
        let config = RnbConfig::new(16, 4);
        WritePlanner::new(PlacementStrategy::from_config(&config), policy)
    }

    #[test]
    fn write_all_touches_every_replica() {
        let p = planner(WritePolicy::WriteAll);
        for item in 0..200u64 {
            let plan = p.plan_write(item);
            assert!(plan.invalidations.is_empty());
            assert_eq!(plan.writes.len(), 4);
            assert_eq!(plan.total_txns(), 4);
            let servers: Vec<_> = plan.writes.iter().map(|t| t.server).collect();
            assert_eq!(servers, p.placement().replicas(item));
        }
    }

    #[test]
    fn invalidate_then_write_preserves_distinguished_copy() {
        let p = planner(WritePolicy::InvalidateThenWrite);
        for item in 0..200u64 {
            let plan = p.plan_write(item);
            let replicas = p.placement().replicas(item);
            // Deletes target exactly the non-distinguished replicas…
            let del: Vec<_> = plan.invalidations.iter().map(|t| t.server).collect();
            assert_eq!(del, replicas[1..].to_vec());
            // …and the single write goes to the distinguished copy.
            assert_eq!(plan.writes.len(), 1);
            assert_eq!(plan.writes[0].server, replicas[0]);
            assert_eq!(plan.total_txns(), 4);
        }
    }

    #[test]
    fn replication_one_writes_once_either_way() {
        for policy in [WritePolicy::WriteAll, WritePolicy::InvalidateThenWrite] {
            let config = RnbConfig::new(16, 1);
            let p = WritePlanner::new(PlacementStrategy::from_config(&config), policy);
            let plan = p.plan_write(42);
            assert_eq!(plan.total_txns(), 1, "{policy:?}");
            assert!(plan.invalidations.is_empty());
        }
    }

    #[test]
    fn batch_bundles_same_server_ops() {
        let p = planner(WritePolicy::WriteAll);
        let items: Vec<u64> = (0..50).collect();
        let batch = p.plan_write_batch(&items);
        // Bundled: at most one write transaction per server.
        assert!(batch.writes.len() <= 16);
        // Every (item, replica) pair appears exactly once.
        let mut pairs = 0;
        for t in &batch.writes {
            for &item in &t.items {
                assert!(p.placement().replicas(item).contains(&t.server));
                pairs += 1;
            }
        }
        assert_eq!(pairs, 50 * 4);
        // Far fewer transactions than unbatched 50 × 4.
        assert!(batch.total_txns() < 200 / 4);
    }

    #[test]
    fn batch_dedupes_items() {
        let p = planner(WritePolicy::InvalidateThenWrite);
        let batch = p.plan_write_batch(&[7, 7, 7]);
        let write_items: usize = batch.writes.iter().map(|t| t.items.len()).sum();
        assert_eq!(write_items, 1);
        let inval_items: usize = batch.invalidations.iter().map(|t| t.items.len()).sum();
        assert_eq!(inval_items, 3);
    }

    #[test]
    fn empty_batch() {
        let p = planner(WritePolicy::WriteAll);
        let batch = p.plan_write_batch(&[]);
        assert_eq!(batch.total_txns(), 0);
    }
}
