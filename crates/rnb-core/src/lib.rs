//! **Replicate and Bundle (RnB)** — the client-side library reproducing
//! Raindel & Birk, IPDPS 2013.
//!
//! RnB reduces the number of *transactions* (server round-trips) needed to
//! satisfy a multi-item request against a memcached-style RAM storage tier:
//!
//! 1. **Replicate**: every item is stored on `k` pseudo-randomly chosen,
//!    distinct servers (replica 0 is the *distinguished copy*).
//! 2. **Bundle**: at read time, pick one replica per requested item such
//!    that the total number of servers contacted is minimal — a greedy
//!    minimum set cover.
//!
//! The entry point is [`Bundler`], which turns a request (a slice of item
//! ids) into a [`FetchPlan`] of per-server transactions:
//!
//! ```
//! use rnb_core::{Bundler, PlacementStrategy, RnbConfig};
//!
//! let config = RnbConfig::new(16, 4); // 16 servers, 4 logical replicas
//! let bundler = Bundler::from_config(&config);
//! let request: Vec<u64> = (0..40).collect();
//! let plan = bundler.plan(&request);
//! assert!(plan.tpr() <= 16);                 // never more than one txn per server
//! assert_eq!(plan.planned_items(), 40);      // every item fetched
//! // With 4 replicas to choose from, bundling beats 1-replica placement:
//! let baseline = Bundler::new(PlacementStrategy::no_replication(16, config.seed));
//! assert!(plan.tpr() <= baseline.plan(&request).tpr());
//! ```
//!
//! Modules:
//! * [`config`] — [`RnbConfig`]: cluster size, replication, policies.
//! * [`placement`] — [`PlacementStrategy`]: RCH (paper §IV), multi-hash
//!   (paper §III-B), rendezvous, and the no-replication baseline.
//! * [`bundler`] — the planner (full and LIMIT variants, §III-A/§III-F).
//! * [`plan`] — [`FetchPlan`] / [`Transaction`] plus TPR accounting.
//! * [`baseline`] — full-system replication (§II-C, the industry baseline).
//! * [`merge`] — cross-request merging (§III-E).
//! * [`mod@write`] — write-path planning and the §IV atomic-update scheme.

pub mod baseline;
pub mod bundler;
pub mod config;
pub mod merge;
pub mod placement;
pub mod plan;
pub mod write;

pub use baseline::FullSystemReplication;
pub use bundler::{Bundler, PlanScratch};
pub use config::{PlacementKind, RnbConfig};
pub use placement::PlacementStrategy;
pub use plan::{FetchPlan, Transaction};
pub use write::{
    BatchWritePlan, WriteBatchPlanner, WriteGroup, WritePlan, WritePlanner, WritePolicy,
};

pub use rnb_hash::{ItemId, Placement, ServerId};
