//! Concrete placement strategies behind one enum, so callers can switch
//! schemes without generics.

use crate::config::{PlacementKind, RnbConfig};
use rnb_hash::jump::JumpPlacement;
use rnb_hash::multihash::MultiHashPlacement;
use rnb_hash::rch::RangedConsistentHash;
use rnb_hash::rendezvous::RendezvousPlacement;
use rnb_hash::{HashKind, ItemId, Placement, ServerId};

/// A replica placement scheme chosen at runtime.
pub enum PlacementStrategy {
    /// Ranged Consistent Hashing (paper §IV).
    Rch(RangedConsistentHash),
    /// Multiple independent hash functions (paper §III-B).
    MultiHash(MultiHashPlacement),
    /// Rendezvous hashing (ablation).
    Rendezvous(RendezvousPlacement),
    /// Jump consistent hashing (ablation).
    Jump(JumpPlacement),
}

impl PlacementStrategy {
    /// Build the strategy described by `config`.
    ///
    /// ```
    /// use rnb_core::{Placement, PlacementStrategy, RnbConfig};
    /// let placement = PlacementStrategy::from_config(&RnbConfig::new(16, 3));
    /// assert_eq!(placement.num_servers(), 16);
    /// assert_eq!(placement.replication(), 3);
    /// ```
    pub fn from_config(config: &RnbConfig) -> Self {
        Self::build(
            config.placement,
            config.servers,
            config.replication,
            config.hash,
            config.seed,
        )
    }

    /// Build a strategy from explicit parameters.
    ///
    /// ```
    /// use rnb_core::{Placement, PlacementKind, PlacementStrategy};
    /// use rnb_hash::HashKind;
    /// let placement =
    ///     PlacementStrategy::build(PlacementKind::Jump, 8, 2, HashKind::XxHash64, 7);
    /// assert_eq!(placement.name(), "jump");
    /// assert_eq!(placement.replicas(42).len(), 2);
    /// ```
    pub fn build(
        kind: PlacementKind,
        servers: usize,
        replication: usize,
        hash: HashKind,
        seed: u64,
    ) -> Self {
        match kind {
            PlacementKind::Rch => {
                PlacementStrategy::Rch(RangedConsistentHash::new(servers, replication, hash, seed))
            }
            PlacementKind::MultiHash => PlacementStrategy::MultiHash(MultiHashPlacement::new(
                servers,
                replication,
                hash,
                seed,
            )),
            PlacementKind::Rendezvous => PlacementStrategy::Rendezvous(RendezvousPlacement::new(
                servers,
                replication,
                hash,
                seed,
            )),
            PlacementKind::Jump => {
                // Jump hashing has its own internal mixing; the hash-kind
                // knob does not apply.
                PlacementStrategy::Jump(JumpPlacement::new(servers, replication, seed))
            }
        }
    }

    /// The memcached baseline: one copy per item on a consistent-hashing
    /// ring (RCH with replication 1 — identical to plain consistent
    /// hashing; see `rnb_hash::rch` tests).
    ///
    /// ```
    /// use rnb_core::{Placement, PlacementStrategy};
    /// let placement = PlacementStrategy::no_replication(8, 0);
    /// assert_eq!(placement.replication(), 1);
    /// assert_eq!(placement.replicas(3).len(), 1);
    /// ```
    pub fn no_replication(servers: usize, seed: u64) -> Self {
        PlacementStrategy::Rch(RangedConsistentHash::new(
            servers,
            1,
            HashKind::XxHash64,
            seed,
        ))
    }

    /// Name for tables and logs.
    ///
    /// ```
    /// use rnb_core::PlacementStrategy;
    /// assert_eq!(PlacementStrategy::no_replication(4, 0).name(), "rch");
    /// ```
    pub fn name(&self) -> &'static str {
        match self {
            PlacementStrategy::Rch(_) => "rch",
            PlacementStrategy::MultiHash(_) => "multihash",
            PlacementStrategy::Rendezvous(_) => "rendezvous",
            PlacementStrategy::Jump(_) => "jump",
        }
    }
}

impl Placement for PlacementStrategy {
    fn num_servers(&self) -> usize {
        match self {
            PlacementStrategy::Rch(p) => p.num_servers(),
            PlacementStrategy::MultiHash(p) => p.num_servers(),
            PlacementStrategy::Rendezvous(p) => p.num_servers(),
            PlacementStrategy::Jump(p) => p.num_servers(),
        }
    }

    fn replication(&self) -> usize {
        match self {
            PlacementStrategy::Rch(p) => p.replication(),
            PlacementStrategy::MultiHash(p) => p.replication(),
            PlacementStrategy::Rendezvous(p) => p.replication(),
            PlacementStrategy::Jump(p) => p.replication(),
        }
    }

    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        match self {
            PlacementStrategy::Rch(p) => p.replicas_into(item, out),
            PlacementStrategy::MultiHash(p) => p.replicas_into(item, out),
            PlacementStrategy::Rendezvous(p) => p.replicas_into(item, out),
            PlacementStrategy::Jump(p) => p.replicas_into(item, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_buildable_and_distinct_replicas() {
        for kind in [
            PlacementKind::Rch,
            PlacementKind::MultiHash,
            PlacementKind::Rendezvous,
            PlacementKind::Jump,
        ] {
            let p = PlacementStrategy::build(kind, 16, 3, HashKind::XxHash64, 5);
            assert_eq!(p.num_servers(), 16);
            assert_eq!(p.replication(), 3);
            for item in 0..500 {
                let reps = p.replicas(item);
                let mut s = reps.clone();
                s.sort_unstable();
                s.dedup();
                assert_eq!(s.len(), 3, "{kind:?} produced duplicate replicas");
            }
        }
    }

    #[test]
    fn no_replication_is_single_copy() {
        let p = PlacementStrategy::no_replication(8, 1);
        assert_eq!(p.replication(), 1);
        for item in 0..100 {
            assert_eq!(p.replicas(item).len(), 1);
        }
    }

    #[test]
    fn names() {
        assert_eq!(PlacementStrategy::no_replication(2, 0).name(), "rch");
        let c = RnbConfig::new(4, 2).with_placement(PlacementKind::Rendezvous);
        assert_eq!(PlacementStrategy::from_config(&c).name(), "rendezvous");
    }
}
