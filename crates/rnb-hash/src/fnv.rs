//! FNV-1a 64-bit hash, with a seed folded into the offset basis.

use crate::mix::avalanche64;
use crate::Hasher64;

const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Seeded FNV-1a hasher.
///
/// Plain FNV-1a has weak low-bit diffusion for short keys, so the digest is
/// passed through a Murmur-style avalanche before being returned — this
/// matters for placement, which reduces hashes modulo small server counts.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    basis: u64,
}

impl Fnv1a {
    /// Create a hasher whose offset basis is perturbed by `seed`.
    pub fn new(seed: u64) -> Self {
        Fnv1a {
            basis: FNV_OFFSET_BASIS ^ avalanche64(seed),
        }
    }

    /// The raw (non-avalanched) FNV-1a digest, exposed for known-answer
    /// tests against the published test vectors.
    pub fn raw(&self, key: &[u8]) -> u64 {
        let mut h = self.basis;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

impl Hasher64 for Fnv1a {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        avalanche64(self.raw(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// With seed 0 the basis reduces to the standard FNV offset basis
    /// (avalanche64(0) == 0), so the published FNV-1a vectors apply.
    #[test]
    fn fnv1a_known_answers() {
        let h = Fnv1a::new(0);
        assert_eq!(h.raw(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(h.raw(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(h.raw(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seed_changes_output() {
        let a = Fnv1a::new(1);
        let b = Fnv1a::new(2);
        assert_ne!(a.hash_bytes(b"hello"), b.hash_bytes(b"hello"));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let h = Fnv1a::new(3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(h.hash_u64(i));
        }
        assert_eq!(seen.len(), 10_000, "collision among 10k sequential keys");
    }
}
