//! MurmurHash3 x64 128-bit, exposing the low 64 bits of the digest.

use crate::mix::read_u64_le;
use crate::Hasher64;

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

/// Seeded MurmurHash3 (x64/128 variant) hasher.
#[derive(Debug, Clone, Copy)]
pub struct Murmur3 {
    seed: u64,
}

impl Murmur3 {
    /// Create a Murmur3 hasher. The 64-bit seed initialises both internal
    /// lanes (the reference takes a 32-bit seed; we use the full word for
    /// a larger seed space, which only matters for seed-vs-seed
    /// independence, not for the per-seed known-answer behaviour).
    pub fn new(seed: u64) -> Self {
        Murmur3 { seed }
    }

    /// Full 128-bit digest as `(low, high)`.
    pub fn hash128(&self, data: &[u8]) -> (u64, u64) {
        murmur3_x64_128(data, self.seed)
    }
}

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^ (k >> 33)
}

/// MurmurHash3 x64 128-bit digest of `data` with `seed`, as `(h1, h2)`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> (u64, u64) {
    let len = data.len();
    let mut h1 = seed;
    let mut h2 = seed;

    let n_blocks = len / 16;
    for i in 0..n_blocks {
        let mut k1 = read_u64_le(data, i * 16);
        let mut k2 = read_u64_le(data, i * 16 + 8);

        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
        h1 = h1
            .rotate_left(27)
            .wrapping_add(h2)
            .wrapping_mul(5)
            .wrapping_add(0x52dce729);

        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
        h2 = h2
            .rotate_left(31)
            .wrapping_add(h1)
            .wrapping_mul(5)
            .wrapping_add(0x38495ab5);
    }

    let tail = &data[n_blocks * 16..];
    let mut k1 = 0u64;
    let mut k2 = 0u64;
    for i in (8..tail.len()).rev() {
        k2 |= (tail[i] as u64) << (8 * (i - 8));
    }
    if tail.len() > 8 {
        k2 = k2.wrapping_mul(C2).rotate_left(33).wrapping_mul(C1);
        h2 ^= k2;
    }
    for i in (0..tail.len().min(8)).rev() {
        k1 |= (tail[i] as u64) << (8 * i);
    }
    if !tail.is_empty() {
        k1 = k1.wrapping_mul(C1).rotate_left(31).wrapping_mul(C2);
        h1 ^= k1;
    }

    h1 ^= len as u64;
    h2 ^= len as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    (h1, h2)
}

impl Hasher64 for Murmur3 {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        murmur3_x64_128(key, self.seed).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors for MurmurHash3 x64/128 with seed 0, matching
    /// the reference C++ implementation (and the `murmur3` crates).
    #[test]
    fn murmur3_known_answers() {
        assert_eq!(murmur3_x64_128(b"", 0), (0, 0));
        assert_eq!(murmur3_x64_128(b"hello", 0).0, 0xcbd8_a7b3_41bd_9b02);
        assert_eq!(murmur3_x64_128(b"hello, world", 0).0, 0x342f_ac62_3a5e_bc8e);
        assert_eq!(
            murmur3_x64_128(b"The quick brown fox jumps over the lazy dog.", 0).0,
            0xcd99_481f_9ee9_02c9
        );
    }

    #[test]
    fn murmur3_tail_lengths() {
        // Exercise every tail length 0..16 around a 16-byte block.
        let data: Vec<u8> = (0..48u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(
                seen.insert(murmur3_x64_128(&data[..len], 7)),
                "collision at len {len}"
            );
        }
    }

    #[test]
    fn seed_sensitivity() {
        assert_ne!(murmur3_x64_128(b"key", 1), murmur3_x64_128(b"key", 2));
    }
}
