//! Multi-hash replica placement — the scheme the paper's simulator uses:
//! "replicating the data items using multiple hash functions".
//!
//! Replica `i` of an item is `H_i(item) mod N` where `H_0..H_{k-1}` are
//! independently seeded hash functions. Collisions (two hash functions
//! picking the same server) are resolved by rehashing with a probe
//! counter, so the produced servers are always distinct. `H_0` defines the
//! distinguished copy.

use crate::mix::sub_seed;
use crate::{HashKind, Hasher64, ItemId, Placement, ServerId};

/// Placement by `k` independent hash functions with open-address collision
/// probing.
pub struct MultiHashPlacement {
    hashers: Vec<Box<dyn Hasher64>>,
    num_servers: usize,
    kind: HashKind,
}

impl MultiHashPlacement {
    /// Build a placement of `replication` hash functions over
    /// `num_servers` servers, all derived from `seed`.
    pub fn new(num_servers: usize, replication: usize, kind: HashKind, seed: u64) -> Self {
        assert!(num_servers > 0, "placement needs at least one server");
        assert!(replication >= 1, "replication must be at least 1");
        let hashers = (0..replication as u64)
            .map(|i| kind.build(sub_seed(seed, i)))
            .collect();
        MultiHashPlacement {
            hashers,
            num_servers,
            kind,
        }
    }

    /// Hash kind used for every replica function.
    pub fn hash_kind(&self) -> HashKind {
        self.kind
    }
}

impl Placement for MultiHashPlacement {
    fn num_servers(&self) -> usize {
        self.num_servers
    }

    fn replication(&self) -> usize {
        self.hashers.len()
    }

    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        out.clear();
        let n = self.num_servers as u64;
        let want = self.hashers.len().min(self.num_servers);
        for hasher in &self.hashers {
            let mut h = hasher.hash_u64(item);
            let mut server = (h % n) as ServerId;
            // Probe past servers already chosen by earlier hash functions.
            // Each probe re-mixes the hash, so the fallback server remains
            // pseudo-random rather than the linear neighbour.
            let mut probe: u64 = 0;
            while out.contains(&server) {
                probe += 1;
                h = hasher.hash_bytes(&[item.to_le_bytes(), probe.to_le_bytes()].concat());
                server = (h % n) as ServerId;
            }
            out.push(server);
            if out.len() == want {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance_stats;

    fn mh(n: usize, k: usize) -> MultiHashPlacement {
        MultiHashPlacement::new(n, k, HashKind::XxHash64, 7)
    }

    #[test]
    fn replicas_distinct() {
        let p = mh(16, 4);
        for item in 0..5000 {
            let reps = p.replicas(item);
            assert_eq!(reps.len(), 4);
            let mut s = reps.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4, "duplicate replicas {reps:?}");
        }
    }

    #[test]
    fn deterministic() {
        let a = mh(16, 3);
        let b = mh(16, 3);
        for item in 0..1000 {
            assert_eq!(a.replicas(item), b.replicas(item));
        }
    }

    #[test]
    fn replication_capped_at_cluster() {
        let p = mh(2, 5);
        for item in 0..50 {
            let mut reps = p.replicas(item);
            reps.sort_unstable();
            assert_eq!(reps, vec![0, 1]);
        }
    }

    #[test]
    fn distinguished_ignores_replication_level() {
        // H_0 is shared across replication levels built from the same
        // seed, so the distinguished copy's location is stable when the
        // declared replica count changes (needed for overbooking).
        let p2 = mh(16, 2);
        let p4 = mh(16, 4);
        for item in 0..2000 {
            assert_eq!(p2.distinguished(item), p4.distinguished(item));
        }
    }

    #[test]
    fn per_replica_balance() {
        let p = mh(16, 3);
        let mut counts = vec![0usize; 16];
        for item in 0..30_000 {
            for s in p.replicas(item) {
                counts[s as usize] += 1;
            }
        }
        let (_, _, factor) = balance_stats(&counts);
        assert!(
            factor < 1.1,
            "multi-hash should balance tightly, got {factor}"
        );
    }

    #[test]
    fn pairwise_placements_look_independent() {
        // Replica 1 should be (nearly) uniform over the 15 servers that are
        // not replica 0.
        let p = mh(16, 2);
        let mut joint = vec![0usize; 16 * 16];
        for item in 0..60_000 {
            let r = p.replicas(item);
            joint[r[0] as usize * 16 + r[1] as usize] += 1;
        }
        for s0 in 0..16 {
            for s1 in 0..16 {
                let c = joint[s0 * 16 + s1];
                if s0 == s1 {
                    assert_eq!(c, 0);
                } else {
                    // Expected 60000/(16*15) = 250; demand within ±50%.
                    assert!((125..=375).contains(&c), "joint count ({s0},{s1}) = {c}");
                }
            }
        }
    }
}
