//! Ranged Consistent Hashing (RCH), the paper's §IV extension of
//! consistent hashing.
//!
//! > "It entails traveling along the consistent hashing continuum,
//! > gathering servers until there are enough unique ones."
//!
//! RCH keeps consistent hashing's properties (stateless, uniform,
//! incremental growth) while producing, for every item, an ordered set of
//! `k` *distinct* servers to host its replicas. The first unique server on
//! the walk is the item's distinguished copy, which coincides with plain
//! consistent hashing's owner — so an RCH deployment with `k = 1` is
//! byte-for-byte a memcached deployment.

use crate::ring::ConsistentHashRing;
use crate::{HashKind, ItemId, Placement, ServerId};

/// Ranged Consistent Hashing placement: `k` distinct replica servers
/// gathered by walking the continuum clockwise from the item's point.
pub struct RangedConsistentHash {
    ring: ConsistentHashRing,
    replication: usize,
}

impl RangedConsistentHash {
    /// Build an RCH placement over `num_servers` servers with `replication`
    /// logical replicas per item.
    pub fn new(num_servers: usize, replication: usize, kind: HashKind, seed: u64) -> Self {
        assert!(replication >= 1, "replication must be at least 1");
        RangedConsistentHash {
            ring: ConsistentHashRing::new(num_servers, kind, seed),
            replication,
        }
    }

    /// Build over an existing ring (e.g. to share vnode configuration).
    pub fn from_ring(ring: ConsistentHashRing, replication: usize) -> Self {
        assert!(replication >= 1, "replication must be at least 1");
        RangedConsistentHash { ring, replication }
    }

    /// Access the underlying ring.
    pub fn ring(&self) -> &ConsistentHashRing {
        &self.ring
    }

    /// Add a server to the underlying ring; replica sets of only the keys
    /// whose walk crosses the new server's points change.
    pub fn add_server(&mut self) -> ServerId {
        self.ring.add_server()
    }
}

impl Placement for RangedConsistentHash {
    fn num_servers(&self) -> usize {
        self.ring.num_servers()
    }

    fn replication(&self) -> usize {
        self.replication
    }

    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        out.clear();
        let want = self.replication.min(self.ring.num_servers());
        for server in self.ring.walk_from(item) {
            if !out.contains(&server) {
                out.push(server);
                if out.len() == want {
                    return;
                }
            }
        }
        // A full lap visits every server, so we can only get here if the
        // ring has fewer servers than `want`, which the `min` above
        // prevents.
        unreachable!("continuum walk ended before gathering {want} unique servers");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance_stats;

    fn rch(n: usize, k: usize) -> RangedConsistentHash {
        RangedConsistentHash::new(n, k, HashKind::XxHash64, 42)
    }

    #[test]
    fn replicas_are_distinct_and_sized() {
        let p = rch(16, 4);
        for item in 0..5000 {
            let reps = p.replicas(item);
            assert_eq!(reps.len(), 4);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                4,
                "duplicate replica for item {item}: {reps:?}"
            );
        }
    }

    #[test]
    fn first_replica_matches_plain_consistent_hashing() {
        let p = rch(16, 4);
        for item in 0..5000 {
            assert_eq!(p.distinguished(item), p.ring().server_for(item));
        }
    }

    #[test]
    fn replication_capped_at_cluster_size() {
        let p = rch(3, 8);
        for item in 0..100 {
            let reps = p.replicas(item);
            assert_eq!(reps.len(), 3);
            let mut s = reps.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1, 2]);
        }
    }

    #[test]
    fn prefix_stability() {
        // The k-replica list must be a prefix of the (k+1)-replica list for
        // the same ring: raising the replication level only *adds* copies,
        // it never moves existing ones. This is what makes RnB deployable
        // incrementally (§IV).
        let p3 = rch(16, 3);
        let p4 = rch(16, 4);
        for item in 0..2000 {
            let r3 = p3.replicas(item);
            let r4 = p4.replicas(item);
            assert_eq!(&r4[..3], &r3[..], "prefix violated for item {item}");
        }
    }

    #[test]
    fn replica_load_is_balanced() {
        let p = rch(16, 3);
        let mut counts = vec![0usize; 16];
        for item in 0..30_000 {
            for s in p.replicas(item) {
                counts[s as usize] += 1;
            }
        }
        let (_, _, factor) = balance_stats(&counts);
        assert!(factor < 1.35, "replica imbalance {factor}");
    }

    #[test]
    fn growth_preserves_most_replica_sets() {
        let mut p = rch(16, 3);
        let before: Vec<Vec<ServerId>> = (0..20_000).map(|i| p.replicas(i)).collect();
        p.add_server();
        let mut changed = 0;
        for (i, old) in before.iter().enumerate() {
            if &p.replicas(i as ItemId) != old {
                changed += 1;
            }
        }
        // Each of the 3 replicas moves with probability ~1/17, so ~17% of
        // sets may change; assert we are well below full reshuffle.
        assert!(
            changed < 20_000 / 3,
            "{changed} of 20000 replica sets changed"
        );
    }
}
