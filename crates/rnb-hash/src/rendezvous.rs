//! Rendezvous (highest-random-weight) placement.
//!
//! Not used by the paper, but included as an ablation baseline: HRW gives
//! perfectly distinct replica sets and optimal rebalancing by construction,
//! at O(N) lookup cost per item versus RCH's O(log N + k). The ablation
//! bench (`placement` in `rnb-bench`) quantifies that trade-off.

use crate::{HashKind, Hasher64, ItemId, Placement, ServerId};

/// Highest-random-weight placement: replicas are the `k` servers with the
/// highest `hash(item, server)` scores.
pub struct RendezvousPlacement {
    hasher: Box<dyn Hasher64>,
    num_servers: usize,
    replication: usize,
}

impl RendezvousPlacement {
    /// Build an HRW placement.
    pub fn new(num_servers: usize, replication: usize, kind: HashKind, seed: u64) -> Self {
        assert!(num_servers > 0, "placement needs at least one server");
        assert!(replication >= 1, "replication must be at least 1");
        RendezvousPlacement {
            hasher: kind.build(seed),
            num_servers,
            replication,
        }
    }

    fn score(&self, item: ItemId, server: ServerId) -> u64 {
        let mut key = [0u8; 12];
        key[..8].copy_from_slice(&item.to_le_bytes());
        key[8..].copy_from_slice(&server.to_le_bytes());
        self.hasher.hash_bytes(&key)
    }
}

impl Placement for RendezvousPlacement {
    fn num_servers(&self) -> usize {
        self.num_servers
    }

    fn replication(&self) -> usize {
        self.replication
    }

    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        out.clear();
        let want = self.replication.min(self.num_servers);
        // Partial selection of the top-k scores. N is small (≤ thousands),
        // so a simple scored sort is fine; callers needing speed use RCH.
        let mut scored: Vec<(u64, ServerId)> = (0..self.num_servers as ServerId)
            .map(|s| (self.score(item, s), s))
            .collect();
        scored.sort_unstable_by(|a, b| b.cmp(a));
        out.extend(scored[..want].iter().map(|&(_, s)| s));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance_stats;

    #[test]
    fn distinct_replicas_by_construction() {
        let p = RendezvousPlacement::new(16, 4, HashKind::XxHash64, 11);
        for item in 0..2000 {
            let reps = p.replicas(item);
            let mut s = reps.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 4);
        }
    }

    #[test]
    fn prefix_stability_across_replication_levels() {
        let p2 = RendezvousPlacement::new(16, 2, HashKind::XxHash64, 11);
        let p5 = RendezvousPlacement::new(16, 5, HashKind::XxHash64, 11);
        for item in 0..1000 {
            assert_eq!(&p5.replicas(item)[..2], &p2.replicas(item)[..]);
        }
    }

    #[test]
    fn near_perfect_balance() {
        let p = RendezvousPlacement::new(16, 3, HashKind::XxHash64, 12);
        let mut counts = vec![0usize; 16];
        for item in 0..30_000 {
            for s in p.replicas(item) {
                counts[s as usize] += 1;
            }
        }
        let (_, _, factor) = balance_stats(&counts);
        assert!(factor < 1.1, "HRW imbalance {factor}");
    }

    #[test]
    fn adding_server_only_steals_keys() {
        // Growing the cluster by one server must never move a replica
        // between two pre-existing servers (minimal-disruption property).
        let p16 = RendezvousPlacement::new(16, 3, HashKind::XxHash64, 13);
        let p17 = RendezvousPlacement::new(17, 3, HashKind::XxHash64, 13);
        for item in 0..5000 {
            let old = p16.replicas(item);
            let new = p17.replicas(item);
            for s in &new {
                assert!(
                    *s == 16 || old.contains(s),
                    "item {item}: {old:?} -> {new:?}"
                );
            }
        }
    }
}
