//! Small integer mixing utilities shared by the hash implementations.

/// SplitMix64 step: advances `state` and returns the next pseudo-random
/// value. Used to derive independent sub-seeds from a single `u64` seed.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derive the `i`-th sub-seed from `seed` (stateless form of
/// [`splitmix64`]).
pub fn sub_seed(seed: u64, i: u64) -> u64 {
    let mut s = seed ^ i.wrapping_mul(0xa076_1d64_78bd_642f);
    splitmix64(&mut s)
}

/// Murmur3/xxHash-style 64-bit avalanche finalizer.
pub fn avalanche64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// Read a little-endian `u64` from `bytes[offset..offset + 8]`.
#[inline]
pub fn read_u64_le(bytes: &[u8], offset: usize) -> u64 {
    u64::from_le_bytes(bytes[offset..offset + 8].try_into().unwrap())
}

/// Read a little-endian `u32` from `bytes[offset..offset + 4]`.
#[inline]
pub fn read_u32_le(bytes: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        for _ in 0..10 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn splitmix_reference_vector() {
        // Known-answer test against the original public-domain C
        // implementation by Sebastiano Vigna, seeded with 0.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut s), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut s), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn sub_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(sub_seed(99, i)), "duplicate sub-seed at {i}");
        }
    }

    #[test]
    fn avalanche_changes_all_byte_positions() {
        // Flipping any single input bit should flip roughly half of the
        // output bits; sanity-check a weak version of that.
        for bit in 0..64 {
            let a = avalanche64(0);
            let b = avalanche64(1u64 << bit);
            let flipped = (a ^ b).count_ones();
            assert!(
                flipped >= 16,
                "bit {bit} only flipped {flipped} output bits"
            );
        }
    }

    #[test]
    fn read_helpers() {
        let bytes = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(read_u64_le(&bytes, 0), 0x0807060504030201);
        assert_eq!(read_u64_le(&bytes, 1), 0x0908070605040302);
        assert_eq!(read_u32_le(&bytes, 0), 0x04030201);
        assert_eq!(read_u32_le(&bytes, 5), 0x09080706);
    }
}
