//! Hashing substrate for the RnB (Replicate and Bundle) reproduction.
//!
//! This crate provides everything the paper's placement layer needs,
//! implemented from scratch:
//!
//! * Seedable 64-bit hash functions ([`fnv`], [`xxhash`], [`siphash`],
//!   [`murmur`]) behind the common [`Hasher64`] trait.
//! * A classic consistent-hashing ring with virtual nodes ([`ring`]).
//! * **Ranged Consistent Hashing** ([`rch`]) — the paper's §IV extension
//!   that walks the continuum gathering *distinct* servers for an item's
//!   replica set.
//! * Multi-hash replica placement ([`multihash`]) — the scheme used in the
//!   paper's simulator ("replicating the data items using multiple hash
//!   functions").
//! * Rendezvous (highest-random-weight) placement ([`rendezvous`]) as an
//!   additional baseline for ablations.
//!
//! All placement schemes implement the [`Placement`] trait, which maps an
//! item id to an ordered list of distinct servers. Replica index 0 is the
//! *distinguished copy* in RnB terms.

pub mod fnv;
pub mod jump;
pub mod mix;
pub mod multihash;
pub mod murmur;
pub mod rch;
pub mod rendezvous;
pub mod ring;
pub mod siphash;
pub mod xxhash;

/// Identifier of a storage server within a cluster. Dense, `0..num_servers`.
pub type ServerId = u32;

/// Identifier of a stored item (a graph node / user "status" in the paper's
/// workloads).
pub type ItemId = u64;

/// A seeded 64-bit hash function over byte strings.
///
/// Implementations must be deterministic for a given seed and must give
/// independent-looking streams for different seeds (the RnB placement layer
/// derives its `k` replica hash functions from `k` different seeds).
pub trait Hasher64: Send + Sync {
    /// Hash `key` to a 64-bit value.
    fn hash_bytes(&self, key: &[u8]) -> u64;

    /// Hash a 64-bit item id (convenience over [`Hasher64::hash_bytes`] on
    /// the id's little-endian bytes).
    fn hash_u64(&self, key: u64) -> u64 {
        self.hash_bytes(&key.to_le_bytes())
    }
}

/// The hash function families available to placement schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashKind {
    /// FNV-1a, 64-bit, seed-xored basis. Fastest; weakest mixing.
    Fnv1a,
    /// xxHash64. Fast with good avalanche; the default.
    #[default]
    XxHash64,
    /// SipHash-1-3 keyed hash (the Rust standard library's default family).
    SipHash13,
    /// SipHash-2-4 keyed hash (the original, more conservative parameters).
    SipHash24,
    /// MurmurHash3 x64 variant, low 64 bits of the 128-bit digest.
    Murmur3,
}

impl HashKind {
    /// Construct a boxed hasher of this kind with the given seed.
    pub fn build(self, seed: u64) -> Box<dyn Hasher64> {
        match self {
            HashKind::Fnv1a => Box::new(fnv::Fnv1a::new(seed)),
            HashKind::XxHash64 => Box::new(xxhash::XxHash64::new(seed)),
            HashKind::SipHash13 => Box::new(siphash::SipHasher::sip13(seed)),
            HashKind::SipHash24 => Box::new(siphash::SipHasher::sip24(seed)),
            HashKind::Murmur3 => Box::new(murmur::Murmur3::new(seed)),
        }
    }

    /// All kinds, for exhaustive tests and benches.
    pub const ALL: [HashKind; 5] = [
        HashKind::Fnv1a,
        HashKind::XxHash64,
        HashKind::SipHash13,
        HashKind::SipHash24,
        HashKind::Murmur3,
    ];
}

/// Maps an item to an ordered list of **distinct** servers holding its
/// replicas.
///
/// Replica 0 is the distinguished copy. The order must be deterministic so
/// that every client computes the same placement without coordination —
/// the property the paper leans on ("requires almost exactly the same amount
/// of configuration information as consistent hashing").
pub trait Placement: Send + Sync {
    /// Number of servers in the cluster.
    fn num_servers(&self) -> usize;

    /// Declared (logical) replication level.
    fn replication(&self) -> usize;

    /// Fill `out` (cleared first) with the ordered replica servers of
    /// `item`. Produces `min(replication, num_servers)` distinct servers.
    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>);

    /// Convenience allocating wrapper around [`Placement::replicas_into`].
    fn replicas(&self, item: ItemId) -> Vec<ServerId> {
        let mut out = Vec::with_capacity(self.replication());
        self.replicas_into(item, &mut out);
        out
    }

    /// The distinguished-copy server of `item` (replica 0).
    fn distinguished(&self, item: ItemId) -> ServerId {
        let mut out = Vec::with_capacity(self.replication());
        self.replicas_into(item, &mut out);
        out[0]
    }
}

impl<P: Placement + ?Sized> Placement for &P {
    fn num_servers(&self) -> usize {
        (**self).num_servers()
    }
    fn replication(&self) -> usize {
        (**self).replication()
    }
    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        (**self).replicas_into(item, out)
    }
}

impl<P: Placement + ?Sized> Placement for Box<P> {
    fn num_servers(&self) -> usize {
        (**self).num_servers()
    }
    fn replication(&self) -> usize {
        (**self).replication()
    }
    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        (**self).replicas_into(item, out)
    }
}

/// Measures how evenly `counts` (items per server) are spread.
///
/// Returns `(min, max, max/mean)` — the last value is the *imbalance
/// factor*; 1.0 is perfect balance.
pub fn balance_stats(counts: &[usize]) -> (usize, usize, f64) {
    assert!(
        !counts.is_empty(),
        "balance_stats needs at least one server"
    );
    let min = *counts.iter().min().unwrap();
    let max = *counts.iter().max().unwrap();
    let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
    let factor = if mean > 0.0 { max as f64 / mean } else { 1.0 };
    (min, max, factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_kinds_are_deterministic_and_seed_sensitive() {
        for kind in HashKind::ALL {
            let a = kind.build(1);
            let b = kind.build(1);
            let c = kind.build(2);
            for key in [0u64, 1, 42, u64::MAX] {
                assert_eq!(
                    a.hash_u64(key),
                    b.hash_u64(key),
                    "{kind:?} not deterministic"
                );
                assert_ne!(
                    a.hash_u64(key),
                    c.hash_u64(key),
                    "{kind:?} ignores seed for key {key}"
                );
            }
        }
    }

    #[test]
    fn hash_u64_matches_bytes() {
        for kind in HashKind::ALL {
            let h = kind.build(7);
            assert_eq!(
                h.hash_u64(0xdead_beef),
                h.hash_bytes(&0xdead_beefu64.to_le_bytes())
            );
        }
    }

    #[test]
    fn hash_kinds_differ_from_each_other() {
        let key = 123456789u64;
        let mut seen = std::collections::HashSet::new();
        for kind in HashKind::ALL {
            assert!(
                seen.insert(kind.build(0).hash_u64(key)),
                "{kind:?} collides with another family"
            );
        }
    }

    #[test]
    fn balance_stats_basics() {
        let (min, max, f) = balance_stats(&[10, 10, 10, 10]);
        assert_eq!((min, max), (10, 10));
        assert!((f - 1.0).abs() < 1e-12);
        let (min, max, f) = balance_stats(&[0, 20]);
        assert_eq!((min, max), (0, 20));
        assert!((f - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn balance_stats_empty_panics() {
        balance_stats(&[]);
    }
}
