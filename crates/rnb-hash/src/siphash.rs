//! SipHash-c-d keyed hash, implemented from the reference specification
//! (Aumasson & Bernstein). Exposes SipHash-1-3 (the Rust standard
//! library's default) and SipHash-2-4 (the original parameters).

use crate::mix::{read_u64_le, sub_seed};
use crate::Hasher64;

/// SipHash with configurable compression (`C`) and finalization (`D`)
/// rounds.
#[derive(Debug, Clone, Copy)]
pub struct SipHasher {
    k0: u64,
    k1: u64,
    c_rounds: u32,
    d_rounds: u32,
}

impl SipHasher {
    /// SipHash-1-3 derived from a single `u64` seed.
    pub fn sip13(seed: u64) -> Self {
        SipHasher {
            k0: sub_seed(seed, 0),
            k1: sub_seed(seed, 1),
            c_rounds: 1,
            d_rounds: 3,
        }
    }

    /// SipHash-2-4 derived from a single `u64` seed.
    pub fn sip24(seed: u64) -> Self {
        SipHasher {
            k0: sub_seed(seed, 0),
            k1: sub_seed(seed, 1),
            c_rounds: 2,
            d_rounds: 4,
        }
    }

    /// SipHash-2-4 with an explicit 128-bit key, for known-answer tests.
    pub fn with_key_24(k0: u64, k1: u64) -> Self {
        SipHasher {
            k0,
            k1,
            c_rounds: 2,
            d_rounds: 4,
        }
    }

    fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = self.k0 ^ 0x736f_6d65_7073_6575;
        let mut v1 = self.k1 ^ 0x646f_7261_6e64_6f6d;
        let mut v2 = self.k0 ^ 0x6c79_6765_6e65_7261;
        let mut v3 = self.k1 ^ 0x7465_6462_7974_6573;

        let len = data.len();
        let mut offset = 0;
        while offset + 8 <= len {
            let m = read_u64_le(data, offset);
            v3 ^= m;
            for _ in 0..self.c_rounds {
                sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
            }
            v0 ^= m;
            offset += 8;
        }

        // Final block: remaining bytes plus the length in the top byte.
        let mut last = (len as u64) << 56;
        for (i, &b) in data[offset..].iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v3 ^= last;
        for _ in 0..self.c_rounds {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^= last;

        v2 ^= 0xff;
        for _ in 0..self.d_rounds {
            sip_round(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }
}

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl Hasher64 for SipHasher {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        self.hash(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors from the reference implementation:
    /// key = 000102...0f, messages = 00, 0001, 000102, ...
    #[test]
    fn sip24_reference_vectors() {
        let k0 = 0x0706_0504_0302_0100;
        let k1 = 0x0f0e_0d0c_0b0a_0908;
        let h = SipHasher::with_key_24(k0, k1);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31, // len 0
            0x74f8_39c5_93dc_67fd, // len 1
            0x0d6c_8009_d9a9_4f5a, // len 2
            0x8567_6696_d7fb_7e2d, // len 3
            0xcf27_94e0_2771_87b7, // len 4
            0x1876_5564_cd99_a68d, // len 5
            0xcbc9_466e_58fe_e3ce, // len 6
            0xab02_00f5_8b01_d137, // len 7
        ];
        let msg: Vec<u8> = (0..8u8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(h.hash(&msg[..len]), *want, "vector length {len}");
        }
    }

    #[test]
    fn sip24_longer_vector() {
        // len 8 crosses into the 8-byte block path.
        let h = SipHasher::with_key_24(0x0706_0504_0302_0100, 0x0f0e_0d0c_0b0a_0908);
        let msg: Vec<u8> = (0..8u8).collect();
        assert_eq!(h.hash(&msg), 0x93f5_f579_9a93_2462);
    }

    #[test]
    fn sip13_differs_from_sip24() {
        let a = SipHasher::sip13(9);
        let b = SipHasher::sip24(9);
        assert_ne!(a.hash_bytes(b"key"), b.hash_bytes(b"key"));
    }

    #[test]
    fn seeds_produce_independent_streams() {
        let a = SipHasher::sip13(1);
        let b = SipHasher::sip13(2);
        let collisions = (0..1000u64)
            .filter(|&i| a.hash_u64(i) == b.hash_u64(i))
            .count();
        assert_eq!(collisions, 0);
    }
}
