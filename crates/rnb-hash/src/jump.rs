//! Jump consistent hashing (Lamping & Veach, 2014) as a replica
//! placement.
//!
//! Not in the paper (it predates the algorithm's publication), but it is
//! the modern zero-memory alternative to the continuum: perfectly
//! balanced by construction, O(ln N) lookup, and minimal key movement on
//! growth — the same properties §IV's Ranged Consistent Hashing buys,
//! without the vnode table. Included for the placement ablation.

use crate::mix::sub_seed;
use crate::{ItemId, Placement, ServerId};

/// The jump consistent hash function: maps `key` to a bucket in
/// `0..buckets`.
pub fn jump_hash(mut key: u64, buckets: usize) -> u32 {
    assert!(buckets > 0, "need at least one bucket");
    let mut b: i64 = -1;
    let mut j: i64 = 0;
    while j < buckets as i64 {
        b = j;
        key = key.wrapping_mul(2862933555777941757).wrapping_add(1);
        // Take the high 31 bits as the mantissa source, as in the paper.
        j = ((b.wrapping_add(1) as f64) * ((1u64 << 31) as f64 / ((key >> 33) + 1) as f64)) as i64;
    }
    b as u32
}

/// `k`-replica placement by jump hashing with per-replica derived keys
/// and collision probing (replica 0 = distinguished copy, stable across
/// replication levels like the other placements).
pub struct JumpPlacement {
    num_servers: usize,
    replication: usize,
    seed: u64,
}

impl JumpPlacement {
    /// Build a jump placement.
    pub fn new(num_servers: usize, replication: usize, seed: u64) -> Self {
        assert!(num_servers > 0, "placement needs at least one server");
        assert!(replication >= 1, "replication must be at least 1");
        JumpPlacement {
            num_servers,
            replication,
            seed,
        }
    }
}

impl Placement for JumpPlacement {
    fn num_servers(&self) -> usize {
        self.num_servers
    }

    fn replication(&self) -> usize {
        self.replication
    }

    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        out.clear();
        let want = self.replication.min(self.num_servers);
        for r in 0..self.replication as u64 {
            let mut probe = 0u64;
            loop {
                let key = item ^ sub_seed(self.seed, r * 1009 + probe);
                let server = jump_hash(key, self.num_servers);
                if !out.contains(&server) {
                    out.push(server);
                    break;
                }
                probe += 1;
            }
            if out.len() == want {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance_stats;

    #[test]
    fn single_bucket_maps_everything_to_zero() {
        for key in [0u64, 1, u64::MAX] {
            assert_eq!(jump_hash(key, 1), 0);
        }
    }

    #[test]
    fn buckets_in_range_and_deterministic() {
        for key in 0..2000u64 {
            let b = jump_hash(key, 37);
            assert!(b < 37);
            assert_eq!(b, jump_hash(key, 37));
        }
    }

    #[test]
    fn near_perfect_balance() {
        let mut counts = vec![0usize; 16];
        for key in 0..80_000u64 {
            counts[jump_hash(key.wrapping_mul(0x9e37_79b9_7f4a_7c15), 16) as usize] += 1;
        }
        let (_, _, factor) = balance_stats(&counts);
        assert!(
            factor < 1.05,
            "jump hash should balance tightly, got {factor}"
        );
    }

    #[test]
    fn minimal_movement_on_growth() {
        // The defining property: growing from N to N+1 buckets moves keys
        // only *into* the new bucket.
        for n in [4usize, 16, 63] {
            let mut moved = 0;
            for key in 0..20_000u64 {
                let before = jump_hash(key, n);
                let after = jump_hash(key, n + 1);
                if before != after {
                    assert_eq!(after, n as u32, "key moved between old buckets");
                    moved += 1;
                }
            }
            // Expected ~ 20000/(n+1).
            let expect = 20_000 / (n + 1);
            assert!(
                (moved as i64 - expect as i64).unsigned_abs() < (expect as u64 / 2).max(100),
                "n={n}: moved {moved}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn placement_distinct_replicas_and_prefix_stability() {
        let p3 = JumpPlacement::new(16, 3, 5);
        let p5 = JumpPlacement::new(16, 5, 5);
        for item in 0..3000u64 {
            let r3 = p3.replicas(item);
            let mut sorted = r3.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replicas {r3:?}");
            assert_eq!(
                &p5.replicas(item)[..3],
                &r3[..],
                "prefix stability violated"
            );
        }
    }

    #[test]
    fn replication_capped_at_cluster() {
        let p = JumpPlacement::new(2, 6, 1);
        for item in 0..100u64 {
            let mut reps = p.replicas(item);
            reps.sort_unstable();
            assert_eq!(reps, vec![0, 1]);
        }
    }

    #[test]
    fn replica_balance() {
        let p = JumpPlacement::new(16, 3, 9);
        let mut counts = vec![0usize; 16];
        for item in 0..30_000u64 {
            for s in p.replicas(item) {
                counts[s as usize] += 1;
            }
        }
        let (_, _, factor) = balance_stats(&counts);
        assert!(factor < 1.05, "replica imbalance {factor}");
    }
}
