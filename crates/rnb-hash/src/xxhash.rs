//! xxHash64, implemented from the reference specification.

use crate::mix::{read_u32_le, read_u64_le};
use crate::Hasher64;

const PRIME64_1: u64 = 0x9e37_79b1_85eb_ca87;
const PRIME64_2: u64 = 0xc2b2_ae3d_27d4_eb4f;
const PRIME64_3: u64 = 0x1656_67b1_9e37_79f9;
const PRIME64_4: u64 = 0x85eb_ca77_c2b2_ae63;
const PRIME64_5: u64 = 0x27d4_eb2f_1656_67c5;

/// Seeded xxHash64 hasher. Matches the reference implementation's output
/// for any (seed, input) pair.
#[derive(Debug, Clone, Copy)]
pub struct XxHash64 {
    seed: u64,
}

impl XxHash64 {
    /// Create an xxHash64 hasher with the given seed.
    pub fn new(seed: u64) -> Self {
        XxHash64 { seed }
    }
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^ (h >> 32)
}

/// One-shot xxHash64 of `input` with `seed`.
pub fn xxh64(input: &[u8], seed: u64) -> u64 {
    let len = input.len();
    let mut h: u64;
    let mut offset = 0;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while offset + 32 <= len {
            v1 = round(v1, read_u64_le(input, offset));
            v2 = round(v2, read_u64_le(input, offset + 8));
            v3 = round(v3, read_u64_le(input, offset + 16));
            v4 = round(v4, read_u64_le(input, offset + 24));
            offset += 32;
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while offset + 8 <= len {
        h ^= round(0, read_u64_le(input, offset));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        offset += 8;
    }
    if offset + 4 <= len {
        h ^= (read_u32_le(input, offset) as u64).wrapping_mul(PRIME64_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        offset += 4;
    }
    while offset < len {
        h ^= (input[offset] as u64).wrapping_mul(PRIME64_5);
        h = h.rotate_left(11).wrapping_mul(PRIME64_1);
        offset += 1;
    }

    avalanche(h)
}

impl Hasher64 for XxHash64 {
    fn hash_bytes(&self, key: &[u8]) -> u64 {
        xxh64(key, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors from the reference xxHash implementation
    /// (`xxhsum` / the xxhash-rust and twox-hash test suites).
    #[test]
    fn xxh64_known_answers() {
        assert_eq!(xxh64(b"", 0), 0xef46_db37_51d8_e999);
        assert_eq!(xxh64(b"a", 0), 0xd24e_c4f1_a98c_6e5b);
        assert_eq!(xxh64(b"as", 0), 0x1c33_0fb2_d66b_e179);
        assert_eq!(xxh64(b"asd", 0), 0x631c_37ce_72a9_7393);
        assert_eq!(xxh64(b"asdf", 0), 0x4158_72f5_99ce_a71e);
        // Exercises the 32-byte stripe loop:
        assert_eq!(
            xxh64(
                b"Call me Ishmael. Some years ago--never mind how long precisely-",
                0
            ),
            0x02a2_e854_70d6_fd96
        );
    }

    #[test]
    fn xxh64_seeded_known_answer() {
        // Vector with a non-zero seed (from the twox-hash test suite).
        assert_eq!(xxh64(b"", 0xae05_4331_1b70_2d91), 0x4b6a_04fc_df7a_4672);
    }

    #[test]
    fn all_lengths_hash_without_panic_and_differ() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            assert!(
                seen.insert(xxh64(&data[..len], 1)),
                "collision at len {len}"
            );
        }
    }
}
