//! Consistent-hashing ring with virtual nodes (Karger et al., STOC '97),
//! the placement scheme memcached clients use and the baseline the paper
//! starts from.

use crate::{HashKind, Hasher64, ItemId, Placement, ServerId};

/// Default number of virtual nodes per server. 128 keeps the imbalance
/// factor under ~1.15 for the cluster sizes studied in the paper (≤ 4096).
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hashing ring.
///
/// Each server contributes `vnodes` points on the `u64` continuum; an item
/// is owned by the server whose point is the first at or clockwise of the
/// item's hash.
pub struct ConsistentHashRing {
    /// Sorted `(point, server)` pairs — the continuum.
    points: Vec<(u64, ServerId)>,
    num_servers: usize,
    vnodes: usize,
    hasher: Box<dyn Hasher64>,
    kind: HashKind,
    seed: u64,
}

impl ConsistentHashRing {
    /// Build a ring of `num_servers` servers with [`DEFAULT_VNODES`]
    /// virtual nodes each, hashing with `kind` seeded by `seed`.
    pub fn new(num_servers: usize, kind: HashKind, seed: u64) -> Self {
        Self::with_vnodes(num_servers, DEFAULT_VNODES, kind, seed)
    }

    /// Build a ring with an explicit virtual-node count.
    pub fn with_vnodes(num_servers: usize, vnodes: usize, kind: HashKind, seed: u64) -> Self {
        assert!(num_servers > 0, "ring needs at least one server");
        assert!(vnodes > 0, "ring needs at least one vnode per server");
        let hasher = kind.build(seed);
        let mut points = Vec::with_capacity(num_servers * vnodes);
        for server in 0..num_servers as ServerId {
            push_server_points(&mut points, &*hasher, server, vnodes);
        }
        points.sort_unstable();
        let mut ring = ConsistentHashRing {
            points,
            num_servers,
            vnodes,
            hasher,
            kind,
            seed,
        };
        ring.dedup_points();
        ring
    }

    fn dedup_points(&mut self) {
        // Ties on the continuum are broken towards the lower server id so
        // every client resolves them identically.
        self.points.dedup_by_key(|&mut (p, _)| p);
    }

    /// Number of servers on the ring.
    pub fn num_servers(&self) -> usize {
        self.num_servers
    }

    /// Virtual nodes per server.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Hash of an item on the continuum.
    pub fn point_of(&self, item: ItemId) -> u64 {
        self.hasher.hash_u64(item)
    }

    /// Index into `points` of the first point at or clockwise of `point`.
    fn successor_index(&self, point: u64) -> usize {
        match self.points.binary_search_by(|&(p, _)| p.cmp(&point)) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0 // wrap around
                } else {
                    i
                }
            }
        }
    }

    /// The server owning `item` (single-copy consistent hashing).
    pub fn server_for(&self, item: ItemId) -> ServerId {
        let idx = self.successor_index(self.point_of(item));
        self.points[idx].1
    }

    /// Walk the continuum clockwise starting at `item`'s point, yielding
    /// `(point_index, server)` pairs including duplicates. Used by
    /// [`crate::rch::RangedConsistentHash`].
    pub fn walk_from(&self, item: ItemId) -> ContinuumWalk<'_> {
        let start = self.successor_index(self.point_of(item));
        ContinuumWalk {
            ring: self,
            next: start,
            emitted: 0,
        }
    }

    /// Add one server (id = current `num_servers`) to the ring and return
    /// its id. Only the keys that land on the new server's arcs move — the
    /// consistent-hashing property the paper's deployability argument rests
    /// on.
    pub fn add_server(&mut self) -> ServerId {
        let server = self.num_servers as ServerId;
        push_server_points(&mut self.points, &*self.hasher, server, self.vnodes);
        self.points.sort_unstable();
        self.dedup_points();
        self.num_servers += 1;
        server
    }

    /// Hash kind used by this ring.
    pub fn hash_kind(&self) -> HashKind {
        self.kind
    }

    /// Seed used by this ring.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

fn push_server_points(
    points: &mut Vec<(u64, ServerId)>,
    hasher: &dyn Hasher64,
    server: ServerId,
    vnodes: usize,
) {
    let mut key = [0u8; 12];
    key[..4].copy_from_slice(&server.to_le_bytes());
    for vnode in 0..vnodes as u64 {
        key[4..].copy_from_slice(&vnode.to_le_bytes()[..8]);
        points.push((hasher.hash_bytes(&key), server));
    }
}

/// Iterator over continuum points clockwise from a start position.
pub struct ContinuumWalk<'a> {
    ring: &'a ConsistentHashRing,
    next: usize,
    emitted: usize,
}

impl Iterator for ContinuumWalk<'_> {
    type Item = ServerId;

    fn next(&mut self) -> Option<ServerId> {
        if self.emitted >= self.ring.points.len() {
            return None; // full lap completed
        }
        let (_, server) = self.ring.points[self.next];
        self.next = (self.next + 1) % self.ring.points.len();
        self.emitted += 1;
        Some(server)
    }
}

impl Placement for ConsistentHashRing {
    fn num_servers(&self) -> usize {
        self.num_servers
    }

    fn replication(&self) -> usize {
        1
    }

    fn replicas_into(&self, item: ItemId, out: &mut Vec<ServerId>) {
        out.clear();
        out.push(self.server_for(item));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_lookup() {
        let a = ConsistentHashRing::new(16, HashKind::XxHash64, 1);
        let b = ConsistentHashRing::new(16, HashKind::XxHash64, 1);
        for item in 0..1000 {
            assert_eq!(a.server_for(item), b.server_for(item));
        }
    }

    #[test]
    fn covers_all_servers() {
        let ring = ConsistentHashRing::new(16, HashKind::XxHash64, 2);
        let mut seen = std::collections::HashSet::new();
        for item in 0..10_000 {
            seen.insert(ring.server_for(item));
        }
        assert_eq!(seen.len(), 16, "some server owns no keys out of 10k");
    }

    #[test]
    fn reasonable_balance() {
        let ring = ConsistentHashRing::new(16, HashKind::XxHash64, 3);
        let mut counts = vec![0usize; 16];
        for item in 0..100_000 {
            counts[ring.server_for(item) as usize] += 1;
        }
        let (_, _, factor) = crate::balance_stats(&counts);
        assert!(
            factor < 1.35,
            "imbalance factor {factor} too high for 128 vnodes"
        );
    }

    #[test]
    fn add_server_moves_few_keys() {
        let mut ring = ConsistentHashRing::new(16, HashKind::XxHash64, 4);
        let before: HashMap<u64, ServerId> = (0..50_000).map(|i| (i, ring.server_for(i))).collect();
        let new_id = ring.add_server();
        assert_eq!(new_id, 16);
        let mut moved = 0;
        let mut moved_elsewhere = 0;
        for i in 0..50_000u64 {
            let after = ring.server_for(i);
            if after != before[&i] {
                moved += 1;
                if after != new_id {
                    moved_elsewhere += 1;
                }
            }
        }
        // Expected fraction moved ≈ 1/17 ≈ 5.9%; allow slack for vnode noise.
        assert!(moved < 50_000 / 10, "too many keys moved: {moved}");
        assert_eq!(moved_elsewhere, 0, "keys moved between old servers");
    }

    #[test]
    fn walk_visits_every_point_once() {
        let ring = ConsistentHashRing::with_vnodes(4, 8, HashKind::XxHash64, 5);
        let visited: Vec<ServerId> = ring.walk_from(42).collect();
        assert_eq!(visited.len(), ring.points.len());
    }

    #[test]
    fn single_server_owns_everything() {
        let ring = ConsistentHashRing::new(1, HashKind::Fnv1a, 6);
        for item in 0..100 {
            assert_eq!(ring.server_for(item), 0);
        }
    }

    #[test]
    fn placement_trait_single_replica() {
        let ring = ConsistentHashRing::new(8, HashKind::XxHash64, 7);
        let reps = ring.replicas(99);
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0], ring.server_for(99));
        assert_eq!(ring.distinguished(99), ring.server_for(99));
    }
}
