//! Store serving-path throughput: the shard-batched multi-get
//! (`Store::get_multi_into`, one lock per touched shard) against the
//! retained per-key seed path (`Store::get_multi_reference`, one lock
//! and one clock read per key) — the store-side analog of the paper's
//! per-transaction-overhead argument (§II).
//!
//! Beyond the Criterion smoke group, a grid sweep
//! (M ∈ {10, 100, 400}, shards ∈ {1, 8, 64}, value ∈ {10, 1024} bytes)
//! writes `BENCH_store.json` at the repo root (schema in
//! EXPERIMENTS.md), plus a reported-only pipelined loopback-TCP
//! throughput figure. Flags after `--`:
//!
//! * `--quick`   — reduced iteration budget (CI smoke).
//! * `--enforce` — exit non-zero if the checkpoint cell (M=100,
//!   shards=8, value=10) speeds up by less than 2×, or if the geometric
//!   mean *speedup over the reference path* regresses more than 10%
//!   against the committed `BENCH_store.json`. Speedup is a
//!   same-machine, same-budget ratio, so the gate is portable across CI
//!   hardware where absolute ns/request are not.
//!
//! Under `cargo test` (`--test` in argv) only the Criterion smoke pass
//! runs; the grid is skipped and the committed JSON is left untouched.

use criterion::{criterion_group, Criterion, Throughput};
use rnb_store::{GetScratch, Store, StoreServer};
use std::hint::black_box;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

/// Keyspace and request shapes for one cell: `4*m` keys, 8 rotating
/// request windows of `m` keys each, so consecutive requests touch
/// different (but overlapping) key sets like a real hot set.
struct CellData {
    store: Store,
    keys: Vec<Vec<u8>>,
    windows: Vec<Vec<usize>>,
}

fn cell_data(m: usize, shards: usize, vlen: usize) -> CellData {
    let store = Store::with_shards(64 << 20, shards);
    let nkeys = 4 * m;
    let keys: Vec<Vec<u8>> = (0..nkeys)
        .map(|i| format!("key-{i:05}").into_bytes())
        .collect();
    let value = vec![b'x'; vlen];
    for k in &keys {
        store.set(k, &value, 0, false);
    }
    let windows = (0..8)
        .map(|w| (0..m).map(|j| (w * m + j) % nkeys).collect())
        .collect();
    CellData {
        store,
        keys,
        windows,
    }
}

impl CellData {
    fn request(&self, i: usize) -> Vec<&[u8]> {
        self.windows[i % self.windows.len()]
            .iter()
            .map(|&idx| self.keys[idx].as_slice())
            .collect()
    }
}

fn bench_get_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/get_multi");
    let data = cell_data(100, 8, 10);
    let requests: Vec<Vec<&[u8]>> = (0..8).map(|i| data.request(i)).collect();
    group.throughput(Throughput::Elements(100));
    group.bench_function("reference_m100_s8", |b| {
        let mut i = 0;
        b.iter(|| {
            let out = data.store.get_multi_reference(black_box(&requests[i % 8]));
            i += 1;
            black_box(out.len())
        })
    });
    group.bench_function("batched_m100_s8", |b| {
        let mut scratch = GetScratch::new();
        let mut out = Vec::new();
        let mut i = 0;
        b.iter(|| {
            let req = black_box(&requests[i % 8]);
            let hits = data
                .store
                .get_multi_with(&mut scratch, req.len(), |j| req[j], &mut out);
            i += 1;
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_get_multi);

// ---------------------------------------------------------------------
// Grid sweep: reference vs batched multi-get, emitted as BENCH_store.json.
// ---------------------------------------------------------------------

const GRID_M: &[usize] = &[10, 100, 400];
const GRID_SHARDS: &[usize] = &[1, 8, 64];
const GRID_VLEN: &[usize] = &[10, 1024];

/// The acceptance checkpoint cell: the batched path must beat the
/// per-key reference by at least this factor at M=100, 8 shards,
/// 10-byte values (the paper's micro-benchmark value size).
const CHECKPOINT: (usize, usize, usize) = (100, 8, 10);
const MIN_CHECKPOINT_SPEEDUP: f64 = 2.0;
/// `--enforce`: maximum tolerated geometric-mean speedup regression
/// against the committed baseline JSON.
const MAX_REGRESSION: f64 = 1.10;

/// Where the committed baseline lives (repo root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");

struct Cell {
    m: usize,
    shards: usize,
    vlen: usize,
    ref_ns: f64,
    batched_ns: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!("m{}_s{}_v{}", self.m, self.shards, self.vlen)
    }

    fn speedup(&self) -> f64 {
        self.ref_ns / self.batched_ns
    }
}

/// Mean ns per call of `f` over `rounds` calls, after `warmup` untimed
/// calls (pool growth, caches, branch predictors).
fn time_ns_per_call(warmup: usize, rounds: usize, mut f: impl FnMut(usize) -> usize) -> f64 {
    for i in 0..warmup {
        black_box(f(i));
    }
    let start = Instant::now();
    for i in 0..rounds {
        black_box(f(i));
    }
    start.elapsed().as_nanos() as f64 / rounds as f64
}

fn run_cell(m: usize, shards: usize, vlen: usize, quick: bool) -> Cell {
    let data = cell_data(m, shards, vlen);
    let requests: Vec<Vec<&[u8]>> = (0..8).map(|i| data.request(i)).collect();
    let full = (1_000_000 / m).max(500);
    let rounds = if quick { (full / 8).max(100) } else { full };
    let warmup = (rounds / 10).max(50);
    // Seed path: one shard-lock acquisition and one clock read per key.
    let ref_ns = time_ns_per_call(warmup, rounds, |i| {
        data.store
            .get_multi_reference(&requests[i % requests.len()])
            .len()
    });
    // Batched path: pooled scratch, one lock per touched shard.
    let mut scratch = GetScratch::new();
    let mut out = Vec::new();
    let batched_ns = time_ns_per_call(warmup, rounds, |i| {
        let req = &requests[i % requests.len()];
        data.store
            .get_multi_with(&mut scratch, req.len(), |j| req[j], &mut out)
    });
    Cell {
        m,
        shards,
        vlen,
        ref_ns,
        batched_ns,
    }
}

/// Pipelined multi-get over loopback TCP (reported, not gated: wire
/// numbers mix in kernel/socket costs that vary across CI machines).
/// One connection, `depth` in-flight 100-key gets per batch.
fn run_tcp(quick: bool) -> std::io::Result<(usize, f64)> {
    const M: usize = 100;
    const DEPTH: usize = 32;
    let store = Arc::new(Store::new(64 << 20));
    let keys: Vec<Vec<u8>> = (0..M).map(|i| format!("key-{i:05}").into_bytes()).collect();
    for k in &keys {
        store.set(k, &[b'x'; 10], 0, false);
    }
    let server = StoreServer::start(store)?;
    let mut conn = TcpStream::connect(server.addr())?;
    conn.set_nodelay(true)?;

    let mut get_line = b"get".to_vec();
    for k in &keys {
        get_line.push(b' ');
        get_line.extend_from_slice(k);
    }
    get_line.extend_from_slice(b"\r\n");
    let batch: Vec<u8> = get_line.repeat(DEPTH);

    let rounds = if quick { 20 } else { 200 };
    let mut buf = vec![0u8; 256 * 1024];
    let mut run_batch = || -> std::io::Result<()> {
        conn.write_all(&batch)?;
        let mut ends = 0usize;
        let mut tail: Vec<u8> = Vec::new();
        while ends < DEPTH {
            let n = conn.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            // Count END markers, carrying a 4-byte seam between reads.
            tail.extend_from_slice(&buf[..n]);
            ends += tail.windows(5).filter(|w| w == b"END\r\n").count();
            let keep = tail.len().min(4);
            tail.drain(..tail.len() - keep);
        }
        Ok(())
    };
    // Warmup.
    for _ in 0..2 {
        run_batch()?;
    }
    let start = Instant::now();
    for _ in 0..rounds {
        run_batch()?;
    }
    let secs = start.elapsed().as_secs_f64();
    let items = (rounds * DEPTH * M) as f64;
    Ok((M, items / secs))
}

fn render_json(cells: &[Cell], tcp: Option<(usize, f64)>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"store\",\n  \"unit\": \"ns_per_request\",\n");
    let cp = cells
        .iter()
        .find(|c| (c.m, c.shards, c.vlen) == CHECKPOINT)
        .expect("checkpoint cell is in the grid");
    out.push_str(&format!(
        "  \"checkpoint\": {{ \"cell\": \"{}\", \"speedup\": {:.2} }},\n",
        cp.key(),
        cp.speedup()
    ));
    if let Some((m, items_per_sec)) = tcp {
        out.push_str(&format!(
            "  \"tcp_pipelined\": {{ \"m\": {m}, \"depth\": 32, \"items_per_sec\": {:.0} }},\n",
            items_per_sec
        ));
    }
    out.push_str("  \"grid\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"m\": {}, \"shards\": {}, \"vlen\": {}, \
             \"ref_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.2} }}{sep}\n",
            c.key(),
            c.m,
            c.shards,
            c.vlen,
            c.ref_ns,
            c.batched_ns,
            c.speedup()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull the grid `speedup` per cell out of a previously emitted JSON
/// file. Each grid entry is written on one line, so a line-oriented scan
/// is a faithful parser for files this bench produced. (The checkpoint
/// and tcp lines have no `ref_ns`, so they are skipped.)
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(cell_at) = line.find("\"cell\": \"") else {
            continue;
        };
        let rest = &line[cell_at + 9..];
        let Some(cell_end) = rest.find('"') else {
            continue;
        };
        let cell = rest[..cell_end].to_string();
        if !line.contains("\"ref_ns\": ") {
            continue;
        }
        let Some(at) = line.find("\"speedup\": ") else {
            continue;
        };
        let num = &line[at + 11..];
        let end = num.find([',', ' ', '}']).unwrap_or(num.len());
        if let Ok(speedup) = num[..end].parse::<f64>() {
            out.push((cell, speedup));
        }
    }
    out
}

/// Returns `true` when every enforced gate passed.
fn run_grid(quick: bool, enforce: bool) -> bool {
    let baseline = std::fs::read_to_string(JSON_PATH)
        .ok()
        .map(|t| parse_baseline(&t));

    let mut cells = Vec::new();
    println!("\n[store grid] per-key reference get_multi vs shard-batched path");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "cell", "ref ns", "batched ns", "speedup"
    );
    for &m in GRID_M {
        for &shards in GRID_SHARDS {
            for &vlen in GRID_VLEN {
                let cell = run_cell(m, shards, vlen, quick);
                println!(
                    "{:<16} {:>12.1} {:>12.1} {:>8.2}x",
                    cell.key(),
                    cell.ref_ns,
                    cell.batched_ns,
                    cell.speedup()
                );
                cells.push(cell);
            }
        }
    }

    let tcp = match run_tcp(quick) {
        Ok((m, items_per_sec)) => {
            println!("[store grid] tcp pipelined m={m} depth=32: {items_per_sec:.0} items/s");
            Some((m, items_per_sec))
        }
        Err(e) => {
            eprintln!("[store grid] tcp section failed (reported only): {e}");
            None
        }
    };

    let json = render_json(&cells, tcp);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => println!("[store grid] wrote {JSON_PATH}"),
        Err(e) => eprintln!("[store grid] could not write {JSON_PATH}: {e}"),
    }

    let mut failed = false;
    let cp = cells
        .iter()
        .find(|c| (c.m, c.shards, c.vlen) == CHECKPOINT)
        .expect("checkpoint cell is in the grid");
    println!(
        "[store grid] checkpoint {}: {:.2}x (floor {MIN_CHECKPOINT_SPEEDUP}x)",
        cp.key(),
        cp.speedup()
    );
    if enforce && cp.speedup() < MIN_CHECKPOINT_SPEEDUP {
        eprintln!(
            "[store grid] FAIL: checkpoint speedup {:.2}x below the {MIN_CHECKPOINT_SPEEDUP}x floor",
            cp.speedup()
        );
        failed = true;
    }

    if let Some(base) = baseline {
        // Geometric-mean ratio of baseline speedup to current speedup
        // over cells present in both runs: > 1 means the batched path's
        // edge over the reference shrank. Speedups are same-machine
        // ratios, so this survives hardware differences between the
        // committing machine and CI; the geo-mean is robust to
        // single-cell noise.
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for cell in &cells {
            if let Some((_, base_speedup)) = base.iter().find(|(key, _)| *key == cell.key()) {
                log_sum += (base_speedup / cell.speedup()).ln();
                count += 1;
            }
        }
        if count > 0 {
            let ratio = (log_sum / count as f64).exp();
            println!(
                "[store grid] baseline/current speedup (geo-mean over {count} cells): {ratio:.3}x"
            );
            if enforce && ratio > MAX_REGRESSION {
                eprintln!(
                    "[store grid] FAIL: batched-path speedup regressed {:.1}% vs committed baseline (limit {:.0}%)",
                    (ratio - 1.0) * 100.0,
                    (MAX_REGRESSION - 1.0) * 100.0
                );
                failed = true;
            }
        }
    } else {
        println!("[store grid] no committed baseline at {JSON_PATH}; skipping regression gate");
    }

    !failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    benches();
    if args.iter().any(|a| a == "--test") {
        // `cargo test` smoke pass: Criterion already ran each body once;
        // skip the timed grid so test runs stay fast and the committed
        // BENCH_store.json is never clobbered by an unrepresentative run.
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let enforce = args.iter().any(|a| a == "--enforce");
    if run_grid(quick, enforce) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
