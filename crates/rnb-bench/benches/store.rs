//! Store serving-path throughput: the shard-batched multi-get
//! (`Store::get_multi_into`, one lock per touched shard) against the
//! retained per-key seed path (`Store::get_multi_reference`, one lock
//! and one clock read per key) — the store-side analog of the paper's
//! per-transaction-overhead argument (§II).
//!
//! Beyond the Criterion smoke group, a grid sweep
//! (M ∈ {10, 100, 400}, shards ∈ {1, 8, 64}, value ∈ {10, 1024} bytes)
//! writes `BENCH_store.json` at the repo root (schema in
//! EXPERIMENTS.md), plus a **write sweep** (write fraction ∈
//! {0, 0.1, 0.5, 1.0}, 100-item bursts) pitting the sequential per-txn
//! [`Store::set`] loop against the shard-batched
//! [`Store::set_multi_with`], plus a pipelined loopback-TCP throughput
//! figure (gated only when the committed `"cores"` matches this
//! machine), plus a **contended** sweep
//! (threads ∈ {1,2,4,8} × {uniform, zipf}) pitting the mutex-only store
//! ([`HotConfig::disabled`]) against the flat-combining replicated hot
//! shards. Flags after `--`:
//!
//! * `--quick`   — reduced iteration budget (CI smoke).
//! * `--enforce` — exit non-zero if the checkpoint cell (M=100,
//!   shards=8, value=10) speeds up by less than 2×, if the write
//!   checkpoint (the pure-burst write-fraction-1.0 cell) speeds up by
//!   less than 2×, or if
//!   the geometric mean *speedup over the reference path* (grid or
//!   write cells) regresses more than 10% against the committed
//!   `BENCH_store.json`. Speedup is a same-machine, same-budget ratio,
//!   so the gate is portable across CI hardware where absolute
//!   ns/request are not. Contended gates are parallelism-conditional:
//!   the full 3× Zipf-8-thread requirement applies on ≥ 8 cores, a
//!   collapse floor elsewhere, and the baseline comparison only fires
//!   when the committed `"cores"` matches the current machine.
//!
//! Under `cargo test` (`--test` in argv) only the Criterion smoke pass
//! runs; the grid is skipped and the committed JSON is left untouched.

use criterion::{criterion_group, Criterion, Throughput};
use rnb_store::{Clock, GetScratch, HotConfig, SetEntry, Store, StoreServer};
use rnb_workload::{Op, ReadWriteMix, RequestStream, UniformRequests, ZipfRequests};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Keyspace and request shapes for one cell: `4*m` keys, 8 rotating
/// request windows of `m` keys each, so consecutive requests touch
/// different (but overlapping) key sets like a real hot set.
struct CellData {
    store: Store,
    keys: Vec<Vec<u8>>,
    windows: Vec<Vec<usize>>,
}

fn cell_data(m: usize, shards: usize, vlen: usize) -> CellData {
    // Hot-shard promotion is pinned off: this grid isolates batched vs
    // per-key locking on the plain mutex store (the 1-shard cells would
    // otherwise cross the default promote threshold mid-run and start
    // measuring the replica path — that comparison lives in the
    // contended sweep below).
    let store = Store::with_config(64 << 20, shards, Clock::real(), HotConfig::disabled());
    let nkeys = 4 * m;
    let keys: Vec<Vec<u8>> = (0..nkeys)
        .map(|i| format!("key-{i:05}").into_bytes())
        .collect();
    let value = vec![b'x'; vlen];
    for k in &keys {
        store.set(k, &value, 0, false);
    }
    let windows = (0..8)
        .map(|w| (0..m).map(|j| (w * m + j) % nkeys).collect())
        .collect();
    CellData {
        store,
        keys,
        windows,
    }
}

impl CellData {
    fn request(&self, i: usize) -> Vec<&[u8]> {
        self.windows[i % self.windows.len()]
            .iter()
            .map(|&idx| self.keys[idx].as_slice())
            .collect()
    }
}

fn bench_get_multi(c: &mut Criterion) {
    let mut group = c.benchmark_group("store/get_multi");
    let data = cell_data(100, 8, 10);
    let requests: Vec<Vec<&[u8]>> = (0..8).map(|i| data.request(i)).collect();
    group.throughput(Throughput::Elements(100));
    group.bench_function("reference_m100_s8", |b| {
        let mut i = 0;
        b.iter(|| {
            let out = data.store.get_multi_reference(black_box(&requests[i % 8]));
            i += 1;
            black_box(out.len())
        })
    });
    group.bench_function("batched_m100_s8", |b| {
        let mut scratch = GetScratch::new();
        let mut out = Vec::new();
        let mut i = 0;
        b.iter(|| {
            let req = black_box(&requests[i % 8]);
            let hits = data
                .store
                .get_multi_with(&mut scratch, req.len(), |j| req[j], &mut out);
            i += 1;
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_get_multi);

// ---------------------------------------------------------------------
// Grid sweep: reference vs batched multi-get, emitted as BENCH_store.json.
// ---------------------------------------------------------------------

const GRID_M: &[usize] = &[10, 100, 400];
const GRID_SHARDS: &[usize] = &[1, 8, 64];
const GRID_VLEN: &[usize] = &[10, 1024];

/// The acceptance checkpoint cell: the batched path must beat the
/// per-key reference by at least this factor at M=100, 8 shards,
/// 10-byte values (the paper's micro-benchmark value size).
const CHECKPOINT: (usize, usize, usize) = (100, 8, 10);
const MIN_CHECKPOINT_SPEEDUP: f64 = 2.0;
/// `--enforce`: maximum tolerated geometric-mean speedup regression
/// against the committed baseline JSON.
const MAX_REGRESSION: f64 = 1.10;

/// Where the committed baseline lives (repo root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");

struct Cell {
    m: usize,
    shards: usize,
    vlen: usize,
    ref_ns: f64,
    batched_ns: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!("m{}_s{}_v{}", self.m, self.shards, self.vlen)
    }

    fn speedup(&self) -> f64 {
        self.ref_ns / self.batched_ns
    }
}

/// Mean ns per call of `f` over `rounds` calls, after `warmup` untimed
/// calls (pool growth, caches, branch predictors).
fn time_ns_per_call(warmup: usize, rounds: usize, mut f: impl FnMut(usize) -> usize) -> f64 {
    for i in 0..warmup {
        black_box(f(i));
    }
    let start = Instant::now();
    for i in 0..rounds {
        black_box(f(i));
    }
    start.elapsed().as_nanos() as f64 / rounds as f64
}

fn run_cell(m: usize, shards: usize, vlen: usize, quick: bool) -> Cell {
    let data = cell_data(m, shards, vlen);
    let requests: Vec<Vec<&[u8]>> = (0..8).map(|i| data.request(i)).collect();
    let full = (1_000_000 / m).max(500);
    // The checkpoint cell is hard-gated at 2x, so it always runs at the
    // full budget: the quick trim's 8x-smaller sample is noisy enough on
    // busy CI boxes to dip a ~2.1x cell under the floor spuriously.
    let gated = (m, shards, vlen) == CHECKPOINT;
    let rounds = if quick && !gated {
        (full / 8).max(100)
    } else {
        full
    };
    let warmup = (rounds / 10).max(50);
    // Seed path: one shard-lock acquisition and one clock read per key.
    let ref_ns = time_ns_per_call(warmup, rounds, |i| {
        data.store
            .get_multi_reference(&requests[i % requests.len()])
            .len()
    });
    // Batched path: pooled scratch, one lock per touched shard.
    let mut scratch = GetScratch::new();
    let mut out = Vec::new();
    let batched_ns = time_ns_per_call(warmup, rounds, |i| {
        let req = &requests[i % requests.len()];
        data.store
            .get_multi_with(&mut scratch, req.len(), |j| req[j], &mut out)
    });
    Cell {
        m,
        shards,
        vlen,
        ref_ns,
        batched_ns,
    }
}

// ---------------------------------------------------------------------
// Write sweep: sequential per-txn sets vs shard-batched set_multi.
// ---------------------------------------------------------------------

/// Swept write fractions (per-op probability of a write burst). The
/// 1.0 row is the pure-burst cell: every op is a write burst, so it
/// isolates the write path (no read dilution) — that row is the gated
/// write checkpoint. Mixed rows are reported (and regression-gated
/// against the committed baseline) to show how much of the op-level win
/// survives read dilution.
const WRITE_FRACTIONS: &[f64] = &[0.0, 0.1, 0.5, 1.0];
/// Items per write burst — the shape `RnbClient::multi_set` hands the
/// store, matching the grid's checkpoint request size.
const WRITE_BURST: usize = 100;
/// The gated cell: on pure write bursts the batched write path must
/// beat the sequential per-txn set loop by this factor.
const WRITE_CHECKPOINT_FRACTION: f64 = 1.0;
const MIN_WRITE_CHECKPOINT_SPEEDUP: f64 = 2.0;

struct WriteCell {
    write_fraction: f64,
    seq_ns: f64,
    batched_ns: f64,
}

impl WriteCell {
    fn key(&self) -> String {
        format!("wf{:02}", (self.write_fraction * 100.0).round() as usize)
    }

    fn speedup(&self) -> f64 {
        self.seq_ns / self.batched_ns
    }
}

/// One write-sweep cell: a mixed read/write op stream over the
/// checkpoint keyspace (M=100, 8 shards, 10-byte values), replayed
/// identically through two arms that differ only in how a write burst
/// hits the store — a sequential [`Store::set`] loop (one lock + one
/// clock read per key) vs one [`Store::set_multi_with`] call (one lock +
/// one clock read per touched shard). Reads use the batched get path in
/// both arms.
fn run_write_cell(write_fraction: f64, quick: bool) -> WriteCell {
    const M: usize = 100;
    const VLEN: usize = 10;
    let data = cell_data(M, 8, VLEN);
    let nkeys = data.keys.len();
    let value = vec![b'y'; VLEN];

    let full = 10_000usize;
    let gated = write_fraction == WRITE_CHECKPOINT_FRACTION;
    let rounds = if quick && !gated {
        (full / 8).max(100)
    } else {
        full
    };
    let warmup = (rounds / 10).max(50);

    // Pre-generate one op sequence and replay it through both arms, so
    // the arms time identical work. `ReadWriteMix` rejects a fraction of
    // 1.0 (it would starve the read stream), so the pure-burst
    // checkpoint row cycles the cell's request windows as bursts
    // directly — same keys and burst size as the grid checkpoint.
    let ops: Vec<Op> = if write_fraction >= 1.0 {
        data.windows
            .iter()
            .map(|w| Op::WriteBurst(w.iter().map(|&idx| idx as u64).collect()))
            .collect()
    } else {
        let reads = UniformRequests::new(nkeys as u64, M, 11);
        ReadWriteMix::new(reads, nkeys as u64, write_fraction, 13)
            .with_write_burst(WRITE_BURST)
            .take_ops(warmup + rounds)
    };

    let mut scratch = GetScratch::new();
    let mut out = Vec::new();

    // Sequential arm: every item in a burst is its own transaction.
    let seq_ns = time_ns_per_call(warmup, rounds, |i| match &ops[i % ops.len()] {
        Op::Read(req) => data.store.get_multi_with(
            &mut scratch,
            req.len(),
            |j| data.keys[req[j] as usize].as_slice(),
            &mut out,
        ),
        Op::Write(item) => {
            data.store.set(&data.keys[*item as usize], &value, 0, false);
            1
        }
        Op::WriteBurst(items) => {
            for &item in items {
                data.store.set(&data.keys[item as usize], &value, 0, false);
            }
            items.len()
        }
    });

    // Batched arm: the burst goes through the shard-batched store write.
    let mut outcomes = Vec::new();
    let batched_ns = time_ns_per_call(warmup, rounds, |i| match &ops[i % ops.len()] {
        Op::Read(req) => data.store.get_multi_with(
            &mut scratch,
            req.len(),
            |j| data.keys[req[j] as usize].as_slice(),
            &mut out,
        ),
        Op::Write(item) => {
            data.store.set(&data.keys[*item as usize], &value, 0, false);
            1
        }
        Op::WriteBurst(items) => {
            data.store.set_multi_with(
                &mut scratch,
                items.len(),
                |j| SetEntry {
                    key: &data.keys[items[j] as usize],
                    value: &value,
                    flags: 0,
                    pinned: false,
                    ttl: None,
                },
                &mut outcomes,
            );
            items.len()
        }
    });

    WriteCell {
        write_fraction,
        seq_ns,
        batched_ns,
    }
}

fn run_writes(quick: bool) -> Vec<WriteCell> {
    let mut cells = Vec::new();
    println!("\n[store writes] sequential per-txn sets vs shard-batched set_multi (ns/op, mixed)");
    println!(
        "{:<8} {:>12} {:>12} {:>9}",
        "cell", "seq ns", "batched ns", "speedup"
    );
    for &frac in WRITE_FRACTIONS {
        let cell = run_write_cell(frac, quick);
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>8.2}x",
            cell.key(),
            cell.seq_ns,
            cell.batched_ns,
            cell.speedup()
        );
        cells.push(cell);
    }
    cells
}

/// Keys-per-get and pipeline depth of the loopback-TCP probe.
const TCP_M: usize = 100;
const TCP_DEPTH: usize = 32;

/// A populated server for the TCP probe ([`TCP_M`] 10-byte values).
fn probe_server() -> std::io::Result<StoreServer> {
    let store = Arc::new(Store::new(64 << 20));
    for i in 0..TCP_M {
        store.set(format!("key-{i:05}").as_bytes(), &[b'x'; 10], 0, false);
    }
    StoreServer::start(store)
}

/// Pipelined multi-get items/sec against an already-running server: one
/// connection, [`TCP_DEPTH`] in-flight [`TCP_M`]-key gets per batch.
fn tcp_probe(addr: SocketAddr) -> std::io::Result<f64> {
    const M: usize = TCP_M;
    const DEPTH: usize = TCP_DEPTH;
    let keys: Vec<Vec<u8>> = (0..M).map(|i| format!("key-{i:05}").into_bytes()).collect();
    let mut conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;

    let mut get_line = b"get".to_vec();
    for k in &keys {
        get_line.push(b' ');
        get_line.extend_from_slice(k);
    }
    get_line.extend_from_slice(b"\r\n");
    let batch: Vec<u8> = get_line.repeat(DEPTH);

    // Always the full 200 rounds, even under --quick: the probe's
    // absolute items/sec feeds the cores-conditional tcp_pipelined
    // gate, and a 20-round trim measures ~40% slower than the committed
    // full-budget figure (startup and first-burst effects dominate a
    // ~20ms window), tripping the gate spuriously. Same rule as the
    // gated grid/write checkpoint cells; the probe costs < 1s.
    let rounds = 200;
    let mut buf = vec![0u8; 256 * 1024];
    let mut run_batch = || -> std::io::Result<()> {
        conn.write_all(&batch)?;
        let mut ends = 0usize;
        let mut tail: Vec<u8> = Vec::new();
        while ends < DEPTH {
            let n = conn.read(&mut buf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed mid-response",
                ));
            }
            // Count END markers, carrying a 4-byte seam between reads.
            tail.extend_from_slice(&buf[..n]);
            ends += tail.windows(5).filter(|w| w == b"END\r\n").count();
            let keep = tail.len().min(4);
            tail.drain(..tail.len() - keep);
        }
        Ok(())
    };
    // Warmup.
    for _ in 0..2 {
        run_batch()?;
    }
    let start = Instant::now();
    for _ in 0..rounds {
        run_batch()?;
    }
    let secs = start.elapsed().as_secs_f64();
    let items = (rounds * DEPTH * M) as f64;
    Ok(items / secs)
}

/// Pipelined multi-get over loopback TCP on a fresh, otherwise idle
/// server (reported plus a hardware-conditional baseline gate: absolute
/// wire numbers mix in kernel/socket costs, so the committed figure is
/// only compared when the committed `"cores"` matches this machine).
fn run_tcp(quick: bool) -> std::io::Result<(usize, f64)> {
    let server = probe_server()?;
    Ok((TCP_M, tcp_probe(server.addr())?))
}

// ---------------------------------------------------------------------
// Concurrent-connections axis: the pipelined probe while the server
// also holds 0 / 1024 / 10000 idle connections — C10K as a bench cell.
// ---------------------------------------------------------------------

/// Idle-connection counts swept (the 10000 cell is the ISSUE acceptance
/// criterion: a readiness-multiplexed server holds C10K on a fixed
/// thread budget; a thread-per-connection server would need 10k stacks).
const IDLE_CONNS: &[usize] = &[0, 1024, 10_000];
/// Idle sockets per helper child process. The client halves live in
/// children because this process already holds the server halves: 2 fds
/// per connection in one process would double the rlimit bill.
const IDLE_CHILD_CHUNK: usize = 2_500;
/// File descriptors reserved for everything that is not an idle server
/// socket (listener, probe, child pipes, stdio, slack).
const FD_MARGIN: usize = 512;
/// `--enforce`: throughput with 10k idle connections parked must stay
/// above this fraction of the 0-idle figure. A same-run, same-machine
/// ratio, so the gate is portable. The floor is generous because a
/// burst that drains between batches pays a sweep-detection latency
/// (bounded by the poller's max park) before the next batch is noticed
/// — observed cost is ~0.5-0.7x, a collapse to thread-per-connection
/// levels would be far below this.
const MIN_IDLE_RATIO: f64 = 0.35;
/// `--enforce`, cores-matching only: the probe may not fall more than
/// this factor below the committed `tcp_pipelined` items/sec.
const MAX_TCP_REGRESSION: f64 = 1.25;

struct ConnectionsCell {
    idle: usize,
    items_per_sec: f64,
    /// Connections the server actually saw live during the probe.
    live_conns: usize,
    /// Server OS threads while holding them (accept + poll + workers).
    threads: usize,
}

impl ConnectionsCell {
    fn key(&self) -> String {
        format!("idle{}", self.idle)
    }
}

/// Soft fd rlimit from `/proc/self/limits` (None off Linux — the sweep
/// then assumes the default cells fit and reports any spawn failure).
fn fd_soft_limit() -> Option<usize> {
    let text = std::fs::read_to_string("/proc/self/limits").ok()?;
    text.lines()
        .find(|l| l.starts_with("Max open files"))?
        .split_whitespace()
        .nth(3)?
        .parse()
        .ok()
}

/// Spawn helper processes that each hold a chunk of idle client sockets
/// against `addr`, returning once every child reported its sockets up.
fn spawn_idle_clients(addr: SocketAddr, total: usize) -> std::io::Result<Vec<Child>> {
    let exe = std::env::current_exe()?;
    let mut children = Vec::new();
    let mut remaining = total;
    while remaining > 0 {
        let chunk = remaining.min(IDLE_CHILD_CHUNK);
        remaining -= chunk;
        children.push(
            Command::new(&exe)
                .arg("--idle-client")
                .arg(addr.to_string())
                .arg(chunk.to_string())
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()?,
        );
    }
    // Each child prints one "ready <n>" line once all its sockets are
    // connected; a short/err read means it died (e.g. fd exhaustion).
    for child in &mut children {
        let Some(out) = child.stdout.take() else {
            return Err(std::io::Error::other("idle-client child has no stdout"));
        };
        let mut line = String::new();
        BufReader::new(out).read_line(&mut line)?;
        if !line.starts_with("ready") {
            return Err(std::io::Error::other(format!(
                "idle-client child failed: {line:?}"
            )));
        }
    }
    Ok(children)
}

/// Child-process mode: hold `count` idle connections open until the
/// parent closes our stdin, then exit. Never prints to stdout except the
/// single readiness line the parent waits for.
fn idle_client_main(addr: &str, count: usize) -> ExitCode {
    let mut conns = Vec::with_capacity(count);
    for _ in 0..count {
        let mut attempts = 0u32;
        loop {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    conns.push(s);
                    break;
                }
                // Transient listen-backlog overflow under a connect
                // storm: yield and redial, bounded.
                Err(e) => {
                    attempts += 1;
                    if attempts > 1_000_000 {
                        eprintln!("idle-client: connect {addr} failed: {e}");
                        return ExitCode::FAILURE;
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
    println!("ready {}", conns.len());
    let _ = std::io::stdout().flush();
    let mut buf = [0u8; 64];
    while matches!(std::io::stdin().read(&mut buf), Ok(n) if n > 0) {}
    ExitCode::SUCCESS
}

fn run_connections(quick: bool) -> std::io::Result<Vec<ConnectionsCell>> {
    let budget = fd_soft_limit();
    let mut cells = Vec::new();
    println!("\n[store connections] pipelined probe with idle connections parked");
    println!(
        "{:<12} {:>10} {:>16} {:>8}",
        "cell", "live", "items/s", "threads"
    );
    for &target in IDLE_CONNS {
        // The server side of every idle socket is an fd in this process.
        let idle = match budget {
            Some(limit) if target + FD_MARGIN > limit => {
                let idle = limit.saturating_sub(FD_MARGIN);
                println!(
                    "[store connections] fd soft limit {limit}: shrinking idle cell \
                     {target} -> {idle} (cell key keeps the actual count)"
                );
                idle
            }
            _ => target,
        };
        let server = probe_server()?;
        let children = if idle > 0 {
            spawn_idle_clients(server.addr(), idle)?
        } else {
            Vec::new()
        };
        // The children's sockets are connected, but registration runs
        // through the accept thread; wait for the poller to own them.
        let mut spins = 0u64;
        while server.live_connections() < idle {
            spins += 1;
            if spins > 200_000_000 {
                return Err(std::io::Error::other(format!(
                    "server registered only {}/{idle} idle connections",
                    server.live_connections()
                )));
            }
            std::thread::yield_now();
        }
        let items_per_sec = tcp_probe(server.addr())?;
        let cell = ConnectionsCell {
            idle,
            items_per_sec,
            live_conns: server.live_connections(),
            threads: server.thread_count(),
        };
        println!(
            "{:<12} {:>10} {:>16.0} {:>8}",
            cell.key(),
            cell.live_conns,
            cell.items_per_sec,
            cell.threads
        );
        cells.push(cell);
        // Closing stdin releases each child; reap them before the next
        // cell so their sockets (and fds) are really gone.
        for mut child in children {
            drop(child.stdin.take());
            let _ = child.wait();
        }
    }
    Ok(cells)
}

/// Reader-thread counts swept by the contended section.
const CONTENDED_THREADS: &[usize] = &[1, 2, 4, 8];
/// Keys per request (matches the paper's M=100 micro-benchmark shape).
const CONTENDED_M: usize = 100;
/// Key universe for the contended cells.
const CONTENDED_KEYS: usize = 16_384;
/// Shard count: small enough that a Zipf head concentrates on one shard.
const CONTENDED_SHARDS: usize = 8;
/// Zipf exponent for the skewed arm (top 1% of ids ≫ half the draws).
const ZIPF_EXPONENT: f64 = 1.3;
/// One set per this many multi-get rounds (exercises the combiner;
/// roughly the paper's 1-set-per-1000-gets mix at M=100).
const WRITE_EVERY: usize = 64;
/// Full-parallelism gate (ISSUE acceptance): with ≥ 8 cores, the
/// replicated store must beat the mutex store by this factor on the
/// 8-thread Zipf cell.
const MIN_CONTENDED_RATIO_8CORE: f64 = 3.0;
/// Sanity floor everywhere else: replication must never *cost* more
/// than this, even time-sliced on a single core (the slack below 1.0
/// is noise margin for short CI quick runs, not an accepted tax — the
/// committed full-budget cells sit near or above parity).
const MIN_CONTENDED_RATIO_FLOOR: f64 = 0.4;
/// Contended cells are noisier than the single-threaded grid; tolerate
/// a larger geo-mean ratio regression before failing `--enforce`.
const MAX_CONTENDED_REGRESSION: f64 = 1.25;

#[derive(Clone, Copy, PartialEq)]
enum Skew {
    Uniform,
    Zipf,
}

impl Skew {
    fn name(self) -> &'static str {
        match self {
            Skew::Uniform => "uniform",
            Skew::Zipf => "zipf",
        }
    }
}

struct ContendedCell {
    threads: usize,
    skew: Skew,
    mutex_items_per_sec: f64,
    replicated_items_per_sec: f64,
}

impl ContendedCell {
    fn key(&self) -> String {
        format!("t{}_{}", self.threads, self.skew.name())
    }

    /// Replicated over mutex: > 1 means replication won the cell.
    fn ratio(&self) -> f64 {
        self.replicated_items_per_sec / self.mutex_items_per_sec
    }
}

fn requests_for(skew: Skew, seed: u64) -> Box<dyn RequestStream + Send> {
    match skew {
        Skew::Uniform => Box::new(UniformRequests::new(
            CONTENDED_KEYS as u64,
            CONTENDED_M,
            seed,
        )),
        Skew::Zipf => Box::new(ZipfRequests::new(
            CONTENDED_KEYS as u64,
            CONTENDED_M,
            ZIPF_EXPONENT,
            seed,
        )),
    }
}

/// The replicated arm's promotion policy: windows small enough that the
/// warmup phase promotes the Zipf-hot shards before timing starts, one
/// replica per reader thread.
fn replicated_cfg(threads: usize) -> HotConfig {
    HotConfig {
        window: 1 << 12,
        promote_accesses: 1 << 10,
        demote_accesses: 1 << 6,
        replicas: threads.max(1),
    }
}

/// Aggregate get_multi items/sec across `threads` readers hammering one
/// store arm. Each thread replays a deterministic per-seed plan of
/// requests (pre-generated, so RNG cost stays out of the timed loop)
/// with one set per [`WRITE_EVERY`] rounds mixed in.
fn run_contended_arm(hot_cfg: HotConfig, threads: usize, skew: Skew, quick: bool) -> f64 {
    let store = Store::with_config(64 << 20, CONTENDED_SHARDS, Clock::real(), hot_cfg);
    let keys: Vec<Vec<u8>> = (0..CONTENDED_KEYS)
        .map(|i| format!("key-{i:05}").into_bytes())
        .collect();
    for k in &keys {
        store.set(k, &[b'x'; 10], 0, false);
    }
    let rounds = if quick { 1500 } else { 8000 };
    // Warmup must cross several promotion windows (window 4Ki accesses,
    // each round is CONTENDED_M accesses).
    let warmup = (rounds / 4).max(128);
    let plans: Vec<Vec<Vec<u64>>> = (0..threads)
        .map(|t| {
            let mut gen = requests_for(skew, 0xC0FFEE + t as u64);
            (0..64).map(|_| gen.next_request()).collect()
        })
        .collect();

    let barrier = Barrier::new(threads + 1);
    let mut elapsed = 0.0f64;
    std::thread::scope(|s| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                let keys = &keys;
                let store = &store;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut scratch = GetScratch::new();
                    let mut out = Vec::new();
                    let run = |i: usize, scratch: &mut GetScratch, out: &mut Vec<_>| {
                        let req = &plan[i % plan.len()];
                        let hits = store.get_multi_with(
                            scratch,
                            req.len(),
                            |j| keys[req[j] as usize].as_slice(),
                            out,
                        );
                        black_box(hits);
                        if i.is_multiple_of(WRITE_EVERY) {
                            store.set(&keys[req[0] as usize], &[b'y'; 10], 0, false);
                        }
                    };
                    for i in 0..warmup {
                        run(i, &mut scratch, &mut out);
                    }
                    barrier.wait();
                    for i in 0..rounds {
                        run(i, &mut scratch, &mut out);
                    }
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            let _ = h.join();
        }
        elapsed = start.elapsed().as_secs_f64();
    });
    (threads * rounds * CONTENDED_M) as f64 / elapsed
}

fn run_contended(quick: bool) -> Vec<ContendedCell> {
    let mut cells = Vec::new();
    println!("\n[store contended] mutex store vs replicated hot shards (items/s, aggregate)");
    println!(
        "{:<12} {:>16} {:>16} {:>8}",
        "cell", "mutex", "replicated", "ratio"
    );
    for &threads in CONTENDED_THREADS {
        for skew in [Skew::Uniform, Skew::Zipf] {
            let mutex_items_per_sec =
                run_contended_arm(HotConfig::disabled(), threads, skew, quick);
            let replicated_items_per_sec =
                run_contended_arm(replicated_cfg(threads), threads, skew, quick);
            let cell = ContendedCell {
                threads,
                skew,
                mutex_items_per_sec,
                replicated_items_per_sec,
            };
            println!(
                "{:<12} {:>16.0} {:>16.0} {:>7.2}x",
                cell.key(),
                cell.mutex_items_per_sec,
                cell.replicated_items_per_sec,
                cell.ratio()
            );
            cells.push(cell);
        }
    }
    cells
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn render_json(
    cells: &[Cell],
    writes: &[WriteCell],
    contended: &[ContendedCell],
    connections: &[ConnectionsCell],
    tcp: Option<(usize, f64)>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"store\",\n  \"unit\": \"ns_per_request\",\n");
    out.push_str(&format!("  \"cores\": {},\n", cores()));
    let cp = cells
        .iter()
        .find(|c| (c.m, c.shards, c.vlen) == CHECKPOINT)
        .expect("checkpoint cell is in the grid");
    out.push_str(&format!(
        "  \"checkpoint\": {{ \"cell\": \"{}\", \"speedup\": {:.2} }},\n",
        cp.key(),
        cp.speedup()
    ));
    if let Some(wcp) = writes
        .iter()
        .find(|c| c.write_fraction == WRITE_CHECKPOINT_FRACTION)
    {
        out.push_str(&format!(
            "  \"write_checkpoint\": {{ \"cell\": \"{}\", \"speedup\": {:.2} }},\n",
            wcp.key(),
            wcp.speedup()
        ));
    }
    if let Some((m, items_per_sec)) = tcp {
        out.push_str(&format!(
            "  \"tcp_pipelined\": {{ \"m\": {m}, \"depth\": 32, \"items_per_sec\": {:.0} }},\n",
            items_per_sec
        ));
    }
    out.push_str("  \"grid\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"m\": {}, \"shards\": {}, \"vlen\": {}, \
             \"ref_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.2} }}{sep}\n",
            c.key(),
            c.m,
            c.shards,
            c.vlen,
            c.ref_ns,
            c.batched_ns,
            c.speedup()
        ));
    }
    out.push_str("  ],\n  \"writes\": [\n");
    for (i, c) in writes.iter().enumerate() {
        let sep = if i + 1 == writes.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"write_fraction\": {}, \"burst\": {WRITE_BURST}, \
             \"seq_ns\": {:.1}, \"batched_ns\": {:.1}, \"speedup\": {:.2} }}{sep}\n",
            c.key(),
            c.write_fraction,
            c.seq_ns,
            c.batched_ns,
            c.speedup()
        ));
    }
    out.push_str("  ],\n  \"contended\": [\n");
    for (i, c) in contended.iter().enumerate() {
        let sep = if i + 1 == contended.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"threads\": {}, \"skew\": \"{}\", \
             \"mutex_items_per_sec\": {:.0}, \"replicated_items_per_sec\": {:.0}, \
             \"ratio\": {:.2} }}{sep}\n",
            c.key(),
            c.threads,
            c.skew.name(),
            c.mutex_items_per_sec,
            c.replicated_items_per_sec,
            c.ratio()
        ));
    }
    out.push_str("  ],\n  \"connections\": [\n");
    let idle0 = connections
        .iter()
        .find(|c| c.idle == 0)
        .map(|c| c.items_per_sec);
    for (i, c) in connections.iter().enumerate() {
        let sep = if i + 1 == connections.len() { "" } else { "," };
        let ratio = idle0.map_or(1.0, |base| c.items_per_sec / base);
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"idle\": {}, \"live_conns\": {}, \
             \"server_threads\": {}, \"items_per_sec\": {:.0}, \
             \"ratio_vs_idle0\": {:.2} }}{sep}\n",
            c.key(),
            c.idle,
            c.live_conns,
            c.threads,
            c.items_per_sec,
            ratio
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull the grid `speedup` per cell out of a previously emitted JSON
/// file. Each grid entry is written on one line, so a line-oriented scan
/// is a faithful parser for files this bench produced. (The checkpoint
/// and tcp lines have no `ref_ns`, so they are skipped.)
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(cell_at) = line.find("\"cell\": \"") else {
            continue;
        };
        let rest = &line[cell_at + 9..];
        let Some(cell_end) = rest.find('"') else {
            continue;
        };
        let cell = rest[..cell_end].to_string();
        if !line.contains("\"ref_ns\": ") {
            continue;
        }
        let Some(at) = line.find("\"speedup\": ") else {
            continue;
        };
        let num = &line[at + 11..];
        let end = num.find([',', ' ', '}']).unwrap_or(num.len());
        if let Ok(speedup) = num[..end].parse::<f64>() {
            out.push((cell, speedup));
        }
    }
    out
}

/// Pull the write-sweep `speedup` per cell out of a previously emitted
/// JSON file (same line-oriented contract as [`parse_baseline`]; write
/// lines carry `seq_ns` instead of `ref_ns`).
fn parse_write_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(cell_at) = line.find("\"cell\": \"") else {
            continue;
        };
        let rest = &line[cell_at + 9..];
        let Some(cell_end) = rest.find('"') else {
            continue;
        };
        let cell = rest[..cell_end].to_string();
        if !line.contains("\"seq_ns\": ") {
            continue;
        }
        let Some(at) = line.find("\"speedup\": ") else {
            continue;
        };
        let num = &line[at + 11..];
        let end = num.find([',', ' ', '}']).unwrap_or(num.len());
        if let Ok(speedup) = num[..end].parse::<f64>() {
            out.push((cell, speedup));
        }
    }
    out
}

/// Pull the contended `ratio` per cell out of a previously emitted JSON
/// file (same line-oriented contract as [`parse_baseline`]; contended
/// lines carry `mutex_items_per_sec` instead of `ref_ns`).
fn parse_contended_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(cell_at) = line.find("\"cell\": \"") else {
            continue;
        };
        let rest = &line[cell_at + 9..];
        let Some(cell_end) = rest.find('"') else {
            continue;
        };
        let cell = rest[..cell_end].to_string();
        if !line.contains("\"mutex_items_per_sec\": ") {
            continue;
        }
        let Some(at) = line.find("\"ratio\": ") else {
            continue;
        };
        let num = &line[at + 9..];
        let end = num.find([',', ' ', '}']).unwrap_or(num.len());
        if let Ok(ratio) = num[..end].parse::<f64>() {
            out.push((cell, ratio));
        }
    }
    out
}

/// The committed `tcp_pipelined` items/sec of a previously emitted JSON
/// file, if present (same line-oriented contract as [`parse_baseline`]).
fn parse_tcp_baseline(text: &str) -> Option<f64> {
    let line = text.lines().find(|l| l.contains("\"tcp_pipelined\""))?;
    let at = line.find("\"items_per_sec\": ")?;
    let num = &line[at + 17..];
    let end = num.find([',', ' ', '}']).unwrap_or(num.len());
    num[..end].parse().ok()
}

/// The `"cores"` field of a previously emitted JSON file, if present.
fn parse_baseline_cores(text: &str) -> Option<usize> {
    for line in text.lines() {
        if let Some(at) = line.find("\"cores\": ") {
            let num = &line[at + 9..];
            let end = num.find([',', ' ', '}']).unwrap_or(num.len());
            return num[..end].parse().ok();
        }
    }
    None
}

/// Returns `true` when every enforced gate passed.
fn run_grid(quick: bool, enforce: bool) -> bool {
    let baseline_text = std::fs::read_to_string(JSON_PATH).ok();
    let baseline = baseline_text.as_deref().map(parse_baseline);

    let mut cells = Vec::new();
    println!("\n[store grid] per-key reference get_multi vs shard-batched path");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "cell", "ref ns", "batched ns", "speedup"
    );
    for &m in GRID_M {
        for &shards in GRID_SHARDS {
            for &vlen in GRID_VLEN {
                let cell = run_cell(m, shards, vlen, quick);
                println!(
                    "{:<16} {:>12.1} {:>12.1} {:>8.2}x",
                    cell.key(),
                    cell.ref_ns,
                    cell.batched_ns,
                    cell.speedup()
                );
                cells.push(cell);
            }
        }
    }

    let writes = run_writes(quick);

    let tcp = match run_tcp(quick) {
        Ok((m, items_per_sec)) => {
            println!("[store grid] tcp pipelined m={m} depth=32: {items_per_sec:.0} items/s");
            Some((m, items_per_sec))
        }
        Err(e) => {
            eprintln!("[store grid] tcp section failed (reported only): {e}");
            None
        }
    };

    let contended = run_contended(quick);

    let connections = match run_connections(quick) {
        Ok(cells) => cells,
        Err(e) => {
            eprintln!("[store connections] sweep failed (cells omitted): {e}");
            Vec::new()
        }
    };

    let json = render_json(&cells, &writes, &contended, &connections, tcp);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => println!("[store grid] wrote {JSON_PATH}"),
        Err(e) => eprintln!("[store grid] could not write {JSON_PATH}: {e}"),
    }

    let mut failed = false;
    let cp = cells
        .iter()
        .find(|c| (c.m, c.shards, c.vlen) == CHECKPOINT)
        .expect("checkpoint cell is in the grid");
    println!(
        "[store grid] checkpoint {}: {:.2}x (floor {MIN_CHECKPOINT_SPEEDUP}x)",
        cp.key(),
        cp.speedup()
    );
    if enforce && cp.speedup() < MIN_CHECKPOINT_SPEEDUP {
        eprintln!(
            "[store grid] FAIL: checkpoint speedup {:.2}x below the {MIN_CHECKPOINT_SPEEDUP}x floor",
            cp.speedup()
        );
        failed = true;
    }

    if let Some(base) = baseline {
        // Geometric-mean ratio of baseline speedup to current speedup
        // over cells present in both runs: > 1 means the batched path's
        // edge over the reference shrank. Speedups are same-machine
        // ratios, so this survives hardware differences between the
        // committing machine and CI; the geo-mean is robust to
        // single-cell noise.
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for cell in &cells {
            if let Some((_, base_speedup)) = base.iter().find(|(key, _)| *key == cell.key()) {
                log_sum += (base_speedup / cell.speedup()).ln();
                count += 1;
            }
        }
        if count > 0 {
            let ratio = (log_sum / count as f64).exp();
            println!(
                "[store grid] baseline/current speedup (geo-mean over {count} cells): {ratio:.3}x"
            );
            if enforce && ratio > MAX_REGRESSION {
                eprintln!(
                    "[store grid] FAIL: batched-path speedup regressed {:.1}% vs committed baseline (limit {:.0}%)",
                    (ratio - 1.0) * 100.0,
                    (MAX_REGRESSION - 1.0) * 100.0
                );
                failed = true;
            }
        }
    } else {
        println!("[store grid] no committed baseline at {JSON_PATH}; skipping regression gate");
    }

    // Write-sweep gates: the checkpoint floor is a same-run, same-machine
    // speedup ratio (portable across CI hardware, like the grid gate),
    // and the geo-mean regression check compares against the committed
    // baseline's write cells.
    if let Some(wcp) = writes
        .iter()
        .find(|c| c.write_fraction == WRITE_CHECKPOINT_FRACTION)
    {
        println!(
            "[store writes] checkpoint {}: {:.2}x (floor {MIN_WRITE_CHECKPOINT_SPEEDUP}x)",
            wcp.key(),
            wcp.speedup()
        );
        if enforce && wcp.speedup() < MIN_WRITE_CHECKPOINT_SPEEDUP {
            eprintln!(
                "[store writes] FAIL: write checkpoint speedup {:.2}x below the \
                 {MIN_WRITE_CHECKPOINT_SPEEDUP}x floor",
                wcp.speedup()
            );
            failed = true;
        }
    }
    if let Some(text) = baseline_text.as_deref() {
        let base = parse_write_baseline(text);
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for cell in &writes {
            // The all-reads row (wf00) runs identical code in both arms;
            // its speedup is ~1.0 plus noise, so it is excluded from the
            // regression geo-mean.
            if cell.write_fraction == 0.0 {
                continue;
            }
            if let Some((_, base_speedup)) = base.iter().find(|(key, _)| *key == cell.key()) {
                log_sum += (base_speedup / cell.speedup()).ln();
                count += 1;
            }
        }
        if count > 0 {
            let ratio = (log_sum / count as f64).exp();
            println!(
                "[store writes] baseline/current speedup (geo-mean over {count} cells): {ratio:.3}x"
            );
            if enforce && ratio > MAX_REGRESSION {
                eprintln!(
                    "[store writes] FAIL: batched-write speedup regressed {:.1}% vs committed baseline (limit {:.0}%)",
                    (ratio - 1.0) * 100.0,
                    (MAX_REGRESSION - 1.0) * 100.0
                );
                failed = true;
            }
        }
    }

    // Contended gates. Absolute ratios depend on real parallelism: the
    // full ISSUE gate (Zipf, 8 threads, replicated ≥ 3x mutex) only
    // means something when 8 hardware threads exist; elsewhere a floor
    // guards against the replicated path collapsing.
    let ncores = cores();
    for cell in &contended {
        let floor = if ncores >= 8 && cell.threads == 8 && cell.skew == Skew::Zipf {
            MIN_CONTENDED_RATIO_8CORE
        } else {
            MIN_CONTENDED_RATIO_FLOOR
        };
        if enforce && cell.ratio() < floor {
            eprintln!(
                "[store contended] FAIL: {} ratio {:.2}x below the {floor}x floor ({ncores} cores)",
                cell.key(),
                cell.ratio()
            );
            failed = true;
        }
    }
    if let Some(text) = baseline_text.as_deref() {
        // Ratio regressions are only comparable on matching hardware:
        // the committed baseline records its core count, and the gate is
        // skipped when ours differs (a 1-core CI runner can't reproduce
        // an 8-core baseline's contention behaviour, or vice versa).
        let base_cores = parse_baseline_cores(text);
        if base_cores == Some(ncores) {
            let base = parse_contended_baseline(text);
            let mut log_sum = 0.0f64;
            let mut count = 0usize;
            for cell in &contended {
                if let Some((_, base_ratio)) = base.iter().find(|(key, _)| *key == cell.key()) {
                    log_sum += (base_ratio / cell.ratio()).ln();
                    count += 1;
                }
            }
            if count > 0 {
                let ratio = (log_sum / count as f64).exp();
                println!(
                    "[store contended] baseline/current ratio (geo-mean over {count} cells): {ratio:.3}x"
                );
                if enforce && ratio > MAX_CONTENDED_REGRESSION {
                    eprintln!(
                        "[store contended] FAIL: replicated-path ratio regressed {:.1}% vs committed baseline (limit {:.0}%)",
                        (ratio - 1.0) * 100.0,
                        (MAX_CONTENDED_REGRESSION - 1.0) * 100.0
                    );
                    failed = true;
                }
            }
        } else {
            println!(
                "[store contended] baseline cores {base_cores:?} != current {ncores}; skipping contended regression gate"
            );
        }
    }

    // Connections gates. The idle-ratio floor is a same-run ratio
    // (portable); the missing-sweep and thread-bound checks are
    // structural; the absolute-throughput comparison is cores-matching
    // only, like the contended gate.
    if enforce && connections.is_empty() {
        eprintln!("[store connections] FAIL: sweep produced no cells under --enforce");
        failed = true;
    }
    if let Some(base) = connections
        .iter()
        .find(|c| c.idle == 0)
        .map(|c| c.items_per_sec)
    {
        for cell in &connections {
            let ratio = cell.items_per_sec / base;
            if cell.idle > 0 {
                println!(
                    "[store connections] {}: {:.2}x of idle0 throughput (floor {MIN_IDLE_RATIO}x)",
                    cell.key(),
                    ratio
                );
            }
            if enforce && cell.idle > 0 && ratio < MIN_IDLE_RATIO {
                eprintln!(
                    "[store connections] FAIL: {} throughput ratio {ratio:.2}x below the \
                     {MIN_IDLE_RATIO}x floor",
                    cell.key()
                );
                failed = true;
            }
            // Bounded threads is the whole point of the readiness loop:
            // parked connections must not grow the server's thread count.
            if enforce && cell.threads != connections[0].threads {
                eprintln!(
                    "[store connections] FAIL: {} used {} server threads (idle0 used {}) — \
                     connection count must not change the thread budget",
                    cell.key(),
                    cell.threads,
                    connections[0].threads
                );
                failed = true;
            }
        }
    }
    if let (Some(text), Some((_, tcp_now))) = (baseline_text.as_deref(), tcp) {
        if parse_baseline_cores(text) == Some(ncores) {
            if let Some(tcp_base) = parse_tcp_baseline(text) {
                println!(
                    "[store connections] tcp_pipelined {tcp_now:.0} vs committed {tcp_base:.0} items/s"
                );
                if enforce && tcp_now * MAX_TCP_REGRESSION < tcp_base {
                    eprintln!(
                        "[store connections] FAIL: tcp_pipelined {tcp_now:.0} items/s fell more \
                         than {:.0}% below the committed {tcp_base:.0}",
                        (MAX_TCP_REGRESSION - 1.0) * 100.0
                    );
                    failed = true;
                }
            }
        } else {
            println!("[store connections] baseline cores differ; skipping tcp_pipelined gate");
        }
    }

    !failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    // Helper-process mode must run before Criterion touches argv: the
    // child exists only to park idle sockets for the connections sweep.
    if let Some(i) = args.iter().position(|a| a == "--idle-client") {
        let (Some(addr), Some(count)) = (args.get(i + 1), args.get(i + 2)) else {
            eprintln!("usage: --idle-client <addr> <count>");
            return ExitCode::FAILURE;
        };
        return idle_client_main(addr, count.parse().unwrap_or(0));
    }
    benches();
    if args.iter().any(|a| a == "--test") {
        // `cargo test` smoke pass: Criterion already ran each body once;
        // skip the timed grid so test runs stay fast and the committed
        // BENCH_store.json is never clobbered by an unrepresentative run.
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let enforce = args.iter().any(|a| a == "--enforce");
    if run_grid(quick, enforce) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
