//! In-process store micro-benchmark: the Fig 13 shape without socket
//! noise — per-transaction vs per-item cost of `get_multi` across
//! transaction sizes (the TCP version is the `fig13`/`fig14` binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rnb_store::Store;
use std::hint::black_box;

fn bench_get_multi(c: &mut Criterion) {
    let store = Store::new(64 << 20);
    let keys: Vec<Vec<u8>> = (0..10_000)
        .map(|i| format!("key-{i:06}").into_bytes())
        .collect();
    for k in &keys {
        store.set(k, b"0123456789", 0, false);
    }

    let mut group = c.benchmark_group("store/get_multi");
    for &txn_size in &[1usize, 8, 64, 256] {
        group.throughput(Throughput::Elements(txn_size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(txn_size), &txn_size, |b, &n| {
            let mut base = 0usize;
            b.iter(|| {
                let refs: Vec<&[u8]> = (0..n)
                    .map(|j| keys[(base + j) % keys.len()].as_slice())
                    .collect();
                base = base.wrapping_add(n * 7 + 1);
                let got = store.get_multi(black_box(&refs));
                black_box(got.len())
            })
        });
    }
    group.finish();
}

fn bench_set(c: &mut Criterion) {
    let store = Store::new(64 << 20);
    let mut group = c.benchmark_group("store/set");
    group.throughput(Throughput::Elements(1));
    group.bench_function("set_10b", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("set-key-{}", i % 50_000);
            i += 1;
            black_box(store.set(key.as_bytes(), b"0123456789", 0, false))
        })
    });
    group.finish();
}

fn bench_eviction_pressure(c: &mut Criterion) {
    // A store sized to hold only a fraction of the keyspace: every set
    // evicts — the overbooking steady state.
    let store = Store::new(256 << 10);
    let mut group = c.benchmark_group("store/eviction");
    group.throughput(Throughput::Elements(1));
    group.bench_function("set_under_pressure", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let key = format!("evict-key-{i}");
            i += 1;
            black_box(store.set(key.as_bytes(), b"0123456789", 0, false))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_get_multi, bench_set, bench_eviction_pressure);
criterion_main!(benches);
