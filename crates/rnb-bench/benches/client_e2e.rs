//! End-to-end client benchmark: full RnB multi-gets against a real
//! loopback fleet, RnB (k=4) vs the plain 1-copy client — the deployed
//! counterpart of the simulator numbers, including socket costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rnb_client::{RnbClient, RnbClientConfig};
use rnb_store::{Store, StoreServer};
use std::hint::black_box;
use std::sync::Arc;

fn bench_multi_get(c: &mut Criterion) {
    let servers: Vec<StoreServer> = (0..8)
        .map(|_| StoreServer::start(Arc::new(Store::new(32 << 20))).expect("server"))
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();

    let mut group = c.benchmark_group("client/multi_get");
    group.sample_size(40);
    for (name, replication) in [("plain_k1", 1usize), ("rnb_k4", 4)] {
        let mut client =
            RnbClient::connect(&addrs, RnbClientConfig::new(replication)).expect("client");
        for item in 0..2000u64 {
            client.set(item, b"ten-bytes!").expect("set");
        }
        for &m in &[10usize, 30] {
            group.throughput(Throughput::Elements(m as u64));
            group.bench_with_input(BenchmarkId::new(name, format!("m{m}")), &m, |b, &m| {
                let mut r = 0u64;
                b.iter(|| {
                    let request: Vec<u64> =
                        (0..m as u64).map(|i| (r * 61 + i * 37) % 2000).collect();
                    r += 1;
                    let values = client.multi_get(black_box(&request)).expect("get");
                    black_box(values.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_writes(c: &mut Criterion) {
    let servers: Vec<StoreServer> = (0..8)
        .map(|_| StoreServer::start(Arc::new(Store::new(32 << 20))).expect("server"))
        .collect();
    let addrs: Vec<_> = servers.iter().map(|s| s.addr()).collect();
    let mut group = c.benchmark_group("client/set");
    group.sample_size(40);
    for (name, replication) in [("k1", 1usize), ("k4", 4)] {
        let mut client =
            RnbClient::connect(&addrs, RnbClientConfig::new(replication)).expect("client");
        group.throughput(Throughput::Elements(1));
        group.bench_function(name, |b| {
            let mut i = 0u64;
            b.iter(|| {
                client
                    .set(black_box(i % 10_000), b"ten-bytes!")
                    .expect("set");
                i += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_multi_get, bench_writes);
criterion_main!(benches);
