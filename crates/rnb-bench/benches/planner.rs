//! Client-side bundling cost: the paper notes "RnB does create some extra
//! work for the front-end servers". This bench quantifies it — full plan
//! and LIMIT plan cost per request across request sizes and replication
//! levels, against the no-replication group-by-server baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rnb_core::{Bundler, PlacementStrategy, RnbConfig};
use std::hint::black_box;

fn requests(m: usize, count: usize) -> Vec<Vec<u64>> {
    // Deterministic pseudo-random requests; identity doesn't matter for
    // planner cost.
    (0..count as u64)
        .map(|r| {
            (0..m as u64)
                .map(|i| {
                    r.wrapping_mul(6364136223846793005)
                        .wrapping_add(i * 2654435761)
                })
                .collect()
        })
        .collect()
}

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/plan");
    for &m in &[10usize, 50, 200] {
        let reqs = requests(m, 64);
        for &k in &[1usize, 2, 4] {
            let bundler = Bundler::from_config(&RnbConfig::new(16, k));
            group.throughput(Throughput::Elements(m as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), format!("m{m}")),
                &bundler,
                |b, bundler| {
                    let mut i = 0;
                    b.iter(|| {
                        let plan = bundler.plan(black_box(&reqs[i % reqs.len()]));
                        i += 1;
                        black_box(plan.tpr())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_plan_limit(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/limit");
    let reqs = requests(100, 64);
    let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    for &limit in &[100usize, 90, 50] {
        group.bench_with_input(BenchmarkId::new("min_items", limit), &limit, |b, &limit| {
            let mut i = 0;
            b.iter(|| {
                let plan = bundler.plan_limit(black_box(&reqs[i % reqs.len()]), limit);
                i += 1;
                black_box(plan.tpr())
            })
        });
    }
    group.finish();
}

fn bench_baseline_group_by_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/baseline");
    let reqs = requests(50, 64);
    let bundler = Bundler::new(PlacementStrategy::no_replication(16, 7));
    group.throughput(Throughput::Elements(50));
    group.bench_function("no_replication_m50", |b| {
        let mut i = 0;
        b.iter(|| {
            let plan = bundler.plan(black_box(&reqs[i % reqs.len()]));
            i += 1;
            black_box(plan.tpr())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan,
    bench_plan_limit,
    bench_baseline_group_by_server
);
criterion_main!(benches);
