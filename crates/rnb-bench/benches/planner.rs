//! Client-side bundling cost: the paper notes "RnB does create some extra
//! work for the front-end servers". This bench quantifies it — full plan
//! and LIMIT plan cost per request across request sizes and replication
//! levels, against the no-replication group-by-server baseline — and pits
//! the pooled [`Planner`] against the seed per-request path
//! (`CoverInstance::from_item_candidates` + `greedy_cover_reference`).
//!
//! Beyond the Criterion groups, a grid sweep (M ∈ {50, 200, 500},
//! k ∈ {1..4}, N ∈ {10, 100}) writes `BENCH_planner.json` at the repo
//! root (schema in EXPERIMENTS.md). Flags after `--`:
//!
//! * `--quick`   — reduced iteration budget (CI smoke).
//! * `--enforce` — exit non-zero if the checkpoint cell (M=200, k=2,
//!   N=100) speeds up by less than 2×, or if the planner's geometric-mean
//!   *speedup over the seed path* regresses more than 10% against the
//!   committed `BENCH_planner.json`. Speedup is a same-machine,
//!   same-budget ratio, so the gate is portable across CI hardware where
//!   absolute ns/request are not.
//!
//! Under `cargo test` (`--test` in argv) only the Criterion smoke pass
//! runs; the grid is skipped and the committed JSON is left untouched.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnb_core::{Bundler, PlacementStrategy, PlanScratch, RnbConfig};
use rnb_cover::{greedy_cover_reference, CoverInstance, CoverTarget, Planner};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

fn requests(m: usize, count: usize) -> Vec<Vec<u64>> {
    // Deterministic pseudo-random requests; identity doesn't matter for
    // planner cost.
    (0..count as u64)
        .map(|r| {
            (0..m as u64)
                .map(|i| {
                    r.wrapping_mul(6364136223846793005)
                        .wrapping_add(i * 2654435761)
                })
                .collect()
        })
        .collect()
}

fn bench_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/plan");
    for &m in &[10usize, 50, 200] {
        let reqs = requests(m, 64);
        for &k in &[1usize, 2, 4] {
            let bundler = Bundler::from_config(&RnbConfig::new(16, k));
            group.throughput(Throughput::Elements(m as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), format!("m{m}")),
                &bundler,
                |b, bundler| {
                    let mut scratch = PlanScratch::new();
                    let mut i = 0;
                    b.iter(|| {
                        let plan =
                            bundler.plan_with(&mut scratch, black_box(&reqs[i % reqs.len()]));
                        i += 1;
                        black_box(plan.tpr())
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_plan_limit(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/limit");
    let reqs = requests(100, 64);
    let bundler = Bundler::from_config(&RnbConfig::new(16, 3));
    for &limit in &[100usize, 90, 50] {
        group.bench_with_input(BenchmarkId::new("min_items", limit), &limit, |b, &limit| {
            let mut scratch = PlanScratch::new();
            let mut i = 0;
            b.iter(|| {
                let plan =
                    bundler.plan_limit_with(&mut scratch, black_box(&reqs[i % reqs.len()]), limit);
                i += 1;
                black_box(plan.tpr())
            })
        });
    }
    group.finish();
}

/// Pooled scratch vs per-call allocation on the same bundler, same
/// requests: the cost of *not* reusing the planner's buffers.
fn bench_scratch_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/scratch");
    let reqs = requests(200, 64);
    let bundler = Bundler::from_config(&RnbConfig::new(100, 2));
    group.throughput(Throughput::Elements(200));
    group.bench_function("oneshot_m200_k2", |b| {
        let mut i = 0;
        b.iter(|| {
            let plan = bundler.plan(black_box(&reqs[i % reqs.len()]));
            i += 1;
            black_box(plan.tpr())
        })
    });
    group.bench_function("reused_m200_k2", |b| {
        let mut scratch = PlanScratch::new();
        let mut i = 0;
        b.iter(|| {
            let plan = bundler.plan_with(&mut scratch, black_box(&reqs[i % reqs.len()]));
            i += 1;
            black_box(plan.tpr())
        })
    });
    group.finish();
}

fn bench_baseline_group_by_server(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/baseline");
    let reqs = requests(50, 64);
    let bundler = Bundler::new(PlacementStrategy::no_replication(16, 7));
    group.throughput(Throughput::Elements(50));
    group.bench_function("no_replication_m50", |b| {
        let mut i = 0;
        b.iter(|| {
            let plan = bundler.plan(black_box(&reqs[i % reqs.len()]));
            i += 1;
            black_box(plan.tpr())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan,
    bench_plan_limit,
    bench_scratch_reuse,
    bench_baseline_group_by_server
);

// ---------------------------------------------------------------------
// Grid sweep: seed path vs pooled planner, emitted as BENCH_planner.json.
// ---------------------------------------------------------------------

const GRID_M: &[usize] = &[50, 200, 500];
const GRID_K: &[usize] = &[1, 2, 3, 4];
const GRID_N: &[usize] = &[10, 100];

/// The acceptance checkpoint cell: the planner must beat the seed path
/// by at least this factor at M=200, k=2, N=100.
const CHECKPOINT: (usize, usize, usize) = (200, 2, 100);
const MIN_CHECKPOINT_SPEEDUP: f64 = 2.0;
/// `--enforce`: maximum tolerated geometric-mean speedup regression
/// against the committed baseline JSON.
const MAX_REGRESSION: f64 = 1.10;

/// Where the committed baseline lives (repo root).
const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_planner.json");

struct Cell {
    m: usize,
    k: usize,
    n: usize,
    seed_ns: f64,
    planner_ns: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!("m{}_k{}_n{}", self.m, self.k, self.n)
    }

    fn speedup(&self) -> f64 {
        self.seed_ns / self.planner_ns
    }
}

/// RnB-shaped candidate lists: `m` items, each placed on `k` distinct
/// uniform servers among `n`.
fn candidate_batch(m: usize, k: usize, n: usize, batch: usize) -> Vec<Vec<Vec<u32>>> {
    let seed = (m as u64) << 32 | (k as u64) << 16 | n as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batch)
        .map(|_| {
            (0..m)
                .map(|_| {
                    let mut servers = Vec::with_capacity(k);
                    while servers.len() < k.min(n) {
                        let s = rng.random_range(0..n as u32);
                        if !servers.contains(&s) {
                            servers.push(s);
                        }
                    }
                    servers
                })
                .collect()
        })
        .collect()
}

/// Mean ns per call of `f` over `rounds` calls, after `warmup` untimed
/// calls (pool growth, caches, branch predictors).
fn time_ns_per_call(warmup: usize, rounds: usize, mut f: impl FnMut(usize) -> usize) -> f64 {
    for i in 0..warmup {
        black_box(f(i));
    }
    let start = Instant::now();
    for i in 0..rounds {
        black_box(f(i));
    }
    start.elapsed().as_nanos() as f64 / rounds as f64
}

fn run_cell(m: usize, k: usize, n: usize, quick: bool) -> Cell {
    let batch = candidate_batch(m, k, n, 8);
    let full = (200_000 / m).max(200);
    let rounds = if quick { (full / 4).max(100) } else { full };
    let warmup = (rounds / 10).max(50);
    // Seed path: build a CoverInstance (allocating bitsets + label map)
    // and run the retained reference greedy, per request.
    let seed_ns = time_ns_per_call(warmup, rounds, |i| {
        let cands = &batch[i % batch.len()];
        let inst = CoverInstance::from_item_candidates(cands);
        greedy_cover_reference(&inst, CoverTarget::Full).picks.len()
    });
    // Planner path: one pooled Planner reused across every request.
    let mut planner = Planner::new();
    let planner_ns = time_ns_per_call(warmup, rounds, |i| {
        let cands = &batch[i % batch.len()];
        planner
            .solve_item_candidates(cands, CoverTarget::Full)
            .num_picks()
    });
    Cell {
        m,
        k,
        n,
        seed_ns,
        planner_ns,
    }
}

fn render_json(cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"planner\",\n  \"unit\": \"ns_per_request\",\n");
    let cp = cells
        .iter()
        .find(|c| (c.m, c.k, c.n) == CHECKPOINT)
        .expect("checkpoint cell is in the grid");
    out.push_str(&format!(
        "  \"checkpoint\": {{ \"cell\": \"{}\", \"speedup\": {:.2} }},\n",
        cp.key(),
        cp.speedup()
    ));
    out.push_str("  \"grid\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{ \"cell\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"seed_ns\": {:.1}, \"planner_ns\": {:.1}, \"speedup\": {:.2} }}{sep}\n",
            c.key(),
            c.m,
            c.k,
            c.n,
            c.seed_ns,
            c.planner_ns,
            c.speedup()
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pull the grid `speedup` per cell out of a previously emitted JSON
/// file. Each grid entry is written on one line, so a line-oriented scan
/// is a faithful parser for files this bench produced. (The checkpoint
/// line has a `cell` but no `seed_ns`, so it is skipped.)
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(cell_at) = line.find("\"cell\": \"") else {
            continue;
        };
        let rest = &line[cell_at + 9..];
        let Some(cell_end) = rest.find('"') else {
            continue;
        };
        let cell = rest[..cell_end].to_string();
        if !line.contains("\"seed_ns\": ") {
            continue;
        }
        let Some(at) = line.find("\"speedup\": ") else {
            continue;
        };
        let num = &line[at + 11..];
        let end = num.find([',', ' ', '}']).unwrap_or(num.len());
        if let Ok(speedup) = num[..end].parse::<f64>() {
            out.push((cell, speedup));
        }
    }
    out
}

/// Returns `true` when every enforced gate passed.
fn run_grid(quick: bool, enforce: bool) -> bool {
    let baseline = std::fs::read_to_string(JSON_PATH)
        .ok()
        .map(|t| parse_baseline(&t));

    let mut cells = Vec::new();
    println!("\n[planner grid] seed path (build instance + reference greedy) vs pooled Planner");
    println!(
        "{:<16} {:>12} {:>12} {:>9}",
        "cell", "seed ns", "planner ns", "speedup"
    );
    for &m in GRID_M {
        for &k in GRID_K {
            for &n in GRID_N {
                let cell = run_cell(m, k, n, quick);
                println!(
                    "{:<16} {:>12.1} {:>12.1} {:>8.2}x",
                    cell.key(),
                    cell.seed_ns,
                    cell.planner_ns,
                    cell.speedup()
                );
                cells.push(cell);
            }
        }
    }

    let json = render_json(&cells);
    match std::fs::write(JSON_PATH, &json) {
        Ok(()) => println!("[planner grid] wrote {JSON_PATH}"),
        Err(e) => eprintln!("[planner grid] could not write {JSON_PATH}: {e}"),
    }

    let mut failed = false;
    let cp = cells
        .iter()
        .find(|c| (c.m, c.k, c.n) == CHECKPOINT)
        .expect("checkpoint cell is in the grid");
    println!(
        "[planner grid] checkpoint {}: {:.2}x (floor {MIN_CHECKPOINT_SPEEDUP}x)",
        cp.key(),
        cp.speedup()
    );
    if enforce && cp.speedup() < MIN_CHECKPOINT_SPEEDUP {
        eprintln!(
            "[planner grid] FAIL: checkpoint speedup {:.2}x below the {MIN_CHECKPOINT_SPEEDUP}x floor",
            cp.speedup()
        );
        failed = true;
    }

    if let Some(base) = baseline {
        // Geometric-mean ratio of baseline speedup to current speedup
        // over cells present in both runs: > 1 means the planner's edge
        // over the seed path shrank. Speedups are same-machine ratios,
        // so this survives hardware differences between the committing
        // machine and CI; the geo-mean is robust to single-cell noise.
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for cell in &cells {
            if let Some((_, base_speedup)) = base.iter().find(|(key, _)| *key == cell.key()) {
                log_sum += (base_speedup / cell.speedup()).ln();
                count += 1;
            }
        }
        if count > 0 {
            let ratio = (log_sum / count as f64).exp();
            println!(
                "[planner grid] baseline/current speedup (geo-mean over {count} cells): {:.3}x",
                ratio
            );
            if enforce && ratio > MAX_REGRESSION {
                eprintln!(
                    "[planner grid] FAIL: planner speedup regressed {:.1}% vs committed baseline (limit {:.0}%)",
                    (ratio - 1.0) * 100.0,
                    (MAX_REGRESSION - 1.0) * 100.0
                );
                failed = true;
            }
        }
    } else {
        println!("[planner grid] no committed baseline at {JSON_PATH}; skipping regression gate");
    }

    !failed
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    benches();
    if args.iter().any(|a| a == "--test") {
        // `cargo test` smoke pass: Criterion already ran each body once;
        // skip the timed grid so test runs stay fast and the committed
        // BENCH_planner.json is never clobbered by an unrepresentative run.
        return ExitCode::SUCCESS;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let enforce = args.iter().any(|a| a == "--enforce");
    if run_grid(quick, enforce) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
