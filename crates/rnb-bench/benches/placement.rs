//! Placement ablation: Ranged Consistent Hashing (the paper's §IV
//! contribution) vs multi-hash vs rendezvous — replica lookup cost as the
//! cluster grows. RCH's selling point is O(log N + k) lookups versus
//! rendezvous's O(N); multi-hash is O(k) but lacks RCH's smooth-growth
//! properties.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rnb_core::{PlacementKind, PlacementStrategy};
use rnb_hash::{HashKind, Placement};
use std::hint::black_box;

fn bench_replica_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/replicas");
    for &servers in &[16usize, 256, 4096] {
        for kind in [
            PlacementKind::Rch,
            PlacementKind::MultiHash,
            PlacementKind::Rendezvous,
            PlacementKind::Jump,
        ] {
            let p = PlacementStrategy::build(kind, servers, 4, HashKind::XxHash64, 7);
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new(p.name(), servers), &p, |b, p| {
                let mut out = Vec::with_capacity(4);
                let mut item = 0u64;
                b.iter(|| {
                    p.replicas_into(black_box(item), &mut out);
                    item = item.wrapping_add(1);
                    black_box(out.len())
                })
            });
        }
    }
    group.finish();
}

fn bench_hash_functions(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement/hash");
    let key = 0xdead_beef_cafe_u64.to_le_bytes();
    for kind in HashKind::ALL {
        let h = kind.build(1);
        group.throughput(Throughput::Bytes(key.len() as u64));
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| black_box(h.hash_bytes(black_box(&key))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replica_lookup, bench_hash_functions);
criterion_main!(benches);
