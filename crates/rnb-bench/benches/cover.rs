//! Cover-solver ablation: the paper claims its greedy bit-set heuristic
//! finds covers "using a relatively small number of CPU cycles" and is
//! near-optimal for RnB-shaped instances. This bench measures greedy vs
//! lazy-greedy vs exact on such instances, across request sizes and
//! replication levels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnb_cover::{greedy_cover, lazy_greedy_cover, solve_exact, CoverInstance, CoverTarget};
use std::hint::black_box;

/// An RnB-shaped instance: `m` items, each with `k` distinct uniform
/// replicas among `n` servers.
fn rnb_instance(n: usize, m: usize, k: usize, rng: &mut StdRng) -> CoverInstance {
    let candidates: Vec<Vec<u32>> = (0..m)
        .map(|_| {
            let mut servers = Vec::with_capacity(k);
            while servers.len() < k.min(n) {
                let s = rng.random_range(0..n as u32);
                if !servers.contains(&s) {
                    servers.push(s);
                }
            }
            servers
        })
        .collect();
    CoverInstance::from_item_candidates(&candidates)
}

fn bench_greedy_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/greedy");
    for &(n, m, k) in &[
        (16usize, 12usize, 3usize),
        (16, 50, 3),
        (64, 100, 4),
        (256, 500, 4),
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let instances: Vec<CoverInstance> =
            (0..32).map(|_| rnb_instance(n, m, k, &mut rng)).collect();
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(
            BenchmarkId::new("plain", format!("n{n}_m{m}_k{k}")),
            &instances,
            |b, insts| {
                let mut i = 0;
                b.iter(|| {
                    let sol = greedy_cover(black_box(&insts[i % insts.len()]), CoverTarget::Full);
                    i += 1;
                    black_box(sol.picks.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lazy", format!("n{n}_m{m}_k{k}")),
            &instances,
            |b, insts| {
                let mut i = 0;
                b.iter(|| {
                    let sol =
                        lazy_greedy_cover(black_box(&insts[i % insts.len()]), CoverTarget::Full);
                    i += 1;
                    black_box(sol.picks.len())
                })
            },
        );
    }
    group.finish();
}

fn bench_exact_vs_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/exact");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    let instances: Vec<CoverInstance> =
        (0..16).map(|_| rnb_instance(16, 20, 3, &mut rng)).collect();
    group.bench_function("exact_n16_m20_k3", |b| {
        let mut i = 0;
        b.iter(|| {
            let sol = solve_exact(black_box(&instances[i % instances.len()])).unwrap();
            i += 1;
            black_box(sol.picks.len())
        })
    });
    group.bench_function("greedy_n16_m20_k3", |b| {
        let mut i = 0;
        b.iter(|| {
            let sol = greedy_cover(
                black_box(&instances[i % instances.len()]),
                CoverTarget::Full,
            );
            i += 1;
            black_box(sol.picks.len())
        })
    });
    group.finish();

    // Report approximation quality alongside the timing numbers.
    let mut rng = StdRng::seed_from_u64(3);
    let mut g_total = 0usize;
    let mut e_total = 0usize;
    for _ in 0..100 {
        let inst = rnb_instance(16, 20, 3, &mut rng);
        g_total += greedy_cover(&inst, CoverTarget::Full).picks.len();
        e_total += solve_exact(&inst).unwrap().picks.len();
    }
    println!(
        "[cover quality] greedy/exact pick ratio over 100 RnB instances: {:.4}",
        g_total as f64 / e_total as f64
    );
}

fn bench_partial_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("cover/partial");
    let mut rng = StdRng::seed_from_u64(4);
    let instances: Vec<CoverInstance> = (0..32)
        .map(|_| rnb_instance(32, 100, 3, &mut rng))
        .collect();
    for &frac in &[1.0f64, 0.95, 0.5] {
        group.bench_with_input(
            BenchmarkId::new("limit", format!("{:.0}%", frac * 100.0)),
            &frac,
            |b, &frac| {
                let target = CoverTarget::AtLeast((100.0 * frac).ceil() as usize);
                let mut i = 0;
                b.iter(|| {
                    let sol = greedy_cover(black_box(&instances[i % instances.len()]), target);
                    i += 1;
                    black_box(sol.picks.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_variants,
    bench_exact_vs_greedy,
    bench_partial_cover
);
criterion_main!(benches);
