//! Simulator throughput: requests simulated per second for the basic and
//! enhanced configurations — what bounds the scale of the Fig 8–10
//! sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rnb_sim::{SimCluster, SimConfig};
use rnb_workload::{EgoRequests, RequestStream};
use std::hint::black_box;

fn bench_execute(c: &mut Criterion) {
    let graph = rnb_graph::generate::powerlaw_graph(10_000, 1.75, 1, 500, 115_000, 9);
    let mut stream = EgoRequests::new(&graph, 9);
    let requests: Vec<Vec<u64>> = stream.take_requests(512);

    let mut group = c.benchmark_group("simulator/execute");
    group.throughput(Throughput::Elements(1));

    for (name, config) in [
        ("basic_k1", SimConfig::basic(16, 1)),
        ("basic_k4", SimConfig::basic(16, 4)),
        ("enhanced_k4_mem2.5", SimConfig::enhanced(16, 4, 2.5)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            let mut cluster = SimCluster::new(config.clone(), graph.num_nodes());
            // Warm the caches so the enhanced config measures steady state.
            for req in &requests {
                cluster.execute(req);
            }
            let mut i = 0;
            b.iter(|| {
                let out = cluster.execute(black_box(&requests[i % requests.len()]));
                i += 1;
                black_box(out.total_txns())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_execute);
criterion_main!(benches);
