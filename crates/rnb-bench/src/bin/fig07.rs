//! Figure 7: a worked example of request locality reducing the needed
//! memory. Two overlapping requests bundle their shared items onto the
//! same server, so the shared items' replicas on other servers are never
//! touched and their LRUs eventually discard them.
//!
//! The paper's figure shows one hand-picked placement with this property;
//! we search the real placement for an equivalent quadruple of items and
//! replay it through the real planner. The end-to-end LRU consequence is
//! pinned by the deterministic test
//! `rnb_sim::cluster::tests::fig7_request_locality_keeps_shared_replicas_hot`.

use rnb_core::{Bundler, Placement, RnbConfig};

fn main() {
    let config = RnbConfig::new(4, 2).with_seed(rnb_bench::FIG_SEED);
    let bundler = Bundler::from_config(&config);

    // Find items (a, b, c, d) mirroring the figure: shared items a, b
    // have a common server; fillers c, d live elsewhere; both plans fetch
    // a and b together from that common server.
    let found = find_scenario(&bundler).expect("a scenario exists among small item ids");
    let (a, b, c, d) = found;

    println!("# Fig 7: request locality under greedy bundling (4 servers, 2 replicas)\n");
    for item in [a, b, c, d] {
        println!(
            "item {item}: replicas on servers {:?}",
            bundler.placement().replicas(item)
        );
    }
    println!();

    let requests = [vec![a, b, c], vec![a, b, d]];
    let mut shared_assignment: Vec<Vec<(u64, u32)>> = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        let plan = bundler.plan(request);
        println!("request {} = {:?}:", i + 1, request);
        for t in &plan.transactions {
            println!("  txn -> server {}: items {:?}", t.server, t.items);
        }
        shared_assignment.push(
            plan.assignment()
                .filter(|(item, _)| *item == a || *item == b)
                .collect(),
        );
        println!();
    }

    assert_eq!(
        shared_assignment[0], shared_assignment[1],
        "searched scenario must fetch shared items identically"
    );
    println!(
        "shared items {a},{b} are fetched from the same server in both requests;\n\
         their second replicas receive no traffic, so a memory-limited\n\
         deployment's LRUs discard them — replication that is never used costs\n\
         no resident memory (the overbooking insight, §III-C1)."
    );
}

/// Search small item ids for the figure's structure.
fn find_scenario(bundler: &Bundler) -> Option<(u64, u64, u64, u64)> {
    let p = bundler.placement();
    for a in 0..40u64 {
        for b in (a + 1)..40 {
            let ra = p.replicas(a);
            let rb = p.replicas(b);
            let Some(&shared) = ra.iter().find(|s| rb.contains(s)) else {
                continue;
            };
            for c in 0..40u64 {
                for d in 0..40u64 {
                    if [a, b].contains(&c) || [a, b, c].contains(&d) {
                        continue;
                    }
                    let plan1 = bundler.plan(&[a, b, c]);
                    let plan2 = bundler.plan(&[a, b, d]);
                    let on_shared = |plan: &rnb_core::FetchPlan| {
                        plan.assignment()
                            .filter(|&(i, s)| (i == a || i == b) && s == shared)
                            .count()
                            == 2
                    };
                    if on_shared(&plan1) && on_shared(&plan2) {
                        return Some((a, b, c, d));
                    }
                }
            }
        }
    }
    None
}
