//! Extension ablation: the policy knobs the paper leaves as "topics for
//! further research" (§III-C2) plus the two-service-class question
//! (§I-C):
//!
//! * hitchhiker LRU update: on-hit (paper) vs never;
//! * miss write-back: none vs first-picked (paper) vs all replicas;
//! * distinguished copies: pinned service class (paper) vs plain shared
//!   LRU (shows the database fetches pinning prevents).

use rnb_analysis::table::{f3, pct};
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_sim::config::{DistinguishedMode, HitchhikerLru, WritebackPolicy};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::EgoRequests;

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::SLASHDOT.scaled_down(40)
    } else {
        rnb_graph::SLASHDOT.scaled_down(8)
    };
    let graph = spec.generate(FIG_SEED);
    let warmup = scaled(20_000, 1_500);
    let measure = scaled(6_000, 800);

    let run = |name: &str, mutate: &dyn Fn(&mut SimConfig)| -> (String, rnb_sim::Metrics) {
        let mut sim = SimConfig::enhanced(16, 4, 2.0).with_seed(FIG_SEED);
        mutate(&mut sim);
        let cfg = ExperimentConfig::new(sim, warmup, measure);
        let mut stream = EgoRequests::new(&graph, FIG_SEED ^ 0xAB);
        (
            name.to_string(),
            run_experiment(&cfg, graph.num_nodes(), &mut stream),
        )
    };

    let variants: Vec<(String, rnb_sim::Metrics)> = vec![
        run("paper-defaults", &|_| {}),
        run("hh-lru-never", &|c| c.hitchhiker_lru = HitchhikerLru::Never),
        run("no-hitchhiking", &|c| c.hitchhiking = false),
        run("writeback-none", &|c| c.writeback = WritebackPolicy::None),
        run("writeback-all", &|c| {
            c.writeback = WritebackPolicy::AllReplicas
        }),
        run("no-dist-class", &|c| {
            c.distinguished = DistinguishedMode::InLru
        }),
    ];

    let mut table = Table::new(
        "Ext: enhancement policy ablation (16 servers, k=4, memory 2.0x)",
        &[
            "variant",
            "TPR",
            "miss_rate",
            "hh_hits",
            "round2_txns",
            "db_fetches",
        ],
    );
    for (name, m) in &variants {
        table.row(&[
            name.clone(),
            f3(m.tpr()),
            pct(m.miss_rate()),
            m.hitchhiker_hits.to_string(),
            m.round2_txns.to_string(),
            m.db_fetches.to_string(),
        ]);
    }
    emit(&table, "ext_policies");

    println!();
    println!(
        "reading guide: the paper's defaults should sit at or near the lowest TPR;\n\
         writeback-none shows the adaptive cache never forming; no-dist-class is\n\
         the only variant with database fetches — the cost §III-D's pinning\n\
         guarantee removes."
    );
}
