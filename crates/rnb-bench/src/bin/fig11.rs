//! Figure 11: LIMIT requests with items "selected so as to minimize the
//! number of transactions; no replication". Average TPR vs number of
//! servers for fetched fractions 100% (full set), 95%, 90% and 50%, for
//! two request-set sizes (Monte-Carlo simplified simulator, §III-F).

use rnb_analysis::montecarlo::{average_tpr, McConfig};
use rnb_analysis::table::f3;
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};

fn main() {
    let trials = scaled(2000, 200);
    let fractions = [1.0f64, 0.95, 0.90, 0.50];
    let server_counts = [4usize, 8, 16, 32, 64];

    let mut table = Table::new(
        "Fig 11: TPR of LIMIT requests, no replication (Monte-Carlo)",
        &["request_size", "servers", "100%", "95%", "90%", "50%"],
    );
    for &m in &[50usize, 100] {
        for &n in &server_counts {
            let mut row = vec![m.to_string(), n.to_string()];
            for &frac in &fractions {
                let cfg = McConfig {
                    servers: n,
                    replication: 1,
                    request_size: m,
                    fetch_fraction: frac,
                    trials,
                    seed: FIG_SEED ^ (n as u64) << 8 ^ m as u64,
                };
                row.push(f3(average_tpr(&cfg)));
            }
            table.row(&row);
        }
    }
    emit(&table, "fig11");

    println!();
    println!(
        "paper checkpoint: \"even without replication there is a significant\n\
         reduction in the number of transactions required\" when the client may\n\
         drop the most expensive 5-50% of items."
    );
}
