//! Figure 8: reduction in TPR (relative to no replication) vs the
//! relative amount of memory, for logical replication levels 1–4 with all
//! enhancements (overbooking + distinguished copies + hitchhiking).
//! 16 servers, Slashdot-like ego requests. 1.0 on the memory axis is
//! exactly one copy of the data.

use rnb_analysis::table::{f3, pct};
use rnb_analysis::Table;
use rnb_bench::{emit, memory_sweep_grid, scaled, FIG_SEED};

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::SLASHDOT.scaled_down(20)
    } else {
        rnb_graph::SLASHDOT.scaled_down(4)
    };
    // scaled_down(4) keeps the degree distribution but makes the cache
    // warm-up tractable; memory factors are relative so the curves match.
    let graph = spec.generate(FIG_SEED);
    let servers = 16usize;
    let warmup = scaled(30_000, 2_000);
    let measure = scaled(8_000, 1_000);

    let factors = [1.0f64, 1.25, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
    let grid = memory_sweep_grid(
        &graph,
        servers,
        &[1, 2, 3, 4],
        &factors,
        1,
        warmup,
        measure,
        FIG_SEED,
    );

    // Baseline: no replication. k=1 uses only the pinned distinguished
    // copies, so its TPR is memory-independent — take it from the grid so
    // the normalisation shares the exact measurement window.
    let base = grid[0][0].tpr();
    let mut table = Table::new(
        "Fig 8: TPR reduction vs relative memory (16 servers, all enhancements)",
        &["memory", "k=1", "k=2", "k=3", "k=4"],
    );
    for (fi, &factor) in factors.iter().enumerate() {
        let mut row = vec![format!("{factor:.2}")];
        for m in &grid[fi] {
            row.push(pct(1.0 - m.tpr() / base));
        }
        table.row(&row);
    }
    emit(&table, "fig08");

    println!();
    println!("baseline (no replication) TPR = {}", f3(base));
    println!(
        "paper checkpoints: ~50% TPR reduction needs only ~2.5x memory (vs 4x for\n\
         trivial replication, Fig 6); a second copy you already keep for disaster\n\
         recovery (memory 2.0) is worth ~25% for free; excessive overbooking at\n\
         low memory can *increase* TPR (k=4 at memory 1.0)."
    );
}
