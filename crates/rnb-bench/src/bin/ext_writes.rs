//! Extension experiment (§III-G, §IV): where does RnB stop paying off as
//! the workload stops being read-mostly?
//!
//! The paper lists "the activity is not read mostly" first among the
//! cases where RnB is ineffective: every write must touch all `k`
//! replicas. This sweep measures total server transactions per operation
//! for no-replication vs RnB(k=4) under both write policies, across
//! write fractions, and reports the crossover.

use rnb_analysis::table::f3;
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_core::WritePolicy;
use rnb_sim::{SimCluster, SimConfig};
use rnb_workload::{EgoRequests, Op, ReadWriteMix};

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::SLASHDOT.scaled_down(40)
    } else {
        rnb_graph::SLASHDOT.scaled_down(8)
    };
    let graph = spec.generate(FIG_SEED);
    let ops = scaled(20_000, 2_000);

    let run = |replication: usize, policy: WritePolicy, write_fraction: f64, burst: usize| -> f64 {
        let sim = SimConfig::enhanced(16, replication, 1.0 + replication as f64)
            .with_seed(FIG_SEED)
            .with_hitchhiking(false);
        let mut cluster = SimCluster::new(sim, graph.num_nodes());
        let reads = EgoRequests::new(&graph, FIG_SEED ^ 0xEE);
        let mut mixed = ReadWriteMix::new(
            reads,
            graph.num_nodes() as u64,
            write_fraction,
            FIG_SEED ^ 0xFF,
        )
        .with_write_burst(burst);
        // Warm up, then measure.
        for _ in 0..ops / 4 {
            step(&mut cluster, mixed.next_op(), policy);
        }
        cluster.reset_metrics();
        for _ in 0..ops {
            step(&mut cluster, mixed.next_op(), policy);
        }
        cluster.metrics().txns_per_op()
    };

    let mut table = Table::new(
        "Ext: server transactions per operation vs write fraction (16 servers)",
        &[
            "write_frac",
            "k=1",
            "k=4 write-all",
            "k=4 invalidate",
            "k=4 bundled x16",
        ],
    );
    for &frac in &[0.0f64, 0.001, 0.01, 0.05, 0.1, 0.2, 0.4] {
        table.row(&[
            format!("{frac:.3}"),
            f3(run(1, WritePolicy::WriteAll, frac, 1)),
            f3(run(4, WritePolicy::WriteAll, frac, 1)),
            f3(run(4, WritePolicy::InvalidateThenWrite, frac, 1)),
            f3(run(4, WritePolicy::WriteAll, frac, 16)),
        ]);
    }
    emit(&table, "ext_writes");

    println!();
    println!(
        "reading guide: at low write fractions RnB(k=4) needs far fewer transactions\n\
         per operation; each write costs k transactions, so the advantage erodes and\n\
         eventually inverts — the paper's \"not read mostly\" boundary (§III-G).\n\
         InvalidateThenWrite pays the same write cost but keeps reads atomic-safe\n\
         at slightly higher read TPR (replicas must be refetched after writes, §IV).\n\
         The bundled column groups 16-item write bursts by server (the multi_set\n\
         planner's shape): each touched server costs one transaction per burst,\n\
         which pushes the crossover to much higher write fractions."
    );
}

fn step(cluster: &mut SimCluster, op: Op, policy: WritePolicy) {
    match op {
        Op::Read(request) => {
            cluster.execute(&request);
        }
        Op::Write(item) => {
            cluster.execute_write(item, policy);
        }
        Op::WriteBurst(items) => {
            cluster.execute_write_batch(&items, policy);
        }
    }
}
