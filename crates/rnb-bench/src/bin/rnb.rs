//! `rnb` — command-line front end for the RnB toolkit.
//!
//! ```text
//! rnb urn   --servers 16 --items 50
//! rnb tpr   --servers 16 --replicas 4 --request-size 50 [--fraction 0.9] [--trials 2000]
//! rnb plan  --servers 16 --replicas 4 --items 1,2,3,40,99 [--limit 3 | --budget 2]
//! rnb graph --dataset slashdot [--scale 10] [--seed 1] [--out FILE]
//! ```
//!
//! Argument handling is deliberately std-only (no clap) — see the parser
//! unit tests at the bottom.

use rnb_analysis::montecarlo::{tpr_stats, McConfig};
use rnb_analysis::urn;
use rnb_core::{Bundler, RnbConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(msg) => {
            eprintln!("rnb: {msg}");
            eprintln!("{}", USAGE);
            std::process::exit(2);
        }
    }
}

const USAGE: &str = "\
usage:
  rnb urn   --servers N --items M
  rnb tpr   --servers N --replicas K --request-size M [--fraction F] [--trials T] [--seed S]
  rnb plan  --servers N --replicas K --items 1,2,3 [--limit X | --budget T] [--seed S]
  rnb graph --dataset slashdot|epinions [--scale S] [--seed S] [--out FILE]";

/// Parse and execute; returns the text to print (pure, for tests).
fn run(args: &[String]) -> Result<String, String> {
    let (command, rest) = args.split_first().ok_or("missing command")?;
    let opts = parse_flags(rest)?;
    match command.as_str() {
        "urn" => cmd_urn(&opts),
        "tpr" => cmd_tpr(&opts),
        "plan" => cmd_plan(&opts),
        "graph" => cmd_graph(&opts),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// `--name value` pairs, strictly.
fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag:?}"))?;
        let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
        out.push((name.to_string(), value.clone()));
    }
    Ok(out)
}

fn get<'a>(opts: &'a [(String, String)], name: &str) -> Option<&'a str> {
    opts.iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn get_num<T: std::str::FromStr>(
    opts: &[(String, String)],
    name: &str,
    default: Option<T>,
) -> Result<T, String> {
    match get(opts, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        None => default.ok_or_else(|| format!("--{name} is required")),
    }
}

fn cmd_urn(opts: &[(String, String)]) -> Result<String, String> {
    let n: usize = get_num(opts, "servers", None)?;
    let m: usize = get_num(opts, "items", None)?;
    if n == 0 || m == 0 {
        return Err("--servers and --items must be positive".into());
    }
    Ok(format!(
        "urn model, {n} servers, {m}-item requests (§II-A):\n\
         W(N,M) (TPRPS)            = {:.4}\n\
         expected TPR              = {:.3}\n\
         doubling scaling factor   = {:.3}  (ideal 2.0)\n\
         throughput vs 1 server    = {:.2}x (ideal {n}x)\n",
        urn::w(n, m),
        urn::tpr(n, m),
        urn::doubling_scaling_factor(n, m),
        urn::throughput_scaling(1, n, m),
    ))
}

fn cmd_tpr(opts: &[(String, String)]) -> Result<String, String> {
    let cfg = McConfig {
        servers: get_num(opts, "servers", None)?,
        replication: get_num(opts, "replicas", None)?,
        request_size: get_num(opts, "request-size", None)?,
        fetch_fraction: get_num(opts, "fraction", Some(1.0))?,
        trials: get_num(opts, "trials", Some(2000))?,
        seed: get_num(opts, "seed", Some(rnb_bench::FIG_SEED))?,
    };
    let stats = tpr_stats(&cfg);
    let base = urn::tpr(cfg.servers, cfg.request_size);
    Ok(format!(
        "Monte-Carlo TPR, {} servers, k={}, M={}, fetch {:.0}% ({} trials):\n\
         mean TPR        = {:.3} ± {:.3} (95% CI)\n\
         no-replication  = {:.3} (urn model)\n\
         reduction       = {:.1}%\n",
        cfg.servers,
        cfg.replication,
        cfg.request_size,
        cfg.fetch_fraction * 100.0,
        cfg.trials,
        stats.mean(),
        stats.ci95(),
        base,
        (1.0 - stats.mean() / base) * 100.0,
    ))
}

fn cmd_plan(opts: &[(String, String)]) -> Result<String, String> {
    let servers: usize = get_num(opts, "servers", None)?;
    let replicas: usize = get_num(opts, "replicas", None)?;
    let items: Vec<u64> = get(opts, "items")
        .ok_or("--items is required")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad item id {s:?}")))
        .collect::<Result<_, _>>()?;
    if items.is_empty() {
        return Err("--items must list at least one id".into());
    }
    let seed: u64 = get_num(opts, "seed", Some(RnbConfig::new(1, 1).seed))?;
    let bundler = Bundler::from_config(&RnbConfig::new(servers, replicas).with_seed(seed));
    let plan = if let Some(limit) = get(opts, "limit") {
        let k: usize = limit.parse().map_err(|_| "--limit: not a number")?;
        bundler.plan_limit(&items, k)
    } else if let Some(budget) = get(opts, "budget") {
        let t: usize = budget.parse().map_err(|_| "--budget: not a number")?;
        bundler.plan_budget(&items, t)
    } else {
        bundler.plan(&items)
    };
    let mut out = format!(
        "{} items over {servers} servers (k={replicas}): {} transaction(s), {} item(s) planned\n",
        plan.requested,
        plan.tpr(),
        plan.planned_items()
    );
    for t in &plan.transactions {
        out.push_str(&format!("  server {:>3} <- {:?}\n", t.server, t.items));
    }
    Ok(out)
}

fn cmd_graph(opts: &[(String, String)]) -> Result<String, String> {
    let spec = match get(opts, "dataset").ok_or("--dataset is required")? {
        "slashdot" => rnb_graph::SLASHDOT,
        "epinions" => rnb_graph::EPINIONS,
        other => return Err(format!("unknown dataset {other:?} (slashdot|epinions)")),
    };
    let scale: usize = get_num(opts, "scale", Some(1))?;
    let seed: u64 = get_num(opts, "seed", Some(rnb_bench::FIG_SEED))?;
    let spec = if scale > 1 {
        spec.scaled_down(scale)
    } else {
        spec
    };
    let graph = spec.generate(seed);
    let hist = rnb_graph::DegreeHistogram::of_out_degrees(&graph);
    let mut out = format!(
        "{} (1/{scale} scale, seed {seed}): {} nodes, {} edges, mean degree {:.2}\n\
         degree p50 {} / p90 {} / p99 {} / max {}\n",
        spec.name,
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_out_degree(),
        hist.quantile(0.5),
        hist.quantile(0.9),
        hist.quantile(0.99),
        hist.max_degree()
    );
    if let Some(path) = get(opts, "out") {
        rnb_graph::edgelist::save_edge_list(&graph, std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        out.push_str(&format!("edge list written to {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn urn_command_output() {
        let out = run(&args("urn --servers 16 --items 50")).unwrap();
        assert!(out.contains("expected TPR"));
        assert!(out.contains("doubling scaling factor"));
    }

    #[test]
    fn tpr_command_runs_small() {
        let out = run(&args(
            "tpr --servers 8 --replicas 3 --request-size 20 --trials 50",
        ))
        .unwrap();
        assert!(out.contains("mean TPR"));
        assert!(out.contains("reduction"));
    }

    #[test]
    fn plan_command_full_limit_budget() {
        let full = run(&args("plan --servers 8 --replicas 2 --items 1,2,3,4,5")).unwrap();
        assert!(full.contains("5 items over 8 servers"));
        let lim = run(&args(
            "plan --servers 8 --replicas 2 --items 1,2,3,4,5 --limit 3",
        ))
        .unwrap();
        assert!(lim.contains("item(s) planned"));
        let bud = run(&args(
            "plan --servers 8 --replicas 2 --items 1,2,3,4,5 --budget 1",
        ))
        .unwrap();
        assert!(bud.contains("1 transaction(s)"));
    }

    #[test]
    fn graph_command_scaled() {
        let out = run(&args("graph --dataset epinions --scale 100 --seed 3")).unwrap();
        assert!(out.contains("nodes"));
        assert!(out.contains("mean degree"));
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&args("")).is_err());
        assert!(run(&args("bogus")).is_err());
        assert!(run(&args("urn --servers 16")).is_err());
        assert!(run(&args("urn --servers x --items 5")).is_err());
        assert!(run(&args("plan --servers 4 --replicas 2 --items a,b")).is_err());
        assert!(run(&args("graph --dataset nope")).is_err());
        assert!(run(&args("urn --servers")).is_err());
        assert!(run(&args("urn servers 4")).is_err());
    }
}
