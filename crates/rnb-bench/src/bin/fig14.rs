//! Figure 14: the Fig 13 micro-benchmark with two concurrent clients
//! (the paper's two client machines become two client threads with their
//! own connections; Appendix).

fn main() {
    rnb_bench::store_micro_figure(
        2,
        "fig14",
        "Fig 14: items/sec vs transaction size (2 clients)",
    );
}
