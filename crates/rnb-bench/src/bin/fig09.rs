//! Figure 9: relative TPR reduction from RnB when every two consecutive
//! requests are merged (§III-E), vs memory, replication levels 1–4,
//! 16 servers. Normalised to the merged no-replication baseline, so it is
//! directly comparable to Fig 8.

use rnb_analysis::table::{f3, pct};
use rnb_analysis::Table;
use rnb_bench::{emit, memory_sweep_grid, scaled, FIG_SEED};

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::SLASHDOT.scaled_down(20)
    } else {
        rnb_graph::SLASHDOT.scaled_down(4)
    };
    let graph = spec.generate(FIG_SEED);
    let servers = 16usize;
    let warmup = scaled(30_000, 2_000);
    let measure = scaled(8_000, 1_000);
    let merge = 2usize;

    let factors = [1.0f64, 1.25, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
    let grid = memory_sweep_grid(
        &graph,
        servers,
        &[1, 2, 3, 4],
        &factors,
        merge,
        warmup,
        measure,
        FIG_SEED,
    );
    // Merged no-replication baseline, from the grid's own k=1 row (its
    // TPR is memory-independent).
    let base = grid[0][0].tpr();
    let mut table = Table::new(
        "Fig 9: TPR reduction vs memory when merging 2 requests (16 servers)",
        &["memory", "k=1", "k=2", "k=3", "k=4"],
    );
    for (fi, &factor) in factors.iter().enumerate() {
        let mut row = vec![format!("{factor:.2}")];
        for m in &grid[fi] {
            row.push(pct(1.0 - m.tpr() / base));
        }
        table.row(&row);
    }
    emit(&table, "fig09");

    println!();
    println!(
        "merged no-replication baseline TPR = {} (per merged request)",
        f3(base)
    );
    println!(
        "paper checkpoint: \"the gain from adding replicas at any given memory level\n\
         is lower in such a setting\" than in Fig 8 — merging mixes unrelated items\n\
         and dilutes the self-organising request locality."
    );
}
