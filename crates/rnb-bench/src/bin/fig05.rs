//! Figure 5: node (out-)degree histogram of the Epinions network
//! (synthetic stand-in matched to 75,879 nodes / 508,837 edges; log2
//! bins).

use rnb_analysis::Table;
use rnb_bench::{emit, FIG_SEED};
use rnb_graph::DegreeHistogram;

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::EPINIONS.scaled_down(20)
    } else {
        rnb_graph::EPINIONS
    };
    let graph = spec.generate(FIG_SEED);
    let hist = DegreeHistogram::of_out_degrees(&graph);

    let mut table = Table::new(
        "Fig 5: Epinions-like node degree histogram (log2 bins)",
        &["degree_lo", "degree_hi", "nodes"],
    );
    for (lo, hi, count) in hist.log2_bins() {
        table.row(&[lo.to_string(), hi.to_string(), count.to_string()]);
    }
    emit(&table, "fig05");

    println!();
    println!(
        "nodes {}  edges {}  mean degree {:.2} (paper: 75879 / 508837 / 6.7)\n\
         p50 {}  p90 {}  p99 {}  max {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.avg_out_degree(),
        hist.quantile(0.5),
        hist.quantile(0.9),
        hist.quantile(0.99),
        hist.max_degree()
    );
}
