//! Figure 6: average TPR when using basic RnB vs the number of replicas,
//! for a 16-server system (unlimited memory — every logical replica
//! resident), on both social networks. 1 replica is the no-replication
//! baseline.

use rnb_analysis::table::{f3, pct};
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::EgoRequests;

fn main() {
    let (slashdot_spec, epinions_spec) = if rnb_bench::quick() {
        (
            rnb_graph::SLASHDOT.scaled_down(20),
            rnb_graph::EPINIONS.scaled_down(20),
        )
    } else {
        (rnb_graph::SLASHDOT, rnb_graph::EPINIONS)
    };
    let measure = scaled(4000, 500);
    let servers = 16usize;

    let tpr_of = |graph: &rnb_graph::DiGraph, replication: usize| -> f64 {
        let cfg = ExperimentConfig::new(
            SimConfig::basic(servers, replication).with_seed(FIG_SEED),
            0,
            measure,
        );
        let mut stream = EgoRequests::new(graph, FIG_SEED + replication as u64);
        run_experiment(&cfg, graph.num_nodes(), &mut stream).tpr()
    };

    let slashdot = slashdot_spec.generate(FIG_SEED);
    let epinions = epinions_spec.generate(FIG_SEED + 1);

    let mut table = Table::new(
        "Fig 6: average TPR vs number of replicas (16 servers, basic RnB)",
        &[
            "replicas",
            "slashdot_tpr",
            "slashdot_vs_1",
            "epinions_tpr",
            "epinions_vs_1",
        ],
    );
    let s_base = tpr_of(&slashdot, 1);
    let e_base = tpr_of(&epinions, 1);
    for replication in 1..=6usize {
        let s = if replication == 1 {
            s_base
        } else {
            tpr_of(&slashdot, replication)
        };
        let e = if replication == 1 {
            e_base
        } else {
            tpr_of(&epinions, replication)
        };
        table.row(&[
            replication.to_string(),
            f3(s),
            pct(1.0 - s / s_base),
            f3(e),
            pct(1.0 - e / e_base),
        ]);
    }
    emit(&table, "fig06");

    println!();
    println!(
        "paper checkpoint: \"reducing the number of transactions, in some cases, by\n\
         more than 50% utilizing a total of 4 copies for each item\"."
    );
}
