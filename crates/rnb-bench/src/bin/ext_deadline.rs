//! Extension experiment: the paper's *second* LIMIT form — "fetch as many
//! items as possible out of the following list within X milliseconds"
//! (§III-F; the paper shows only the at-least-X form and defers this one
//! to the thesis). With per-transaction latency dominating, a deadline is
//! a budget of parallel/sequential transactions; we sweep that budget and
//! report the fraction of a 50-item request that gets fetched.

use rnb_analysis::montecarlo::{average_coverage_at_budget, McConfig};
use rnb_analysis::table::pct;
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};

fn main() {
    let trials = scaled(2000, 200);
    let servers = 16usize;
    let request_size = 50usize;

    let mut table = Table::new(
        "Ext: fraction of a 50-item request fetched within a transaction budget (16 servers)",
        &["budget_txns", "k=1", "k=2", "k=3", "k=4", "k=5"],
    );
    for budget in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let mut row = vec![budget.to_string()];
        for k in 1..=5usize {
            let cfg = McConfig {
                servers,
                replication: k,
                request_size,
                fetch_fraction: 1.0,
                trials,
                seed: FIG_SEED ^ (budget as u64) << 8 ^ k as u64,
            };
            row.push(pct(average_coverage_at_budget(&cfg, budget)));
        }
        table.row(&row);
    }
    emit(&table, "ext_deadline");

    println!();
    println!(
        "reading guide: replication multiplies what a deadline buys — e.g. at a\n\
         4-transaction budget, compare k=1 with k=4/5. RnB turns latency budgets\n\
         into completeness, which is the product form of §III-F's LIMIT gains."
    );
}
