//! Figure 3: quantifying the multi-get hole. Relative throughput vs
//! number of servers (no replication, Slashdot-like ego requests),
//! against the ideal linear scaling.
//!
//! The simulator produces each cluster size's transaction-size histogram;
//! the calibration cost model (Appendix) turns it into a throughput
//! estimate, normalised to the single-server system.

use rnb_analysis::table::f3;
use rnb_analysis::{CostModel, Table};
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::EgoRequests;

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::SLASHDOT.scaled_down(20)
    } else {
        rnb_graph::SLASHDOT
    };
    let graph = spec.generate(FIG_SEED);
    let measure = scaled(4000, 500);
    let model = CostModel::PAPER_ERA;

    let mut rows: Vec<(usize, f64)> = Vec::new();
    for servers in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let cfg =
            ExperimentConfig::new(SimConfig::basic(servers, 1).with_seed(FIG_SEED), 0, measure);
        let mut stream = EgoRequests::new(&graph, FIG_SEED + servers as u64);
        let metrics = run_experiment(&cfg, graph.num_nodes(), &mut stream);
        let throughput =
            model.cluster_throughput(&metrics.txn_size_hist, metrics.requests, servers);
        rows.push((servers, throughput));
    }

    let base = rows[0].1;
    let mut table = Table::new(
        "Fig 3: throughput relative to a single server (no replication, Slashdot-like)",
        &["servers", "relative_throughput", "ideal_linear"],
    );
    for &(servers, thr) in &rows {
        table.row(&[servers.to_string(), f3(thr / base), f3(servers as f64)]);
    }
    emit(&table, "fig03");

    println!();
    println!(
        "paper checkpoint: the solid line falls far below the dashed ideal — with mean\n\
         request size ~{:.1}, adding servers mostly adds transactions, not throughput.",
        graph.avg_out_degree()
    );
}
