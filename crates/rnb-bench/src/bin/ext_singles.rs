//! Extension experiment (§III-G): single-item requests.
//!
//! > "Data items are read individually (single-item requests), without
//! > any grouping of the requested items: In such cases, basic RnB would
//! > do nothing, but cross-request bundling can still help."
//!
//! We drive the simulator with single-item requests and sweep the
//! cross-request merge window: without merging, RnB's TPR per user
//! request is exactly 1 at every replication level (nothing to bundle);
//! with a merge window of g, the g requests share transactions and
//! replication starts paying again.

use rnb_analysis::table::f3;
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::UniformRequests;

fn main() {
    let measure = scaled(4000, 500);
    let universe = 20_000u64;
    let servers = 16usize;

    let mut table = Table::new(
        "Ext: single-item requests x cross-request merging (16 servers)",
        &[
            "merge_window",
            "k=1 tpr/user",
            "k=2 tpr/user",
            "k=4 tpr/user",
        ],
    );
    for &window in &[1usize, 4, 16, 64] {
        let mut row = vec![window.to_string()];
        for &k in &[1usize, 2, 4] {
            let cfg =
                ExperimentConfig::new(SimConfig::basic(servers, k).with_seed(FIG_SEED), 0, measure)
                    .with_merge_window(window);
            let mut stream = UniformRequests::new(universe, 1, FIG_SEED ^ window as u64);
            let m = run_experiment(&cfg, universe as usize, &mut stream);
            // One merged request serves `window` user requests.
            row.push(f3(m.tpr() / window as f64));
        }
        table.row(&row);
    }
    emit(&table, "ext_singles");

    println!();
    println!(
        "reading guide: at window 1 every row is 1.0 — single-item requests give\n\
         basic RnB nothing to bundle (§III-G). Widening the merge window turns\n\
         unrelated singles into multi-gets; replication then multiplies the\n\
         merging gain (k=4 at window 64 vs k=1 at window 64)."
    );
}
