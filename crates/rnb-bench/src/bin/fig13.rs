//! Figure 13: micro-benchmark — average items fetched per second from one
//! store server vs the number of items in a transaction, one client
//! (memaslap analog over loopback TCP, 10-byte values, one set per 1000
//! items; Appendix). Also fits the linear calibration cost model used by
//! Fig 3.

fn main() {
    rnb_bench::store_micro_figure(
        1,
        "fig13",
        "Fig 13: items/sec vs transaction size (1 client)",
    );
}
