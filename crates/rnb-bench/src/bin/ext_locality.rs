//! Extension ablation: how community structure (triadic clustering)
//! drives the request-locality effects of §III-C1 and §III-E.
//!
//! The paper's Fig 9 discussion argues merging unrelated requests dilutes
//! the "self organization" that same-request affinity gives the per-server
//! LRUs. A configuration-model graph has no clustering, so that dilution
//! is invisible there; this ablation sweeps community mixing and reports
//! the RnB gain for single vs merged-2 request handling on each graph.

use rnb_analysis::table::{f3, pct};
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_graph::community::{mean_friendset_overlap, CommunitySpec};
use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
use rnb_workload::EgoRequests;

fn main() {
    let scale = if rnb_bench::quick() { 40 } else { 10 };
    let warmup = scaled(25_000, 1_500);
    let measure = scaled(6_000, 800);

    let mut table = Table::new(
        "Ext: RnB gain vs community mixing, single vs merged-2 (16 servers, k=4, mem 2.0x)",
        &[
            "mixing",
            "friendset_overlap",
            "gain_single",
            "gain_merged2",
            "merge_dilution",
        ],
    );

    for &mixing in &[0.05f64, 0.2, 0.5, 1.0] {
        let spec = CommunitySpec::slashdot_like(scale, mixing);
        let graph = spec.generate(FIG_SEED);
        let overlap = mean_friendset_overlap(&graph, 4000, FIG_SEED);

        let gain = |merge: usize| -> f64 {
            let tpr_of = |replication: usize| {
                let sim = SimConfig::enhanced(16, replication, 2.0).with_seed(FIG_SEED);
                let cfg = ExperimentConfig::new(sim, warmup, measure).with_merge_window(merge);
                let mut stream = EgoRequests::new(&graph, FIG_SEED ^ merge as u64);
                run_experiment(&cfg, graph.num_nodes(), &mut stream).tpr()
            };
            1.0 - tpr_of(4) / tpr_of(1)
        };

        let single = gain(1);
        let merged = gain(2);
        table.row(&[
            format!("{mixing:.2}"),
            f3(overlap),
            pct(single),
            pct(merged),
            // positive = merging dilutes the replica gain (paper's claim)
            pct(single - merged),
        ]);
    }
    emit(&table, "ext_locality");

    println!();
    println!(
        "reading guide: low mixing = strong communities = overlapping ego requests.\n\
         The paper's Fig 9 observation — merging lowers the relative gain from\n\
         replicas — appears as positive merge_dilution where friend sets overlap,\n\
         and vanishes (or inverts) on clustering-free graphs (mixing 1.0), which\n\
         is why the headline Fig 9 run on a configuration-model graph shows\n\
         near-zero dilution (see EXPERIMENTS.md)."
    );
}
