//! Extension experiment: RnB at large cluster sizes — the paper's own
//! future-work item (§V-B: "Studies simulating or implementing RnB on
//! tens of thousands of servers are called for", including "the quality
//! and overhead of the bundling algorithms").
//!
//! Monte-Carlo (no memory limits), request size 50 and 500, clusters up
//! to 16,384 servers: the relative TPR gain of k replicas and the
//! client-side bundling cost per request.

use rnb_analysis::montecarlo::{average_tpr, McConfig};
use rnb_analysis::table::{f3, pct};
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_core::{Bundler, RnbConfig};
use std::time::Instant;

fn main() {
    let trials = scaled(300, 50);

    let mut table = Table::new(
        "Ext: RnB at scale (Monte-Carlo, no memory limit)",
        &[
            "servers",
            "M",
            "tpr_k1",
            "gain_k2",
            "gain_k4",
            "bundle_us_k4",
        ],
    );
    for &servers in &[16usize, 64, 256, 1024, 4096, 16384] {
        for &m in &[50usize, 500] {
            let tpr = |k: usize| {
                average_tpr(&McConfig {
                    servers,
                    replication: k,
                    request_size: m,
                    fetch_fraction: 1.0,
                    trials,
                    seed: FIG_SEED ^ (servers as u64) << 8 ^ m as u64,
                })
            };
            let t1 = tpr(1);
            let t2 = tpr(2);
            let t4 = tpr(4);
            let us = bundle_cost_us(servers, 4, m, trials.min(100));
            table.row(&[
                servers.to_string(),
                m.to_string(),
                f3(t1),
                pct(1.0 - t2 / t1),
                pct(1.0 - t4 / t1),
                f3(us),
            ]);
        }
    }
    emit(&table, "ext_scale");

    println!();
    println!(
        "reading guide: the relative gain concentrates in the multi-get hole's own\n\
         regime (servers up to a few times k x M) and fades when every item lands\n\
         on its own server anyway (16k servers, M=50: ~3%) — bundling needs\n\
         replicas to *collide*. Client-side planning cost grows with both N and M\n\
         (lazy-greedy keeps it far below the plain re-scan; see the cover bench),\n\
         quantifying the 'extra work for the front-end servers' of §V-B."
    );
}

/// Mean wall-clock cost of planning one M-item request at cluster size N.
fn bundle_cost_us(servers: usize, replication: usize, m: usize, reps: usize) -> f64 {
    let bundler = Bundler::from_config(&RnbConfig::new(servers, replication).with_seed(FIG_SEED));
    let requests: Vec<Vec<u64>> = (0..16u64)
        .map(|r| {
            (0..m as u64)
                .map(|i| r.wrapping_mul(0x9e37_79b9).wrapping_add(i * 2654435761))
                .collect()
        })
        .collect();
    // Warm the caches/allocator.
    for req in &requests {
        std::hint::black_box(bundler.plan(req));
    }
    let start = Instant::now();
    for i in 0..reps {
        std::hint::black_box(bundler.plan(&requests[i % requests.len()]));
    }
    start.elapsed().as_secs_f64() * 1e6 / reps as f64
}
