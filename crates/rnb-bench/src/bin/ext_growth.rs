//! Extension experiment: smooth cluster growth.
//!
//! §I-C: "RnB permits flexible growth and relatively easy deployment";
//! §II-C: full-system replication "only permits system enlargement in
//! relatively large strides" (a whole extra copy of the cluster).
//!
//! We grow an RCH-placed RnB cluster one server at a time from 16 to 32
//! and measure, per step: the fraction of replica sets disturbed (data
//! that must move) and the Monte-Carlo TPR. Full-system replication gets
//! only two feasible points in the same range: 16 servers (1 copy) and
//! 32 servers (2 copies of 16) — everything in between is unreachable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rnb_analysis::table::{f3, pct};
use rnb_analysis::{urn, Table};
use rnb_bench::{emit, scaled, FIG_SEED};
use rnb_core::Bundler;
use rnb_hash::rch::RangedConsistentHash;
use rnb_hash::{HashKind, Placement};

fn main() {
    let items: u64 = 20_000;
    let request_size = 50usize;
    let trials = scaled(300, 60);
    let replication = 3usize;

    let mut rch = RangedConsistentHash::new(16, replication, HashKind::XxHash64, FIG_SEED);
    let mut prev: Vec<Vec<u32>> = (0..items).map(|i| rch.replicas(i)).collect();

    // Throughput unit: the plain (no-replication) 16-server system = 1.0.
    // Throughput of an N-server system with mean TPR t is ∝ N / t.
    let base_throughput = 16.0 / urn::tpr(16, request_size);

    let mut table = Table::new(
        "Ext: growing 16 -> 32 servers one at a time (RCH, k=3)",
        &[
            "servers",
            "replica_sets_moved",
            "mc_tpr",
            "rnb_rel_throughput",
            "fsr_rel_throughput",
        ],
    );
    let mut row = |n: usize, moved: Option<usize>, tpr: f64| {
        // Full-system replication can only exist at whole multiples of
        // the 16-server copy; its throughput is copies × base.
        let fsr = if n.is_multiple_of(16) {
            f3(n as f64 / 16.0)
        } else {
            "-".into()
        };
        table.row(&[
            n.to_string(),
            moved.map_or("-".into(), |m| pct(m as f64 / items as f64)),
            f3(tpr),
            f3((n as f64 / tpr) / base_throughput),
            fsr,
        ]);
    };

    row(
        16,
        None,
        mc_tpr(&rch, items, request_size, trials, FIG_SEED),
    );
    for step in 1..=16usize {
        rch.add_server();
        let now: Vec<Vec<u32>> = (0..items).map(|i| rch.replicas(i)).collect();
        let moved = prev.iter().zip(&now).filter(|(a, b)| a != b).count();
        prev = now;
        let tpr = mc_tpr(&rch, items, request_size, trials, FIG_SEED ^ step as u64);
        row(16 + step, Some(moved), tpr);
    }
    emit(&table, "ext_growth");

    println!();
    println!(
        "reading guide: each added server disturbs only ~{:.0}% of replica sets\n\
         (≈ k/N — consistent hashing's minimal disruption, carried to replica\n\
         groups by RCH) and adds a smooth slice of capacity. Full-system\n\
         replication is only defined at 16 and 32 servers (whole copies); note\n\
         the RnB cluster already outperforms the *doubled* FSR deployment's 2.0\n\
         before adding a single machine.",
        100.0 * replication as f64 / 16.0
    );
}

/// Monte-Carlo mean TPR of bundled fetches over the current placement.
fn mc_tpr(
    rch: &RangedConsistentHash,
    items: u64,
    request_size: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let bundler = Bundler::new(rch);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0usize;
    for _ in 0..trials {
        let mut request = Vec::with_capacity(request_size);
        while request.len() < request_size {
            let item = rng.random_range(0..items);
            if !request.contains(&item) {
                request.push(item);
            }
        }
        total += bundler.plan(&request).tpr();
    }
    total as f64 / trials as f64
}
