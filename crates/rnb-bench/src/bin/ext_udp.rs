//! Extension experiment: TCP vs UDP for the micro-benchmark transport
//! (Appendix).
//!
//! The paper chose TCP because memaslap over UDP "suffered, as expected,
//! from considerable packet loss issues when attempting to communicate
//! with the server as fast as possible over a protocol without flow
//! control." We reproduce the comparison: the same get workload run over
//! TCP (backpressured by the socket) and over UDP in flood mode
//! (fire-and-forget sends, responses gathered with a timeout), reporting
//! effective items/sec and response loss.

use rnb_analysis::table::pct;
use rnb_analysis::Table;
use rnb_bench::emit;
use rnb_store::{loadgen, LoadSpec, Store, StoreServer, UdpStoreClient, UdpStoreServer};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let secs = if rnb_bench::quick() { 0.2 } else { 1.0 };
    let keyspace = 4000usize;

    let store = Arc::new(Store::new(64 << 20));
    let tcp = StoreServer::start(Arc::clone(&store)).expect("tcp server");
    let udp = UdpStoreServer::start(Arc::clone(&store)).expect("udp server");
    loadgen::populate(tcp.addr(), keyspace, 10).expect("populate");

    let mut table = Table::new(
        "Ext: TCP vs flooded UDP get transport (Appendix)",
        &[
            "txn_items",
            "tcp_items_per_sec",
            "udp_items_per_sec",
            "udp_response_loss",
        ],
    );
    for &txn_size in &[1usize, 8, 32] {
        // TCP reference: the loadgen's request/response loop.
        let spec = LoadSpec {
            clients: 1,
            txn_size,
            keyspace,
            value_len: 10,
            set_every_items: 0,
            duration: Duration::from_secs_f64(secs),
        };
        let tcp_report = loadgen::run_load(tcp.addr(), &spec).expect("tcp load");

        // UDP flood: keep many requests in flight with no flow control.
        let (udp_items, loss) = udp_flood(udp.addr(), keyspace, txn_size, secs);

        table.row(&[
            txn_size.to_string(),
            format!("{:.0}", tcp_report.items_per_sec()),
            format!("{udp_items:.0}"),
            pct(loss),
        ]);
    }
    emit(&table, "ext_udp");

    println!();
    println!(
        "reading guide: without flow control the flooded UDP sender outruns the\n\
         server and the socket buffers; responses (or requests) are dropped and\n\
         effective goodput collapses while TCP backpressures to the server's\n\
         actual capacity — the Appendix's reason for benchmarking over TCP."
    );
}

/// Flood gets over UDP for `secs`, windowless: send continuously, drain
/// whatever responses arrive, count losses at the end. Returns
/// (items/sec successfully fetched, response loss fraction).
fn udp_flood(
    addr: std::net::SocketAddr,
    keyspace: usize,
    txn_size: usize,
    secs: f64,
) -> (f64, f64) {
    let mut client = UdpStoreClient::connect(addr, Duration::from_millis(1)).expect("udp client");
    client.set_nonblocking().expect("nonblocking");
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let start = Instant::now();
    let mut sent = 0u64;
    let mut responses: u64 = 0;
    let mut items = 0u64;
    let mut base = 0usize;
    let drain = |client: &mut UdpStoreClient, items: &mut u64, responses: &mut u64| {
        while let Ok(Some((_, _, _, body))) = client.recv_frame() {
            *items += body.windows(6).filter(|w| w == b"VALUE ").count() as u64;
            // One END per completed response (responses longer than one
            // frame put END in their last frame).
            *responses += body.windows(5).filter(|w| w == b"END\r\n").count() as u64;
        }
    };
    while Instant::now() < deadline {
        // Burst of sends with no pacing (the "as fast as possible" mode).
        for _ in 0..64 {
            let keys: Vec<Vec<u8>> = (0..txn_size)
                .map(|j| loadgen::key_of((base + j) % keyspace))
                .collect();
            base = base.wrapping_add(txn_size * 7 + 1);
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            if client.send_get(&refs).is_ok() {
                sent += 1;
            }
        }
        drain(&mut client, &mut items, &mut responses);
    }
    // Give the server a grace window to finish the backlog, then drain.
    std::thread::sleep(Duration::from_millis(200));
    drain(&mut client, &mut items, &mut responses);
    let elapsed = start.elapsed().as_secs_f64();
    let loss = 1.0 - (responses as f64 / sent.max(1) as f64).min(1.0);
    (items as f64 / elapsed, loss)
}
