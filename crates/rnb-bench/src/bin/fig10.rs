//! Figure 10: absolute TPR vs available memory, when merging two requests
//! (top block) and when handling single requests (bottom block), for
//! logical replication levels 1–4, 16 servers.
//!
//! The paper's point: merged TPR per *merged* request is higher than a
//! single request's, but serves two user requests — so the combination of
//! merging and RnB is beneficial even though each technique's relative
//! gain shrinks.

use rnb_analysis::table::f3;
use rnb_analysis::Table;
use rnb_bench::{emit, memory_sweep_grid, scaled, FIG_SEED};

fn main() {
    let spec = if rnb_bench::quick() {
        rnb_graph::SLASHDOT.scaled_down(20)
    } else {
        rnb_graph::SLASHDOT.scaled_down(4)
    };
    let graph = spec.generate(FIG_SEED);
    let servers = 16usize;
    let warmup = scaled(30_000, 2_000);
    let measure = scaled(8_000, 1_000);

    let factors = [1.0f64, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
    let mut table = Table::new(
        "Fig 10: absolute TPR vs memory (16 servers; merge=2 on top, single below)",
        &["mode", "memory", "k=1", "k=2", "k=3", "k=4"],
    );
    for (mode, merge) in [("merged2", 2usize), ("single", 1usize)] {
        let grid = memory_sweep_grid(
            &graph,
            servers,
            &[1, 2, 3, 4],
            &factors,
            merge,
            warmup,
            measure,
            FIG_SEED,
        );
        for (fi, &factor) in factors.iter().enumerate() {
            let mut row = vec![mode.to_string(), format!("{factor:.2}")];
            for m in &grid[fi] {
                row.push(f3(m.tpr()));
            }
            table.row(&row);
        }
    }
    emit(&table, "fig10");

    println!();
    println!(
        "read top rows per merged request (= 2 user requests): merged TPR / 2 is\n\
         below the single-request TPR at every memory level — merging + RnB\n\
         combine beneficially (paper Fig 10)."
    );
}
