//! Figure 2: TPRPS scaling factor when doubling the number of servers vs
//! the initial number of servers, for requests of 1, 10, 50 and 100 items
//! (analytic urn model, §II-A). Larger is better; 2.0 is ideal.

use rnb_analysis::table::f3;
use rnb_analysis::{urn, Table};

fn main() {
    let request_sizes = [1usize, 10, 50, 100];
    let mut table = Table::new(
        "Fig 2: TPRPS scaling factor when doubling servers (ideal = 2.0)",
        &["servers", "M=1", "M=10", "M=50", "M=100"],
    );
    let mut n = 1usize;
    while n <= 1024 {
        let row: Vec<String> = std::iter::once(n.to_string())
            .chain(
                request_sizes
                    .iter()
                    .map(|&m| f3(urn::doubling_scaling_factor(n, m))),
            )
            .collect();
        table.row(&row);
        n *= 2;
    }
    rnb_bench::emit(&table, "fig02");

    println!();
    println!(
        "paper checkpoints: M=1 scales ideally (2.0 everywhere); when servers == items,\n\
         doubling buys only ~50-60%; when servers << items the factor is ~1.0 (useless)."
    );
}
