//! Figure 12: average TPR for fetching a subset of the request set vs the
//! number of servers, with replication levels 2–5 (no overbooking), plus
//! the no-replication references with and without LIMIT. Two request
//! sizes × three subset sizes (50%, 90%, 95%). Monte-Carlo, §III-F.

use rnb_analysis::montecarlo::{average_tpr, McConfig};
use rnb_analysis::table::f3;
use rnb_analysis::Table;
use rnb_bench::{emit, scaled, FIG_SEED};

fn main() {
    let trials = scaled(1500, 150);
    let server_counts = [4usize, 8, 16, 32, 64];

    let mut table = Table::new(
        "Fig 12: TPR of LIMIT requests vs servers and replication (Monte-Carlo)",
        &[
            "request_size",
            "subset",
            "servers",
            "k=1_noLIMIT",
            "k=1",
            "k=2",
            "k=3",
            "k=4",
            "k=5",
        ],
    );
    for &m in &[50usize, 100] {
        for &frac in &[0.50f64, 0.90, 0.95] {
            for &n in &server_counts {
                let tpr = |replication: usize, fraction: f64| {
                    let cfg = McConfig {
                        servers: n,
                        replication,
                        request_size: m,
                        fetch_fraction: fraction,
                        trials,
                        seed: FIG_SEED ^ (n as u64) << 16 ^ (m as u64) << 4 ^ replication as u64,
                    };
                    average_tpr(&cfg)
                };
                let mut row = vec![
                    m.to_string(),
                    format!("{:.0}%", frac * 100.0),
                    n.to_string(),
                ];
                row.push(f3(tpr(1, 1.0)));
                for k in 1..=5usize {
                    row.push(f3(tpr(k, frac)));
                }
                table.row(&row);
            }
        }
    }
    emit(&table, "fig12");

    println!();
    println!(
        "paper checkpoints: \"With five replicas … we can reduce the number of\n\
         transactions to merely 30% of that required with a single replica. Even\n\
         with only two replicas … around 65% of the TPR without RnB.\""
    );
}
