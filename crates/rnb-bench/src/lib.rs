//! Benchmark harness for the RnB reproduction.
//!
//! One binary per paper figure (`fig02` … `fig14`) regenerates that
//! figure's series as an aligned table on stdout and a CSV under
//! `target/figures/`. Criterion benches (`benches/`) cover the ablations:
//! cover-solver quality/speed, placement schemes, planner cost, simulator
//! throughput, and the in-process store.
//!
//! Run a figure with, e.g.:
//! ```text
//! cargo run --release -p rnb-bench --bin fig06
//! ```
//! Every binary accepts `--quick` (or env `RNB_QUICK=1`) to shrink trial
//! counts for smoke runs; EXPERIMENTS.md records full-scale outputs.

use std::path::PathBuf;

/// True when the binary should run a reduced-scale smoke version.
pub fn quick() -> bool {
    std::env::args().any(|a| a == "--quick") || std::env::var_os("RNB_QUICK").is_some()
}

/// Pick between a full-scale and quick-scale parameter.
pub fn scaled(full: usize, quick_v: usize) -> usize {
    if quick() {
        quick_v
    } else {
        full
    }
}

/// Directory figure CSVs are written to.
pub fn figures_dir() -> PathBuf {
    PathBuf::from("target").join("figures")
}

/// Write `table` as `<name>.csv` under [`figures_dir`] and report where.
pub fn emit(table: &rnb_analysis::Table, name: &str) {
    table.print();
    let path = figures_dir().join(format!("{name}.csv"));
    match table.write_csv(&path) {
        Ok(()) => println!("\n[csv written to {}]", path.display()),
        Err(e) => eprintln!("\n[csv write failed: {e}]"),
    }
}

/// The fixed seed every figure uses (reproducible output).
pub const FIG_SEED: u64 = 20130520; // IPDPS 2013 conference date

/// Shared driver for the memory-sweep figures (Figs 8–10): run the
/// enhanced simulator (overbooking + distinguished copies + hitchhiking)
/// at one (logical replication, memory factor, merge window) point and
/// return the measured metrics.
/// Run a whole (memory factor × replication) sweep grid in parallel —
/// the points are independent simulations, so the Figs 8–10 binaries
/// fan them out across scoped threads (one per point, bounded by the
/// grid size; each point is single-threaded and allocation-light).
/// Returns results indexed `[factor][k-1]`.
#[allow(clippy::too_many_arguments)]
pub fn memory_sweep_grid(
    graph: &rnb_graph::DiGraph,
    servers: usize,
    replications: &[usize],
    factors: &[f64],
    merge_window: usize,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> Vec<Vec<rnb_sim::Metrics>> {
    let mut results: Vec<Vec<Option<rnb_sim::Metrics>>> =
        vec![vec![None; replications.len()]; factors.len()];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (fi, &factor) in factors.iter().enumerate() {
            for (ki, &k) in replications.iter().enumerate() {
                handles.push((
                    fi,
                    ki,
                    scope.spawn(move || {
                        memory_sweep_point(
                            graph,
                            servers,
                            k,
                            factor,
                            merge_window,
                            warmup,
                            measure,
                            seed,
                        )
                    }),
                ));
            }
        }
        for (fi, ki, handle) in handles {
            results[fi][ki] = Some(handle.join().expect("sweep point panicked"));
        }
    });
    results
        .into_iter()
        .map(|row| row.into_iter().map(|m| m.expect("filled")).collect())
        .collect()
}

/// Run one point of the paper's memory-headroom sweep: an enhanced-RnB
/// simulation at the given replication and memory factor, returning its
/// steady-state metrics.
#[allow(clippy::too_many_arguments)] // flat sweep parameters, called from 3 figure binaries
pub fn memory_sweep_point(
    graph: &rnb_graph::DiGraph,
    servers: usize,
    logical_replication: usize,
    memory_factor: f64,
    merge_window: usize,
    warmup: usize,
    measure: usize,
    seed: u64,
) -> rnb_sim::Metrics {
    use rnb_sim::{run_experiment, ExperimentConfig, SimConfig};
    let sim = SimConfig::enhanced(servers, logical_replication, memory_factor).with_seed(seed);
    let cfg = ExperimentConfig::new(sim, warmup, measure).with_merge_window(merge_window);
    let mut stream = rnb_workload::EgoRequests::new(graph, seed ^ 0x5745_4550); // "SWEP"
    run_experiment(&cfg, graph.num_nodes(), &mut stream)
}

/// Shared driver for the micro-benchmark figures (Figs 13–14): start a
/// store server, populate it memaslap-style, sweep transaction sizes, and
/// fit the calibration cost model.
pub fn store_micro_figure(clients: usize, name: &str, title: &str) {
    use rnb_analysis::table::f3;
    use rnb_analysis::{CostModel, Table};
    use rnb_store::{loadgen, LoadSpec, Store, StoreServer};
    use std::sync::Arc;
    use std::time::Duration;

    let secs = if quick() { 0.2 } else { 1.0 };
    let server = StoreServer::start(Arc::new(Store::new(64 << 20))).expect("start server");
    loadgen::populate(server.addr(), 10_000, 10).expect("populate");

    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut table = Table::new(title, &["txn_items", "items_per_sec", "txns_per_sec"]);
    let mut samples: Vec<(usize, f64)> = Vec::new();
    for &txn_size in &sizes {
        let spec = LoadSpec {
            duration: Duration::from_secs_f64(secs),
            ..LoadSpec::paper_style(clients, txn_size, Duration::from_secs(1))
        };
        let report = loadgen::run_load(server.addr(), &spec).expect("load run");
        samples.push((txn_size, report.items_per_sec()));
        table.row(&[
            txn_size.to_string(),
            format!("{:.0}", report.items_per_sec()),
            format!("{:.0}", report.txns_per_sec()),
        ]);
    }
    emit(&table, name);

    let fitted = CostModel::fit(&samples);
    println!();
    println!(
        "fitted cost model: txn_overhead = {} us, per_item = {} us\n\
         (paper-era defaults used by fig03: {} us / {} us)",
        f3(fitted.txn_overhead_us),
        f3(fitted.per_item_us),
        f3(CostModel::PAPER_ERA.txn_overhead_us),
        f3(CostModel::PAPER_ERA.per_item_us),
    );
    println!(
        "paper checkpoint: items/sec grows ~linearly with transaction size until\n\
         the per-item cost dominates — per-transaction work is the bottleneck."
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_grid_matches_sequential_points() {
        let graph = rnb_graph::generate::powerlaw_graph(600, 2.0, 1, 60, 4000, 5);
        let factors = [1.5f64, 2.5];
        let ks = [1usize, 3];
        let grid = memory_sweep_grid(&graph, 8, &ks, &factors, 1, 100, 200, 7);
        assert_eq!(grid.len(), factors.len());
        for (fi, &factor) in factors.iter().enumerate() {
            for (ki, &k) in ks.iter().enumerate() {
                let solo = memory_sweep_point(&graph, 8, k, factor, 1, 100, 200, 7);
                assert_eq!(
                    &grid[fi][ki], &solo,
                    "grid point (f={factor}, k={k}) diverged"
                );
            }
        }
    }

    #[test]
    fn scaled_picks_by_mode() {
        // In the test harness no --quick arg is present unless RNB_QUICK
        // is exported; accept either, but the two branches must differ.
        let v = scaled(100, 10);
        assert!(v == 100 || v == 10);
    }

    #[test]
    fn figures_dir_is_relative_target() {
        assert!(figures_dir().starts_with("target"));
    }
}
