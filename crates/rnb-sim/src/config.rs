//! Simulation configuration.

use rnb_core::{PlacementKind, RnbConfig};
use rnb_hash::HashKind;

/// How much physical memory the cluster has for replicas.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryModel {
    /// Every logical replica is physically resident (Fig 6's setting:
    /// "we assume that all objects are found in memory").
    Unlimited,
    /// Total memory = `factor` × (one copy of the data set). Distinguished
    /// copies consume exactly 1.0× (pinned, never miss — §III-D: "we
    /// allocate for the distinguished copies the same amount of memory
    /// that the original system had"); the remaining
    /// `(factor − 1) × universe` item slots are split evenly across
    /// servers as LRU replica caches. `factor` < 1 is rejected.
    Factor(f64),
}

impl MemoryModel {
    /// Per-server replica-cache capacity (in items) for a data set of
    /// `universe` items on `servers` servers, when distinguished copies
    /// are pinned outside the cache ([`DistinguishedMode::Pinned`]).
    pub fn replica_capacity_per_server(&self, universe: usize, servers: usize) -> usize {
        match *self {
            MemoryModel::Unlimited => usize::MAX,
            MemoryModel::Factor(f) => {
                assert!(
                    f >= 1.0,
                    "memory factor {f} cannot store even the distinguished copies"
                );
                (((f - 1.0) * universe as f64) / servers as f64).floor() as usize
            }
        }
    }

    /// Per-server total cache capacity (in items) when everything —
    /// distinguished copies included — shares one LRU
    /// ([`DistinguishedMode::InLru`]).
    pub fn total_capacity_per_server(&self, universe: usize, servers: usize) -> usize {
        match *self {
            MemoryModel::Unlimited => usize::MAX,
            MemoryModel::Factor(f) => {
                assert!(f > 0.0, "memory factor must be positive");
                ((f * universe as f64) / servers as f64).floor() as usize
            }
        }
    }
}

/// How hitchhiker probes interact with the server LRUs — §III-C2 leaves
/// this open ("whether a server's LRU should be updated based on a
/// hitchhiker … topics for further research"); the paper's results use
/// [`HitchhikerLru::OnHit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HitchhikerLru {
    /// "we … updated the LRU only upon a hit in the hitchhiking request"
    /// — the paper's choice.
    #[default]
    OnHit,
    /// Hitchhiker hits do not refresh recency at all (hitchhikers are
    /// opportunistic; only planned traffic shapes the caches).
    Never,
}

/// How distinguished copies are protected — the "two service classes in
/// LRU based caching systems" approaches the paper's §I-C claims
/// (evaluated in the thesis; §III-D uses the pinned form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DistinguishedMode {
    /// Dedicated, guaranteed space: distinguished copies can never be
    /// evicted and never miss (§III-D's accounting).
    #[default]
    Pinned,
    /// No second service class: distinguished copies share the ordinary
    /// LRU with replicas and may be evicted — a distinguished-copy miss
    /// becomes a database fetch (counted separately; this mode shows why
    /// the protection is needed).
    InLru,
}

/// What happens after a planned replica miss — §III-C2 fixes the paper's
/// choice ("we write the missing item only to the replica that was the
/// first to be picked by the greedy set cover algorithm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritebackPolicy {
    /// No refill: caches only ever shrink toward the distinguished set.
    None,
    /// The paper's policy: refill the planned (first-picked) replica.
    #[default]
    FirstPicked,
    /// Aggressive: refill every replica server of the missed item.
    AllReplicas,
}

/// Full configuration of a simulated RnB deployment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of memcached servers.
    pub servers: usize,
    /// Declared (logical) replication level. With `MemoryModel::Factor`
    /// below the declared level this is *overbooking* (§III-C1).
    pub logical_replication: usize,
    /// Replica placement scheme.
    pub placement: PlacementKind,
    /// Hash family.
    pub hash: HashKind,
    /// Placement seed (shared by all simulated clients).
    pub seed: u64,
    /// Physical memory model.
    pub memory: MemoryModel,
    /// Enable hitchhiking (§III-C2).
    pub hitchhiking: bool,
    /// Hitchhiker LRU policy (§III-C2 research question).
    pub hitchhiker_lru: HitchhikerLru,
    /// Distinguished-copy service class (§I-C / §III-D).
    pub distinguished: DistinguishedMode,
    /// Miss write-back policy (§III-C2).
    pub writeback: WritebackPolicy,
}

impl SimConfig {
    /// A basic-RnB config: RCH placement, unlimited memory, no
    /// hitchhiking, paper-default policies.
    pub fn basic(servers: usize, replication: usize) -> Self {
        SimConfig {
            servers,
            logical_replication: replication,
            placement: PlacementKind::Rch,
            hash: HashKind::XxHash64,
            seed: 0x52_6e_42,
            memory: MemoryModel::Unlimited,
            hitchhiking: false,
            hitchhiker_lru: HitchhikerLru::default(),
            distinguished: DistinguishedMode::default(),
            writeback: WritebackPolicy::default(),
        }
    }

    /// An enhanced-RnB config (§III-C/D): memory-limited with overbooking
    /// support and hitchhiking on.
    pub fn enhanced(servers: usize, logical_replication: usize, memory_factor: f64) -> Self {
        SimConfig {
            memory: MemoryModel::Factor(memory_factor),
            hitchhiking: true,
            ..SimConfig::basic(servers, logical_replication)
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style placement override.
    pub fn with_placement(mut self, kind: PlacementKind) -> Self {
        self.placement = kind;
        self
    }

    /// Builder-style hitchhiking toggle.
    pub fn with_hitchhiking(mut self, on: bool) -> Self {
        self.hitchhiking = on;
        self
    }

    /// The client-side RnB config implied by this simulation config.
    pub fn client_config(&self) -> RnbConfig {
        RnbConfig::new(self.servers, self.logical_replication)
            .with_placement(self.placement)
            .with_hash(self.hash)
            .with_seed(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_capacity_math() {
        // 1000 items, 10 servers, factor 2.5 → 1500 replica slots → 150
        // per server.
        let m = MemoryModel::Factor(2.5);
        assert_eq!(m.replica_capacity_per_server(1000, 10), 150);
        // factor 1.0 → zero replica space.
        assert_eq!(
            MemoryModel::Factor(1.0).replica_capacity_per_server(1000, 10),
            0
        );
        assert_eq!(
            MemoryModel::Unlimited.replica_capacity_per_server(1, 1),
            usize::MAX
        );
    }

    #[test]
    #[should_panic(expected = "cannot store")]
    fn sub_unit_factor_rejected() {
        MemoryModel::Factor(0.5).replica_capacity_per_server(100, 4);
    }

    #[test]
    fn config_builders() {
        let c = SimConfig::basic(16, 4);
        assert_eq!(c.servers, 16);
        assert_eq!(c.memory, MemoryModel::Unlimited);
        assert!(!c.hitchhiking);
        let e = SimConfig::enhanced(16, 4, 2.0)
            .with_seed(9)
            .with_hitchhiking(false);
        assert_eq!(e.memory, MemoryModel::Factor(2.0));
        assert_eq!(e.seed, 9);
        assert!(!e.hitchhiking);
        let cc = e.client_config();
        assert_eq!(cc.servers, 16);
        assert_eq!(cc.replication, 4);
        assert_eq!(cc.seed, 9);
    }
}
