//! The memcached-system simulator of the paper (§II-B, §III-B).
//!
//! > "The simulator was written from scratch and was targeted specifically
//! > at the performance of distributed key-value storage systems. […]
//! > Since our emphasis is on the multi-get hole, we focused on the total
//! > amount of server work per request, expressed as the number of
//! > transactions per request. Therefore, queuing is not relevant and
//! > requests were simulated individually."
//!
//! Accordingly this simulator executes one request at a time against a
//! cluster of simulated servers and counts transactions. Items are
//! unit-size ("we assumed that all data items are of the same size").
//! What *is* modelled in full:
//!
//! * per-server LRU replica caches with item-count budgets
//!   ([`server::SimServer`]) — the substrate of **overbooking** (§III-C1);
//! * pinned **distinguished copies** that never miss (§III-D);
//! * plan execution with round-1 misses, **hitchhiking** probes
//!   (§III-C2), miss write-back, and the **second round** of bundled
//!   distinguished-copy fetches ([`cluster::SimCluster`]);
//! * request **merging** (§III-E) and **LIMIT** requests (§III-F) via the
//!   runner ([`runner`]);
//! * TPR / TPRPS / transaction-size-histogram metrics ([`metrics`]).

pub mod cluster;
pub mod config;
pub mod lru;
pub mod metrics;
pub mod runner;
pub mod server;

pub use cluster::{RequestOutcome, SimCluster};
pub use config::{MemoryModel, SimConfig};
pub use metrics::Metrics;
pub use runner::{run_experiment, ExperimentConfig};
