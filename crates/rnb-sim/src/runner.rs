//! Experiment runner: warm-up + measurement over a request stream, with
//! optional request merging and LIMIT clauses.

use crate::cluster::SimCluster;
use crate::config::SimConfig;
use crate::metrics::Metrics;
use rnb_core::merge::MergingStream;
use rnb_workload::{LimitSpec, RequestStream};

/// An experiment: a simulated deployment driven by a request stream.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Deployment under test.
    pub sim: SimConfig,
    /// Requests executed before measurement starts (fills the adaptive
    /// replica caches; metrics are discarded).
    pub warmup_requests: usize,
    /// Requests measured.
    pub measure_requests: usize,
    /// Merge window (§III-E): 1 = no merging, 2 = merge every two
    /// consecutive requests, …
    pub merge_window: usize,
    /// LIMIT clause applied to every request (§III-F).
    pub limit: LimitSpec,
}

impl ExperimentConfig {
    /// Standard experiment: no merging, no LIMIT.
    pub fn new(sim: SimConfig, warmup_requests: usize, measure_requests: usize) -> Self {
        ExperimentConfig {
            sim,
            warmup_requests,
            measure_requests,
            merge_window: 1,
            limit: LimitSpec::All,
        }
    }

    /// Builder-style merge window.
    pub fn with_merge_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "merge window must be >= 1");
        self.merge_window = window;
        self
    }

    /// Builder-style LIMIT clause.
    pub fn with_limit(mut self, limit: LimitSpec) -> Self {
        self.limit = limit;
        self
    }
}

/// Run an experiment over items `0..universe` with requests drawn from
/// `stream`. Returns the measurement-phase metrics.
///
/// With merging enabled, *merged* requests count as one request each —
/// matching the paper's Figs 9–10, where TPR is per merged request and
/// the no-replication merged baseline is recomputed the same way.
pub fn run_experiment(
    config: &ExperimentConfig,
    universe: usize,
    stream: &mut dyn RequestStream,
) -> Metrics {
    let mut cluster = SimCluster::new(config.sim.clone(), universe);
    let raw = std::iter::from_fn(|| Some(stream.next_request()));
    let mut merged = MergingStream::new(raw, config.merge_window);

    // One merge buffer for the whole run: the merged-request path reuses
    // it (and the cluster's pooled PlanScratch) across warm-up and
    // measurement, so per-group work is allocation-free on the plan side.
    let mut request = Vec::new();
    for _ in 0..config.warmup_requests {
        assert!(merged.next_into(&mut request), "infinite stream");
        execute_one(&mut cluster, &request, config.limit);
    }
    cluster.reset_metrics();
    for _ in 0..config.measure_requests {
        assert!(merged.next_into(&mut request), "infinite stream");
        execute_one(&mut cluster, &request, config.limit);
    }
    cluster.metrics().clone()
}

fn execute_one(cluster: &mut SimCluster, request: &[u64], limit: LimitSpec) {
    match limit {
        LimitSpec::All => {
            cluster.execute(request);
        }
        spec => {
            cluster.execute_with_limit(request, Some(spec.min_items(request.len())));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rnb_workload::{EgoRequests, UniformRequests};

    #[test]
    fn basic_run_produces_metrics() {
        let g = rnb_graph::generate::powerlaw_graph(2000, 1.8, 1, 200, 16_000, 11);
        let mut stream = EgoRequests::new(&g, 1);
        let cfg = ExperimentConfig::new(SimConfig::basic(16, 3), 50, 200);
        let m = run_experiment(&cfg, g.num_nodes(), &mut stream);
        assert_eq!(m.requests, 200);
        assert!(m.tpr() >= 1.0);
        assert_eq!(m.planned_misses, 0, "unlimited memory");
    }

    #[test]
    fn replication_reduces_tpr_fig6_direction() {
        let g = rnb_graph::generate::powerlaw_graph(2000, 1.8, 1, 200, 16_000, 12);
        let tpr_of = |replication: usize| {
            let mut stream = EgoRequests::new(&g, 2);
            let cfg = ExperimentConfig::new(SimConfig::basic(16, replication), 0, 300);
            run_experiment(&cfg, g.num_nodes(), &mut stream).tpr()
        };
        let t1 = tpr_of(1);
        let t2 = tpr_of(2);
        let t4 = tpr_of(4);
        assert!(t2 < t1, "2 replicas should beat 1 ({t2} vs {t1})");
        assert!(t4 < t2, "4 replicas should beat 2 ({t4} vs {t2})");
        assert!(
            t4 < 0.65 * t1,
            "paper: ≥35% reduction at 4 replicas, got {t4}/{t1}"
        );
    }

    #[test]
    fn merging_reduces_absolute_tpr_per_user_request() {
        let mut s1 = UniformRequests::new(5000, 20, 3);
        let mut s2 = UniformRequests::new(5000, 20, 3);
        let base = ExperimentConfig::new(SimConfig::basic(16, 2), 20, 200);
        let merged = ExperimentConfig::new(SimConfig::basic(16, 2), 20, 200).with_merge_window(2);
        let m1 = run_experiment(&base, 5000, &mut s1);
        let m2 = run_experiment(&merged, 5000, &mut s2);
        // A merged request carries ~2× the items; per *user* request the
        // transaction cost must drop (that is why proxies merge).
        let per_user_1 = m1.tpr();
        let per_user_2 = m2.tpr() / 2.0;
        assert!(per_user_2 < per_user_1, "{per_user_2} !< {per_user_1}");
    }

    #[test]
    fn limit_reduces_tpr() {
        let mut s1 = UniformRequests::new(5000, 40, 4);
        let mut s2 = UniformRequests::new(5000, 40, 4);
        let full = ExperimentConfig::new(SimConfig::basic(16, 2), 10, 150);
        let lim = ExperimentConfig::new(SimConfig::basic(16, 2), 10, 150)
            .with_limit(LimitSpec::Fraction(0.5));
        let mf = run_experiment(&full, 5000, &mut s1);
        let ml = run_experiment(&lim, 5000, &mut s2);
        assert!(ml.tpr() < mf.tpr(), "LIMIT 50% should cut transactions");
    }

    #[test]
    fn warmup_lowers_measured_miss_rate() {
        let g = rnb_graph::generate::powerlaw_graph(1500, 1.8, 1, 150, 12_000, 13);
        let run = |warmup: usize| {
            let mut stream = EgoRequests::new(&g, 5);
            let cfg = ExperimentConfig::new(
                SimConfig::enhanced(8, 3, 2.0).with_hitchhiking(false),
                warmup,
                300,
            );
            run_experiment(&cfg, g.num_nodes(), &mut stream)
        };
        let cold = run(0);
        let warm = run(2000);
        assert!(
            warm.miss_rate() < cold.miss_rate(),
            "warm {} !< cold {}",
            warm.miss_rate(),
            cold.miss_rate()
        );
    }

    #[test]
    #[should_panic(expected = "merge window")]
    fn zero_merge_window_rejected() {
        ExperimentConfig::new(SimConfig::basic(2, 1), 0, 0).with_merge_window(0);
    }
}
